"""Service limits and degradation knobs (:class:`ServiceConfig`).

Like :class:`repro.core.config.InferenceConfig`, the service config is a
frozen, eagerly validated dataclass: a typo'd quota fails at
construction, not under load, and one config can be shared across the
event loop and every shard worker thread.

The fields fall into four groups:

* **topology** — ``host``/``port``, ``num_shards`` (sessions hash to a
  shard; each shard is one worker thread, so requests on one session
  are naturally serialized), ``shard_processes``/``replicate`` (promote
  shards to worker *processes* behind the router — see
  :mod:`repro.service.shard`);
* **admission** — ``max_sessions_per_tenant``, ``max_inflight_per_tenant``
  (``0`` disables the respective class of work — ``repro lint`` flags it);
* **backpressure / degradation** — ``queue_depth`` (bounded per-shard
  queue; ``0`` means unbounded, which ``repro lint`` flags),
  ``shed_threshold`` + ``shed_protect_priority`` (the shedding rung of
  the ladder), ``wedged_after_s`` (when posterior reads go degraded);
* **deadlines / durability** — ``default_deadline_s``/``max_deadline_s``,
  ``store_dir`` (checkpoints + LRU spill), ``checkpoint_keep``,
  ``expected_step_latency_s`` (the observed median step latency the
  deadline lint rule compares against).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Keyword-only configuration for :class:`repro.service.InferenceService`.

    Parameters
    ----------
    host / port:
        Listen address.  ``port=0`` binds an ephemeral port (the bound
        port is reported by :meth:`InferenceService.serve` and ``repro
        serve --port-file``).
    num_shards:
        Worker shards.  A session's requests always land on
        ``hash(session_id) % num_shards``, so per-session ordering needs
        no extra locking.  With ``shard_processes > 0`` this is the
        router-side lane count and is forced equal to
        ``shard_processes``.
    shard_processes:
        ``0`` (the default) keeps the single-process service: shards are
        worker *threads* sharing one interpreter.  ``N >= 1`` promotes
        shards to worker **processes**: the router process keeps the
        asyncio front end, admission control, quotas, and deadlines, and
        forwards requests over the codec wire format to ``N`` shard
        processes, each running its own
        :class:`~repro.store.session.SessionManager`.  Sessions are
        spread over the processes by a rendezvous-hashed placement map
        (:mod:`repro.service.placement`), so throughput scales with
        cores instead of being GIL-capped.
    replicate:
        Process mode only: after every acknowledged mutation the router
        refreshes a warm in-memory replica of the session on its peer
        shard process (the placement map's second choice), so degraded
        reads during a failover are served from memory instead of disk.
        Durability never depends on this — every ack is already fsynced
        to the shared store first — but ``repro lint`` flags
        ``replicate`` without a ``store_dir`` as an error because there
        is then no commit snapshot to replicate.
    shard_start_timeout_s:
        How long the router waits for a spawned shard process to bind
        its socket and answer the ``hello`` handshake.
    collection:
        Particle-collection mode handed to every session's
        :class:`~repro.core.config.InferenceConfig` (``"object"`` or
        ``"columnar"``).  Columnar steps that the vectorized runtime
        cannot represent spill to the object path per step, exactly as
        in offline inference (spill rules unchanged).
    queue_depth:
        Bound of each shard's pending-request queue.  A full queue
        rejects with :class:`~repro.errors.OverloadedError` and a
        ``retry_after_s`` drain estimate — never unbounded buffering.
        ``0`` means unbounded (allowed so the lint rule has something to
        flag; don't run production that way).
    max_sessions_per_tenant / max_inflight_per_tenant:
        Per-tenant admission quotas, rejected with structured
        :class:`~repro.errors.QuotaExceededError`.  ``0`` is legal but
        useless — ``repro lint`` flags it.
    default_deadline_s / max_deadline_s:
        Deadline applied when a request carries none, and the ceiling
        clamped onto client-supplied deadlines.
    expected_step_latency_s:
        The operator's observed median edit-step latency, used by the
        ``service-deadline-too-short`` lint rule (a default deadline
        below it times out the typical request by construction).
    shed_threshold:
        Queue-occupancy fraction at which the degradation ladder starts
        shedding: beyond it, only tenants with priority >=
        ``shed_protect_priority`` are admitted.
    shed_protect_priority:
        Priority rank that survives shedding (priorities come from
        ``tenant_priorities``; higher = more important).
    tenant_priorities / default_priority:
        Static tenant -> priority map for the shedding rung.
    wedged_after_s:
        When a shard's in-flight request has been running longer than
        this, ``posterior`` reads are served *degraded* from the last
        commit snapshot instead of queueing behind the wedge.
    store_dir:
        Durability root: commit checkpoints under
        ``<store_dir>/checkpoints/<session>/``, LRU spill files under
        ``<store_dir>/lru/``.  ``None`` = fully in-memory (no crash
        recovery; fine for tests).
    checkpoint_keep:
        Commit snapshots retained per session (>= 2 keeps a fallback if
        the newest is torn by a crash).
    session_capacity:
        Live sessions held in memory before LRU spill (requires
        ``store_dir``).
    num_particles:
        Default particle count for ``create_session`` requests that
        don't specify one.
    max_frame_bytes:
        Hard cap on accepted request frames (poison protection).
    """

    host: str = "127.0.0.1"
    port: int = 0
    num_shards: int = 2
    shard_processes: int = 0
    replicate: bool = False
    shard_start_timeout_s: float = 30.0
    collection: str = "object"
    queue_depth: int = 16
    max_sessions_per_tenant: int = 8
    max_inflight_per_tenant: int = 4
    default_deadline_s: float = 30.0
    max_deadline_s: float = 120.0
    expected_step_latency_s: Optional[float] = None
    shed_threshold: float = 0.75
    shed_protect_priority: int = 2
    tenant_priorities: Mapping[str, int] = field(default_factory=dict)
    default_priority: int = 1
    wedged_after_s: float = 2.0
    store_dir: Optional[str] = None
    checkpoint_keep: int = 2
    session_capacity: int = 64
    num_particles: int = 100
    max_frame_bytes: int = 16 * 1024 * 1024

    def __post_init__(self) -> None:
        if int(self.num_shards) < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards!r}")
        object.__setattr__(self, "num_shards", int(self.num_shards))
        if int(self.shard_processes) < 0:
            raise ValueError(
                f"shard_processes must be >= 0 (0 = in-process threads), "
                f"got {self.shard_processes!r}"
            )
        object.__setattr__(self, "shard_processes", int(self.shard_processes))
        if self.shard_processes > 0:
            # In process mode the router-side lane count mirrors the
            # process count; keeping them equal means every queue,
            # backpressure, and telemetry knob applies per process.
            object.__setattr__(self, "num_shards", self.shard_processes)
        object.__setattr__(self, "replicate", bool(self.replicate))
        timeout = float(self.shard_start_timeout_s)
        if math.isnan(timeout) or timeout <= 0:
            raise ValueError(
                "shard_start_timeout_s must be a positive number, got "
                f"{self.shard_start_timeout_s!r}"
            )
        object.__setattr__(self, "shard_start_timeout_s", timeout)
        if self.collection not in ("object", "columnar"):
            raise ValueError(
                f"unknown collection mode {self.collection!r}; "
                "choose 'object' or 'columnar'"
            )
        if int(self.queue_depth) < 0:
            raise ValueError(
                f"queue_depth must be >= 0 (0 = unbounded), got {self.queue_depth!r}"
            )
        object.__setattr__(self, "queue_depth", int(self.queue_depth))
        for name in ("max_sessions_per_tenant", "max_inflight_per_tenant"):
            value = int(getattr(self, name))
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")
            object.__setattr__(self, name, value)
        for name in ("default_deadline_s", "max_deadline_s", "wedged_after_s"):
            value = float(getattr(self, name))
            if math.isnan(value) or value <= 0:
                raise ValueError(f"{name} must be a positive number, got {value!r}")
            object.__setattr__(self, name, value)
        if self.default_deadline_s > self.max_deadline_s:
            raise ValueError(
                f"default_deadline_s={self.default_deadline_s} exceeds "
                f"max_deadline_s={self.max_deadline_s}"
            )
        if not 0.0 < float(self.shed_threshold) <= 1.0:
            raise ValueError(
                f"shed_threshold must be in (0, 1], got {self.shed_threshold!r}"
            )
        object.__setattr__(self, "shed_threshold", float(self.shed_threshold))
        if self.expected_step_latency_s is not None:
            value = float(self.expected_step_latency_s)
            if math.isnan(value) or value <= 0:
                raise ValueError(
                    "expected_step_latency_s must be a positive number or None, "
                    f"got {self.expected_step_latency_s!r}"
                )
            object.__setattr__(self, "expected_step_latency_s", value)
        # Freeze the priority map so the config stays safely shareable.
        object.__setattr__(
            self, "tenant_priorities", dict(self.tenant_priorities or {})
        )
        for name in ("checkpoint_keep", "session_capacity", "num_particles",
                     "max_frame_bytes"):
            value = int(getattr(self, name))
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value!r}")
            object.__setattr__(self, name, value)
        if self.store_dir is not None and not isinstance(self.store_dir, str):
            raise TypeError(
                f"store_dir must be a path string or None, got {self.store_dir!r}"
            )

    def replace(self, **changes: Any) -> "ServiceConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def priority_of(self, tenant: str) -> int:
        return int(self.tenant_priorities.get(tenant, self.default_priority))

    def clamp_deadline(self, deadline_s: Optional[float]) -> float:
        """Resolve a client deadline: default when absent, ceiling always."""
        if deadline_s is None:
            return self.default_deadline_s
        value = float(deadline_s)
        if math.isnan(value) or value <= 0:
            from ..errors import BadRequestError

            raise BadRequestError(
                f"deadline_s must be a positive number, got {deadline_s!r}"
            )
        return min(value, self.max_deadline_s)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view (what ``stats`` responses report)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
