"""Deterministic load generation against a running inference service.

Three canonical workloads (the benchmark's series), all expressed in
the structured language so they ship over the wire:

* ``gauss-chain`` — the incremental-data special case: one latent, each
  request an ``observe`` op appending one more observation (the service
  splices it before the ``return`` and translates).  Posterior reads are
  interleaved at a configurable cadence.
* ``gmm-edits`` — the program-edit case: a two-component mixture whose
  weights and component means are *edited* between requests (full
  ``edit`` ops through diff + correspondence translation).
* ``fig8-session`` — the paper's Section 7.2 robust-regression
  exploration: a linear model over the Figure 8 dataset whose outlier
  mixture is introduced and tuned edit by edit (heavier per-op cost
  than ``gauss-chain``; the scaling benchmark's second series).

Every random draw (observation values, edited parameters, retry jitter)
comes from streams seeded off :attr:`LoadgenConfig.seed`, so two runs
against equal servers issue byte-identical request sequences — which is
what lets the chaos harness replay a workload around injected faults
and assert exact invariants.

:func:`run_loadgen` drives ``concurrency`` worker threads, each owning
its sessions and its own retrying client, and reports raw latencies
(p50/p99/mean per op), rejection counts by error code, retry counts,
and the durable bytes per session — the numbers
``benchmarks/test_bench_service.py`` turns into ``BENCH_service.json``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ServiceError
from .client import RetryingClient, ServiceClient

__all__ = ["LoadgenConfig", "WORKLOADS", "run_loadgen"]


# -- workload program generators ----------------------------------------------


def _gauss_chain(session_index: int, num_ops: int, rng: random.Random):
    """One latent; each op observes one more noisy measurement of it."""
    center = rng.uniform(-1.0, 1.0)
    base = "x = gauss(0.0, 2.0);\nreturn x;"
    ops: List[Tuple[str, str]] = []
    for _ in range(num_ops):
        value = center + rng.gauss(0.0, 0.5)
        ops.append(("observe", f"observe(gauss(x, 1.0) == {value:.4f});"))
    return base, ops


def _gmm_source(weight: float, low: float, high: float, value: float) -> str:
    return (
        f"z = flip({weight:.4f});\n"
        f"m = z ? {high:.4f} : {low:.4f};\n"
        f"observe(gauss(m, 1.0) == {value:.4f});\n"
        "return z;"
    )


def _gmm_edits(session_index: int, num_ops: int, rng: random.Random):
    """Two-component mixture; each op edits weights/means in place."""
    weight, low, high = 0.5, -2.0, 2.0
    value = rng.uniform(-1.0, 1.0)
    base = _gmm_source(weight, low, high, value)
    ops: List[Tuple[str, str]] = []
    for _ in range(num_ops):
        weight = min(0.95, max(0.05, weight + rng.uniform(-0.1, 0.1)))
        low += rng.uniform(-0.25, 0.25)
        high += rng.uniform(-0.25, 0.25)
        ops.append(("edit", _gmm_source(weight, low, high, value)))
    return base, ops


#: The Figure 8 dataset (a line with one gross outlier), shared with
#: :mod:`repro.experiments.session_demo`.
_FIG8_POINTS = (
    (-2.0, -4.1), (-1.0, -2.2), (0.0, 0.1), (1.0, 1.8),
    (2.0, 4.2), (3.0, 6.1), (4.0, -20.0),
)


def _fig8_source(prob_outlier: float, inlier_std: float) -> str:
    """The robust-regression model of the paper's Figure 8, in the
    structured language (outliers explained by a wide mixture arm)."""
    lines = [
        "slope = gauss(0.0, 2.0);",
        "intercept = gauss(0.0, 2.0);",
    ]
    for index, (x, y) in enumerate(_FIG8_POINTS):
        lines.append(f"o{index} = flip({prob_outlier:.4f});")
        lines.append(
            f"observe(gauss(slope * {x:.1f} + intercept, "
            f"o{index} ? 10.0 : {inlier_std:.4f}) == {y:.4f});"
        )
    lines.append("return slope;")
    return "\n".join(lines)


def _fig8_session(session_index: int, num_ops: int, rng: random.Random):
    """Model exploration on the Figure 8 regression: each op *edits* the
    outlier mixture (introduce it, tune its weight, tighten the inlier
    noise) — the paper's Section 7.2 workflow as served traffic."""
    prob_outlier, inlier_std = 0.01, 0.5
    base = _fig8_source(prob_outlier, inlier_std)
    ops: List[Tuple[str, str]] = []
    for _ in range(num_ops):
        prob_outlier = min(0.3, max(0.01, prob_outlier + rng.uniform(0.0, 0.08)))
        inlier_std = min(1.0, max(0.25, inlier_std + rng.uniform(-0.08, 0.04)))
        ops.append(("edit", _fig8_source(prob_outlier, inlier_std)))
    return base, ops


#: name -> (session_index, num_ops, rng) -> (base_program, [(op, payload)])
WORKLOADS: Dict[str, Callable[[int, int, random.Random], Tuple[str, List[Tuple[str, str]]]]] = {
    "gauss-chain": _gauss_chain,
    "gmm-edits": _gmm_edits,
    "fig8-session": _fig8_session,
}


@dataclass(frozen=True)
class LoadgenConfig:
    """One load run: which workload, how much of it, how fast.

    Parameters
    ----------
    workload:
        Key into :data:`WORKLOADS`.
    num_sessions / ops_per_session:
        Sessions created, and mutating ops issued per session.
    posterior_every:
        Interleave a ``posterior`` read after every N mutating ops
        (``0`` disables reads).
    concurrency:
        Worker threads; sessions are dealt round-robin across them.
    num_particles:
        Particle count per created session (small keeps latency small).
    deadline_s:
        Per-request deadline shipped with every op (``None`` = server
        default).
    tenant:
        Tenant prefix; worker *w* runs as ``<tenant>-w``.
    seed:
        Root seed for every stream (workload values + retry jitter).
    max_attempts:
        Retry budget per request (1 = no retries, count every
        rejection).
    close_sessions:
        Close each session at the end of its script (frees quota).
    """

    workload: str = "gauss-chain"
    num_sessions: int = 4
    ops_per_session: int = 5
    posterior_every: int = 2
    concurrency: int = 2
    num_particles: int = 50
    deadline_s: Optional[float] = None
    tenant: str = "bench"
    seed: int = 0
    max_attempts: int = 4
    close_sessions: bool = True

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {sorted(WORKLOADS)}"
            )
        for name in ("num_sessions", "ops_per_session", "concurrency",
                     "num_particles", "max_attempts"):
            if int(getattr(self, name)) < 1:
                raise ValueError(f"{name} must be >= 1")
        if int(self.posterior_every) < 0:
            raise ValueError("posterior_every must be >= 0")

    def replace(self, **changes: Any) -> "LoadgenConfig":
        return replace(self, **changes)


class _Collector:
    """Thread-safe accumulation of latencies and outcome counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latencies: Dict[str, List[float]] = {}
        self.ok = 0
        self.rejected: Dict[str, int] = {}
        self.retries = 0

    def record_ok(self, op: str, seconds: float) -> None:
        with self._lock:
            self.latencies.setdefault(op, []).append(seconds)
            self.ok += 1

    def record_rejection(self, error: ServiceError) -> None:
        with self._lock:
            self.rejected[error.code] = self.rejected.get(error.code, 0) + 1

    def record_retries(self, count: int) -> None:
        if count:
            with self._lock:
                self.retries += count


def _percentiles(samples: List[float]) -> Dict[str, float]:
    data = np.asarray(samples, dtype=float)
    return {
        "count": int(data.size),
        "p50_ms": float(np.percentile(data, 50) * 1000.0),
        "p99_ms": float(np.percentile(data, 99) * 1000.0),
        "mean_ms": float(data.mean() * 1000.0),
        "max_ms": float(data.max() * 1000.0),
    }


def _run_script(
    client: RetryingClient,
    collector: _Collector,
    session_id: str,
    base: str,
    ops: List[Tuple[str, str]],
    config: LoadgenConfig,
) -> None:
    def timed(op: str, call: Callable[[], Any]) -> bool:
        before = client.total_retries
        started = time.monotonic()
        try:
            call()
        except ServiceError as error:
            collector.record_rejection(error)
            return False
        finally:
            collector.record_retries(client.total_retries - before)
            client.total_retries = 0
        collector.record_ok(op, time.monotonic() - started)
        return True

    created = timed(
        "create",
        lambda: client.create(
            session_id,
            base,
            num_particles=config.num_particles,
            seed=config.seed,
            deadline_s=config.deadline_s,
        ),
    )
    if not created:
        return
    since_read = 0
    for op, payload in ops:
        if op == "observe":
            timed(op, lambda p=payload: client.observe(
                session_id, p, deadline_s=config.deadline_s))
        else:
            timed(op, lambda p=payload: client.edit(
                session_id, p, deadline_s=config.deadline_s))
        since_read += 1
        if config.posterior_every and since_read >= config.posterior_every:
            since_read = 0
            timed("posterior", lambda: client.posterior(
                session_id, deadline_s=config.deadline_s))
    if config.close_sessions:
        timed("close", lambda: client.close_session(session_id))


def run_loadgen(
    host: str,
    port: int,
    config: LoadgenConfig,
    *,
    sleep: Optional[Callable[[float], None]] = None,
) -> Dict[str, Any]:
    """Drive one load run; return the measurement summary.

    ``sleep`` overrides the retry sleep (tests pass a no-op so overload
    runs finish instantly).
    """
    generator = WORKLOADS[config.workload]
    collector = _Collector()

    scripts: List[Tuple[str, str, List[Tuple[str, str]]]] = []
    for index in range(config.num_sessions):
        # A string seed hashes via sha512 inside Random — deterministic
        # across processes, unlike the salted builtin hash().
        rng = random.Random(f"{config.seed}:{config.workload}:{index}")
        base, ops = generator(index, config.ops_per_session, rng)
        scripts.append((f"{config.tenant}-s{index}", base, ops))

    def worker(worker_index: int) -> None:
        client = RetryingClient(
            ServiceClient(host, port, tenant=f"{config.tenant}-{worker_index}"),
            max_attempts=config.max_attempts,
            rng=random.Random(config.seed * 7919 + worker_index),
            sleep=sleep,
        )
        try:
            for script_index in range(
                worker_index, len(scripts), config.concurrency
            ):
                session_id, base, ops = scripts[script_index]
                _run_script(client, collector, session_id, base, ops, config)
        finally:
            client.client.close()

    started = time.monotonic()
    threads = [
        threading.Thread(target=worker, args=(i,), name=f"loadgen-{i}")
        for i in range(config.concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.monotonic() - started

    total = collector.ok + sum(collector.rejected.values())
    return {
        "workload": config.workload,
        "num_sessions": config.num_sessions,
        "ops_per_session": config.ops_per_session,
        "concurrency": config.concurrency,
        "num_particles": config.num_particles,
        "requests": total,
        "ok": collector.ok,
        "rejected": dict(sorted(collector.rejected.items())),
        "rejection_rate": (
            0.0 if total == 0 else sum(collector.rejected.values()) / total
        ),
        "retries": collector.retries,
        "wall_seconds": wall_seconds,
        "throughput_rps": 0.0 if wall_seconds == 0 else collector.ok / wall_seconds,
        "latency": {
            op: _percentiles(samples)
            for op, samples in sorted(collector.latencies.items())
            if samples
        },
    }
