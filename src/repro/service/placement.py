"""Rendezvous-hashed session placement for the multi-process service.

The router spreads sessions over shard worker processes with
highest-random-weight (rendezvous) hashing: every ``(member, key)`` pair
gets a deterministic score from a sha256 digest, and a key belongs to
the live member with the highest score.  The properties that matter
here:

* **stability** — scores depend only on the pair, never on the member
  list, so adding or removing a member moves exactly the keys whose top
  scorer changed (no modulo reshuffle of everything);
* **built-in replicas** — the second-highest scorer is the natural
  replica: when the primary dies, the rendezvous top over the survivors
  *is* the replica, so failover needs no extra bookkeeping;
* **determinism across processes** — sha256, not the salted builtin
  ``hash``, so a restarted router computes the same placement.

On top of the pure scores the map keeps one piece of mutable state: the
*current assignment* of each key it has routed.  Assignments are sticky —
a key keeps its owner until a membership change makes that owner dead
(:meth:`on_death` fails the key over immediately) or an explicit
:meth:`rebalance` moves it back to its rendezvous home.  Stickiness is
what makes rebalancing an *explicit, observable* event instead of a
silent route flip racing in-flight requests; the server only migrates a
session when it has no queued or executing work.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["PlacementMap", "placement_score"]


def placement_score(member: int, key: str) -> int:
    """The deterministic rendezvous score of one ``(member, key)`` pair."""
    digest = hashlib.sha256(f"{member}\x00{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class PlacementMap:
    """Session -> shard-process placement with explicit rebalance.

    Parameters
    ----------
    members:
        The full member universe (shard-process indices).  Members start
        alive; :meth:`on_death` / :meth:`on_join` track liveness.
    """

    def __init__(self, members: Iterable[int]):
        self._members: List[int] = sorted(int(m) for m in members)
        if not self._members:
            raise ValueError("placement map needs at least one member")
        if len(set(self._members)) != len(self._members):
            raise ValueError(f"duplicate members in {self._members!r}")
        self._alive: Dict[int, bool] = {m: True for m in self._members}
        #: key -> currently assigned member (sticky).
        self._assigned: Dict[str, int] = {}
        self.moves = 0  # total assignment changes (telemetry)

    # -- membership ------------------------------------------------------------

    @property
    def members(self) -> List[int]:
        return list(self._members)

    def alive_members(self) -> List[int]:
        return [m for m in self._members if self._alive[m]]

    def is_alive(self, member: int) -> bool:
        return self._alive.get(member, False)

    def on_death(self, member: int) -> List[Tuple[str, int, int]]:
        """Mark a member dead and fail its keys over to their replicas.

        Returns the moves performed as ``(key, old_member, new_member)``
        triples.  With rendezvous hashing the new owner of each key is
        exactly its former replica (the second-highest scorer), so this
        *is* the replica failover.
        """
        if member not in self._alive:
            raise KeyError(f"unknown member {member!r}")
        self._alive[member] = False
        if not self.alive_members():
            raise RuntimeError("placement map has no live members left")
        moved = []
        for key, owner in list(self._assigned.items()):
            if owner == member:
                new_owner = self.home(key)
                self._assigned[key] = new_owner
                self.moves += 1
                moved.append((key, owner, new_owner))
        return moved

    def on_join(self, member: int) -> None:
        """Mark a (re)spawned member alive again.

        Deliberately does *not* move any keys: migration back to the
        rendezvous home is the caller's explicit :meth:`rebalance` (or
        per-key :meth:`migrate_home`) decision, taken only when a
        session has no in-flight work.
        """
        if member not in self._alive:
            raise KeyError(f"unknown member {member!r}")
        self._alive[member] = True

    # -- pure scores -----------------------------------------------------------

    def _ranked(self, key: str) -> List[int]:
        """Live members by descending rendezvous score for ``key``."""
        alive = self.alive_members()
        return sorted(alive, key=lambda m: placement_score(m, key), reverse=True)

    def home(self, key: str) -> int:
        """The rendezvous-top live member for ``key`` (ignores stickiness)."""
        return self._ranked(key)[0]

    def replica(self, key: str) -> Optional[int]:
        """The second-highest live scorer — the warm-replica target."""
        ranked = self._ranked(key)
        return ranked[1] if len(ranked) > 1 else None

    # -- sticky assignment -----------------------------------------------------

    def place(self, key: str) -> int:
        """The member that owns ``key``, assigning it on first sight.

        A sticky assignment to a member that has since died is healed
        here as well (covers keys first seen between death detection and
        :meth:`on_death`'s sweep).
        """
        owner = self._assigned.get(key)
        if owner is None or not self._alive.get(owner, False):
            new_owner = self.home(key)
            if owner is not None and owner != new_owner:
                self.moves += 1
            self._assigned[key] = new_owner
            owner = new_owner
        return owner

    def current(self, key: str) -> Optional[int]:
        """The sticky assignment, if the key has been placed."""
        return self._assigned.get(key)

    def migrate_home(self, key: str) -> Optional[Tuple[int, int]]:
        """Move one key back to its rendezvous home; ``(old, new)`` or None."""
        owner = self._assigned.get(key)
        if owner is None:
            return None
        target = self.home(key)
        if target == owner:
            return None
        self._assigned[key] = target
        self.moves += 1
        return (owner, target)

    def rebalance(self) -> List[Tuple[str, int, int]]:
        """Move every displaced key back to its rendezvous home.

        The explicit membership-change rebalance: after a member
        respawns, keys that failed over to a survivor move back so load
        stays spread.  Returns the moves as ``(key, old, new)``.
        """
        moved = []
        for key in list(self._assigned):
            move = self.migrate_home(key)
            if move is not None:
                moved.append((key, move[0], move[1]))
        return moved

    def forget(self, key: str) -> None:
        """Drop a closed session's assignment."""
        self._assigned.pop(key, None)

    def assignments(self) -> Dict[str, int]:
        return dict(self._assigned)

    def displaced(self) -> List[str]:
        """Keys whose sticky owner is not their rendezvous home."""
        return [
            key
            for key, owner in self._assigned.items()
            if owner != self.home(key)
        ]

    def __repr__(self) -> str:
        alive = self.alive_members()
        return (
            f"PlacementMap(members={self._members}, alive={alive}, "
            f"assigned={len(self._assigned)}, moves={self.moves})"
        )
