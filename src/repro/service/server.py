"""The asyncio inference server: admission, shards, deadlines, recovery.

Request path
------------

Connections speak the framed codec protocol of
:mod:`repro.service.wire`.  Each request runs this gauntlet **on the
event loop** (cheap, non-blocking):

1. *shape validation* — unknown ops, missing fields, oversized frames
   are poison: structured ``bad_request``, never a crash;
2. *deadline resolution* — client deadline clamped to
   ``max_deadline_s``, default applied when absent;
3. *admission control* — per-tenant quotas on live sessions and
   in-flight requests (``quota_exceeded``);
4. *backpressure* — the target shard's bounded queue: full means
   ``overloaded`` with a drain-time ``retry_after_s`` estimate, and
   above ``shed_threshold`` occupancy only tenants at or above
   ``shed_protect_priority`` are admitted (the shedding rung);
5. *dispatch* — the request joins its session's shard queue.

The actual inference work happens in one worker thread per shard
(sessions hash to shards, so per-session ordering is structural).  A
request whose deadline expired while queued is rejected without burning
worker time; one that exceeds its deadline *mid-translation* is
cancelled at the next particle boundary by :class:`DeadlineHooks` and
rolled back transactionally — the session is byte-identical to before
the request.

Degradation ladder
------------------

#. normal service;
#. occupancy >= ``shed_threshold``: lowest-priority tenants shed first
   (structured ``overloaded`` rejections with retry-after);
#. queue full: every mutating request rejected with retry-after;
#. shard wedged (in-flight request older than ``wedged_after_s``) or
   queue unavailable: ``posterior`` reads served *degraded* from the
   last commit snapshot — stale but correct, and never blocked;
#. crash: restart replays commit snapshots
   (:meth:`DurableSessionStore.recover`) — every acknowledged mutation
   is on disk before its ack, so committed observations survive SIGKILL.
"""

from __future__ import annotations

import asyncio
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from ..errors import (
    BadRequestError,
    DeadlineExceededError,
    OverloadedError,
    QuotaExceededError,
    ServiceUnavailableError,
)
from ..observability import Hooks, MetricsRegistry, Tracer
from ..store.session import _check_session_id
from .config import ServiceConfig
from .placement import PlacementMap
from .state import DurableSessionStore
from .wire import OPS, FrameError, encode_error, encode_ok, read_frame, write_frame

__all__ = ["DeadlineHooks", "InferenceService", "ServiceHandle", "shard_of"]

#: Seed latency estimate (seconds) before any request has completed.
_INITIAL_EWMA_S = 0.1
#: Floor for retry-after suggestions, so clients never busy-spin.
_MIN_RETRY_AFTER_S = 0.05


def shard_of(session_id: str, num_shards: int) -> int:
    """Stable session -> shard map (crc32, *not* the salted ``hash``).

    Must be deterministic across processes so a restarted server routes
    a recovered session to the same single-threaded worker.
    """
    return zlib.crc32(session_id.encode("utf-8")) % num_shards


class DeadlineHooks(Hooks):
    """Cancel an in-flight translation when its deadline passes.

    Raises :class:`~repro.errors.DeadlineExceededError` from the
    ``on_particle`` callback — i.e. at a particle boundary, where no
    partial mutation exists yet.  Combined with
    :meth:`InferenceSession.submit`'s rollback this makes a timeout
    side-effect-free: collection and RNG stream are restored, the
    session can serve the next request immediately.
    """

    def __init__(self, deadline_at: float, clock=time.monotonic):
        self._deadline_at = deadline_at
        self._clock = clock

    def _check(self) -> None:
        if self._clock() >= self._deadline_at:
            raise DeadlineExceededError(
                "request deadline expired mid-translation "
                "(cancelled at a particle boundary; session state rolled back)"
            )

    def on_step_start(self, step_index: Optional[int], num_particles: int) -> None:
        self._check()

    def on_particle(self, index: int, outcome: str) -> None:
        self._check()


class _Shard:
    """One bounded queue + one worker thread + its telemetry."""

    def __init__(self, index: int, depth: int):
        self.index = index
        self.depth = depth  # 0 = unbounded
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=depth)
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{index}"
        )
        self.tracer = Tracer()  # thread-confined to this shard's worker
        self.busy_since: Optional[float] = None
        self.busy_op: Optional[str] = None
        self.ewma_latency_s = _INITIAL_EWMA_S
        self.completed = 0

    def record_latency(self, seconds: float) -> None:
        self.ewma_latency_s = 0.8 * self.ewma_latency_s + 0.2 * seconds
        self.completed += 1

    def retry_after_s(self) -> float:
        """Drain-time estimate: pending work x smoothed service time."""
        pending = self.queue.qsize() + (1 if self.busy_since is not None else 0)
        return max(_MIN_RETRY_AFTER_S, pending * self.ewma_latency_s)

    def occupancy(self) -> float:
        if self.depth <= 0:
            return 0.0
        return self.queue.qsize() / self.depth

    def wedged(self, wedged_after_s: float, now: float) -> bool:
        return self.busy_since is not None and now - self.busy_since >= wedged_after_s


class _Request:
    __slots__ = ("op", "tenant", "session", "payload", "deadline_at",
                 "future", "enqueued_at", "member", "replica")

    def __init__(self, op, tenant, session, payload, deadline_at, future,
                 member=None, replica=None):
        self.op = op
        self.tenant = tenant
        self.session = session
        self.payload = payload
        self.deadline_at = deadline_at
        self.future = future
        self.enqueued_at = time.monotonic()
        #: Process mode: the shard process this request is bound for,
        #: and (for acked mutations with ``replicate=True``) the member
        #: whose warm replica is refreshed afterwards.  Both resolved at
        #: dispatch time on the event loop, so lane threads never read
        #: the placement map.
        self.member = member
        self.replica = replica


_SHUTDOWN = object()


class InferenceService:
    """The multi-tenant incremental-inference server.

    Parameters
    ----------
    config:
        The :class:`ServiceConfig` (limits, deadlines, durability root).
    metrics:
        Optional shared registry; defaults to a fresh one (exposed via
        the ``stats`` op and :meth:`metrics_snapshot`).
    translator_middleware:
        Test seam for the chaos harness: a callable applied to every
        request's hooks-bearing work closure is too coarse, so instead
        this wraps the *store mutation call* — see
        :mod:`repro.testing.chaos`.  ``None`` in production.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        metrics: Optional[MetricsRegistry] = None,
        translator_middleware: Optional[Any] = None,
    ):
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = DurableSessionStore(config)
        self.translator_middleware = translator_middleware
        self._shards = [
            _Shard(i, config.queue_depth) for i in range(config.num_shards)
        ]
        self._inflight: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_tasks: List[asyncio.Task] = []
        self._closing = False
        self.started = asyncio.Event()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.recovered_sessions: List[str] = []
        self.recovery_seconds: float = 0.0

        # -- process mode (shard_processes > 0) --------------------------
        # The router keeps the front end and forwards to shard worker
        # processes; every lane (_Shard) maps 1:1 to one member of the
        # rendezvous placement map.  ``_links[lane][member]`` holds the
        # persistent connections — each inner dict is touched only by
        # that lane's single worker thread, so no locking.
        self._process_mode = config.shard_processes > 0
        self._pool: Optional[Any] = None
        self._placement: Optional[PlacementMap] = None
        self._links: Dict[int, Dict[int, Any]] = {}
        self._session_inflight: Dict[str, int] = {}
        self._needs_rebalance = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._supervisor: Optional[threading.Thread] = None
        self._supervisor_stop = threading.Event()
        if self._process_mode:
            from .shard import ShardProcessPool  # deferred: shard imports us

            self._pool = ShardProcessPool(config)
            self._placement = PlacementMap(range(config.shard_processes))
            self._links = {i: {} for i in range(config.num_shards)}

    # -- lifecycle -------------------------------------------------------------

    async def serve(self) -> None:
        """Recover, bind, accept until :meth:`stop` is called."""
        self._loop = asyncio.get_running_loop()
        started = time.monotonic()
        if self._process_mode:
            # Spawn + hello-probe the shard fleet first: a schema
            # mismatch must fail startup, not the first request.  The
            # router then loads session *metadata* only — live state is
            # recovered lazily inside the shard processes.
            await self._loop.run_in_executor(None, self._pool.start)
            self.recovered_sessions = await self._loop.run_in_executor(
                None, self.store.scan_meta
            )
        else:
            self.recovered_sessions = await self._loop.run_in_executor(
                None, self.store.recover
            )
        self.recovery_seconds = time.monotonic() - started
        if self.recovered_sessions:
            self.metrics.counter("service.sessions_recovered").inc(
                len(self.recovered_sessions)
            )
        self.metrics.gauge("service.recovery_seconds").set(self.recovery_seconds)
        if self._process_mode:
            self._supervisor_stop.clear()
            self._supervisor = threading.Thread(
                target=self._supervise, name="repro-shard-supervisor", daemon=True
            )
            self._supervisor.start()

        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._worker_tasks = [
            asyncio.create_task(self._worker(shard), name=f"shard-{shard.index}")
            for shard in self._shards
        ]
        self.started.set()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain workers, close pools."""
        self._closing = True
        if self._supervisor is not None:
            self._supervisor_stop.set()
            self._supervisor.join(5.0)
            self._supervisor = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for shard in self._shards:
            shard.queue.put_nowait(_SHUTDOWN)
        for task in self._worker_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        for shard in self._shards:
            shard.executor.shutdown(wait=False, cancel_futures=True)
        for lane_links in self._links.values():
            for link in lane_links.values():
                link.close()
        if self._pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self._pool.stop_all
            )

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_frame(
                        reader, max_bytes=self.config.max_frame_bytes
                    )
                except FrameError as error:
                    # The stream itself is poisoned: answer structurally,
                    # then hang up (we cannot resynchronize mid-garbage).
                    self.metrics.counter("service.rejections.bad_request").inc()
                    await write_frame(writer, encode_error(error))
                    break
                if request is None:
                    break
                response = await self._handle_request(request)
                if isinstance(request, dict) and "request_id" in request:
                    response["request_id"] = request["request_id"]
                await write_frame(writer, response)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _handle_request(self, request: Any) -> Dict[str, Any]:
        started = time.monotonic()
        op = request.get("op") if isinstance(request, dict) else None
        try:
            result = await self._dispatch(request)
            response = encode_ok(result)
            self.metrics.counter(f"service.requests.{op}").inc()
        except BaseException as error:  # noqa: BLE001 — every error answers
            response = encode_error(error)
            self._count_rejection(error)
        if op in ("create", "observe", "edit", "posterior"):
            self.metrics.histogram(f"service.latency.{op}").observe(
                time.monotonic() - started
            )
        return response

    def _count_rejection(self, error: BaseException) -> None:
        if isinstance(error, QuotaExceededError):
            self.metrics.counter("service.rejections.quota").inc()
        elif isinstance(error, OverloadedError):
            self.metrics.counter("service.rejections.overloaded").inc()
        elif isinstance(error, DeadlineExceededError):
            self.metrics.counter("service.timeouts").inc()
        elif isinstance(error, BadRequestError):
            self.metrics.counter("service.rejections.bad_request").inc()
        else:
            self.metrics.counter("service.rejections.internal").inc()

    # -- admission + dispatch --------------------------------------------------

    async def _dispatch(self, request: Any) -> Any:
        if not isinstance(request, dict):
            raise BadRequestError(
                f"request must be a document, got {type(request).__name__}"
            )
        op = request.get("op")
        if op not in OPS:
            raise BadRequestError(f"unknown op {op!r}; expected one of {list(OPS)}")
        if op == "ping":
            return {"pong": True, "closing": self._closing}
        if op == "stats":
            return self.stats()
        if self._closing:
            raise ServiceUnavailableError("server is shutting down")

        tenant = request.get("tenant")
        session_id = request.get("session")
        if not isinstance(tenant, str) or not tenant:
            raise BadRequestError("request needs a non-empty 'tenant'")
        if not isinstance(session_id, str):
            raise BadRequestError("request needs a 'session' id")
        _check_session_id(session_id)
        deadline_s = self.config.clamp_deadline(request.get("deadline_s"))
        deadline_at = time.monotonic() + deadline_s
        member = replica = None
        if self._process_mode:
            try:
                member = self._place_session(session_id)
            except (RuntimeError, IndexError):
                raise ServiceUnavailableError(
                    "all shard processes are down (respawn in progress)",
                    retry_after_s=1.0,
                ) from None
            shard = self._shards[member]
            if self.config.replicate and op in ("create", "observe", "edit"):
                replica = self._placement.replica(session_id)
        else:
            shard = self._shards[shard_of(session_id, self.config.num_shards)]

        if op == "posterior":
            return await self._dispatch_posterior(
                request, tenant, session_id, shard, deadline_at, member=member
            )

        # -- mutating ops: quotas, then backpressure ----------------------
        if op == "create":
            limit = self.config.max_sessions_per_tenant
            if len(self.store.sessions_of(tenant)) >= limit:
                raise QuotaExceededError(
                    f"tenant {tenant!r} already holds {limit} live session(s)",
                    quota="sessions",
                    limit=limit,
                )
        self._check_inflight_quota(tenant, shard)
        self._check_backpressure(tenant, shard)
        return await self._enqueue(
            request, op, tenant, session_id, shard, deadline_at,
            member=member, replica=replica,
        )

    def _check_inflight_quota(self, tenant: str, shard: _Shard) -> None:
        limit = self.config.max_inflight_per_tenant
        if self._inflight.get(tenant, 0) >= limit:
            raise QuotaExceededError(
                f"tenant {tenant!r} already has {limit} request(s) in flight",
                quota="inflight",
                limit=limit,
                retry_after_s=shard.ewma_latency_s,
            )

    def _check_backpressure(self, tenant: str, shard: _Shard) -> None:
        if shard.depth > 0 and shard.queue.qsize() >= shard.depth:
            raise OverloadedError(
                f"shard {shard.index} queue is full "
                f"({shard.queue.qsize()}/{shard.depth})",
                retry_after_s=shard.retry_after_s(),
            )
        if (
            shard.depth > 0
            and shard.occupancy() >= self.config.shed_threshold
            and self.config.priority_of(tenant) < self.config.shed_protect_priority
        ):
            self.metrics.counter("service.rejections.shed").inc()
            raise OverloadedError(
                f"shard {shard.index} is shedding: occupancy "
                f"{shard.occupancy():.0%} >= {self.config.shed_threshold:.0%} and "
                f"tenant {tenant!r} priority "
                f"{self.config.priority_of(tenant)} < protected "
                f"{self.config.shed_protect_priority}",
                retry_after_s=shard.retry_after_s(),
            )

    async def _dispatch_posterior(
        self,
        request: Dict[str, Any],
        tenant: str,
        session_id: str,
        shard: _Shard,
        deadline_at: float,
        member: Optional[int] = None,
    ) -> Any:
        """Posterior reads prefer the live worker, degrade when it's gone.

        Degraded = served from the last commit snapshot: stale by at
        most one in-flight request, correct, and never queued behind a
        wedge.  Only possible with a durable store; an in-memory service
        reports the overload instead.
        """
        now = time.monotonic()
        top = int(request.get("top", 10))
        blocked = shard.wedged(self.config.wedged_after_s, now) or (
            shard.depth > 0 and shard.queue.qsize() >= shard.depth
        )
        if not blocked:
            self._check_inflight_quota(tenant, shard)
            self._check_backpressure(tenant, shard)
            return await self._enqueue(
                request, "posterior", tenant, session_id, shard, deadline_at,
                member=member,
            )
        if self.config.store_dir is None:
            raise OverloadedError(
                f"shard {shard.index} is saturated and no durable snapshot "
                "exists to serve a degraded read",
                retry_after_s=shard.retry_after_s(),
            )
        self.store.owns(tenant, session_id)
        self.metrics.counter("service.degraded_reads").inc()
        return await asyncio.get_running_loop().run_in_executor(
            None, partial(self.store.posterior_degraded, session_id, top=top)
        )

    async def _enqueue(
        self,
        request: Dict[str, Any],
        op: str,
        tenant: str,
        session_id: str,
        shard: _Shard,
        deadline_at: float,
        member: Optional[int] = None,
        replica: Optional[int] = None,
    ) -> Any:
        future: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        item = _Request(op, tenant, session_id, request, deadline_at, future,
                        member=member, replica=replica)
        try:
            shard.queue.put_nowait(item)
        except asyncio.QueueFull:
            raise OverloadedError(
                f"shard {shard.index} queue is full "
                f"({shard.queue.qsize()}/{shard.depth})",
                retry_after_s=shard.retry_after_s(),
            ) from None
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        self._session_inflight[session_id] = (
            self._session_inflight.get(session_id, 0) + 1
        )
        self.metrics.gauge(f"service.queue_depth.shard{shard.index}").set(
            shard.queue.qsize()
        )
        try:
            return await future
        finally:
            remaining = self._inflight.get(tenant, 1) - 1
            if remaining > 0:
                self._inflight[tenant] = remaining
            else:
                self._inflight.pop(tenant, None)
            left = self._session_inflight.get(session_id, 1) - 1
            if left > 0:
                self._session_inflight[session_id] = left
            else:
                self._session_inflight.pop(session_id, None)

    # -- the shard worker ------------------------------------------------------

    async def _worker(self, shard: _Shard) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await shard.queue.get()
            self.metrics.gauge(f"service.queue_depth.shard{shard.index}").set(
                shard.queue.qsize()
            )
            if item is _SHUTDOWN:
                self._fail_pending(shard)
                return
            if item.future.cancelled():
                continue
            now = time.monotonic()
            if now >= item.deadline_at:
                self.metrics.counter("service.timeouts.queued").inc()
                item.future.set_exception(
                    DeadlineExceededError(
                        f"deadline expired after {now - item.enqueued_at:.3f}s "
                        "on the queue",
                        retry_after_s=shard.retry_after_s(),
                    )
                )
                continue
            shard.busy_since = now
            shard.busy_op = item.op
            try:
                result = await loop.run_in_executor(
                    shard.executor, partial(self._execute, shard, item)
                )
            except BaseException as error:  # noqa: BLE001
                if not item.future.done():
                    item.future.set_exception(error)
            else:
                if not item.future.done():
                    item.future.set_result(result)
            finally:
                shard.busy_since = None
                shard.busy_op = None
                shard.record_latency(time.monotonic() - now)

    def _fail_pending(self, shard: _Shard) -> None:
        while not shard.queue.empty():
            item = shard.queue.get_nowait()
            if item is not _SHUTDOWN and not item.future.done():
                item.future.set_exception(
                    ServiceUnavailableError("server is shutting down")
                )

    # -- process mode: placement, forwarding, supervision ----------------------

    def _place_session(self, session_id: str) -> int:
        """Resolve the owning shard process (event-loop only).

        Sticky-by-default: a session keeps its owner until that owner
        dies (immediate rendezvous failover inside ``place``) or an
        explicit migrate-home fires here.  Migration is gated on the
        session having **zero** in-flight requests, so two lanes can
        never interleave work for one session — the ordering guarantee
        the single-process service gets from shard affinity survives
        rebalancing.
        """
        placement = self._placement
        member = placement.place(session_id)
        if not self._needs_rebalance or self._session_inflight.get(session_id, 0):
            return member
        target = placement.home(session_id)
        if target == member:
            if not placement.displaced():
                self._needs_rebalance = False
            return member
        old_shard = self._shards[member]
        if old_shard.depth > 0 and old_shard.queue.qsize() >= old_shard.depth:
            return member  # old lane saturated — defer the migration
        move = placement.migrate_home(session_id)
        if move is None:  # pragma: no cover — raced with a concurrent heal
            return placement.place(session_id)
        self._enqueue_release(member, session_id)
        self.metrics.counter("service.migrations").inc()
        return target

    def _enqueue_release(self, member: int, session_id: str) -> None:
        """FIFO a ``release`` marker onto the old owner's lane.

        Queued *behind* any in-flight work for that lane, so the old
        shard drops its live copy only after everything it was already
        asked to do.  Fire-and-forget: a lost release leaves a harmless
        idle copy that never serves again.
        """
        future: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        item = _Request(
            "release", "", session_id, {"op": "release", "session": session_id},
            time.monotonic() + 30.0, future, member=member,
        )
        try:
            self._shards[member].queue.put_nowait(item)
        except asyncio.QueueFull:  # pragma: no cover — capacity checked above
            pass

    def _link(self, lane: int, member: int) -> Any:
        """This lane's persistent connection to ``member`` (lane-thread
        confined; created lazily, re-negotiated on every reconnect)."""
        links = self._links[lane]
        if member not in links:
            from .shard import ShardLink

            links[member] = ShardLink(
                member,
                partial(self._pool.address, member),
                timeout_s=self.config.shard_start_timeout_s,
                shard_id=lane,
            )
        return links[member]

    def _execute_forward(self, shard: _Shard, item: _Request) -> Any:
        """Forward one admitted request to its shard process (lane thread).

        The wire format is the same framed codec protocol clients speak;
        the deadline travels as the *remaining* budget so the shard's
        own :class:`DeadlineHooks` cancels at the right wall-clock
        moment.  A transport failure is treated as a death signal: the
        event loop re-places the session (rendezvous failover) and the
        client's retry lands on the replica — which lazily recovers the
        acked state from the shared store.
        """
        op, payload, session_id = item.op, item.payload, item.session
        member = item.member if item.member is not None else shard.index
        if op == "release":
            try:
                self._link(shard.index, member).call(
                    {"op": "release", "session": session_id}, timeout_s=10.0
                )
            except Exception:
                pass  # fire-and-forget (see _enqueue_release)
            return {"session": session_id, "released": True}

        if op != "create":
            self.store.owns(item.tenant, session_id)
        remaining = item.deadline_at - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceededError(
                "deadline expired before the request reached its shard process"
            )
        forward = dict(payload)
        forward["tenant"] = item.tenant
        forward["deadline_s"] = remaining
        with shard.tracer.span(f"service.forward.{op}") as span:
            span.count("member", member)
            try:
                result = self._link(shard.index, member).call(
                    forward, timeout_s=remaining + 5.0
                )
            except ServiceUnavailableError:
                self._loop.call_soon_threadsafe(self._note_shard_death, member)
                if op == "posterior" and self.config.store_dir is not None:
                    # Failover window: serve the read degraded from the
                    # shared snapshots instead of failing it.
                    self.metrics.counter("service.degraded_reads").inc()
                    return self.store.posterior_degraded(
                        session_id, top=int(payload.get("top", 10))
                    )
                raise

        # -- post-ack bookkeeping (the shard already committed) -----------
        if op == "create":
            self.store.register_meta(
                session_id, item.tenant,
                program=payload.get("program", ""),
                env=payload.get("env"),
            )
        elif op == "close":
            self.store.forget_meta(session_id)
            self._loop.call_soon_threadsafe(self._placement.forget, session_id)
        if (
            item.replica is not None
            and item.replica != member
            and op in ("create", "observe", "edit")
        ):
            try:
                self._link(shard.index, item.replica).call(
                    {"op": "replicate", "session": session_id}, timeout_s=10.0
                )
                self.metrics.counter("service.replications").inc()
            except Exception:
                # Durability never depended on the warm replica — the
                # commit is already fsynced in the shared store.
                self.metrics.counter("service.replication_failures").inc()
        return result

    def _note_shard_death(self, member: int) -> None:
        """Event-loop half of failover: mark dead, re-place its keys."""
        placement = self._placement
        if placement is None or not placement.is_alive(member):
            return
        if self._pool is not None and self._pool.is_alive(member):
            # The process is fine — the lane saw a transient transport
            # error (e.g. a timeout on a wedged translation).  Killing a
            # healthy member over it would thrash placement.
            return
        try:
            moved = placement.on_death(member)
        except RuntimeError:
            moved = []  # no survivors; _dispatch rejects until a respawn
        self.metrics.counter("service.failovers").inc()
        if moved:
            self.metrics.counter("service.failover_moves").inc(len(moved))

    def _on_shard_join(self, member: int) -> None:
        """Event-loop half of a respawn: rejoin + schedule rebalance."""
        placement = self._placement
        if placement is None or placement.is_alive(member):
            return
        placement.on_join(member)
        if placement.displaced():
            self._needs_rebalance = True
        self.metrics.counter("service.respawns").inc()

    def _supervise(self) -> None:
        """Supervisor thread: respawn dead shard processes.

        Death detection has two paths — a lane's transport error (fast,
        request-driven) and this poll (covers idle shards).  Both funnel
        through :meth:`_note_shard_death` on the event loop, which keeps
        every placement mutation loop-confined.
        """
        while not self._supervisor_stop.is_set():
            for member in self._pool.poll_dead():
                if self._supervisor_stop.is_set():
                    return
                try:
                    self._loop.call_soon_threadsafe(self._note_shard_death, member)
                except RuntimeError:
                    return  # loop is gone (abrupt kill)
                try:
                    self._pool.respawn(member)
                except Exception:
                    self.metrics.counter("service.respawn_failures").inc()
                    continue
                try:
                    self._loop.call_soon_threadsafe(self._on_shard_join, member)
                except RuntimeError:
                    return
            self._supervisor_stop.wait(0.2)

    # -- the actual work (shard worker thread) ---------------------------------

    def _execute(self, shard: _Shard, item: _Request) -> Any:
        """Run one admitted request against the durable store.

        Executes on the shard's worker thread.  Every mutating op runs
        under :class:`DeadlineHooks`; the commit (checkpoint fsync)
        happens inside the store call, before this returns — i.e. before
        any ack is written.  In process mode the work is forwarded to
        the owning shard process instead (:meth:`_execute_forward`).
        """
        if self._process_mode:
            return self._execute_forward(shard, item)
        op, payload, session_id = item.op, item.payload, item.session
        hooks = DeadlineHooks(item.deadline_at)
        with shard.tracer.span(f"service.{op}") as span:
            span.count("shard", shard.index)
            if op == "create":
                return self.store.create_session(
                    item.tenant,
                    session_id,
                    self._require_str(payload, "program"),
                    env=self._optional_dict(payload, "env"),
                    num_particles=payload.get("num_particles"),
                    seed=payload.get("seed"),
                )
            self.store.owns(item.tenant, session_id)
            if op == "edit":
                apply = partial(
                    self.store.apply_edit,
                    session_id,
                    self._require_str(payload, "program"),
                    hooks=hooks,
                )
            elif op == "observe":
                apply = partial(
                    self.store.apply_observation,
                    session_id,
                    self._require_str(payload, "statement"),
                    hooks=hooks,
                )
            elif op == "posterior":
                return self.store.posterior(
                    session_id, top=int(payload.get("top", 10))
                )
            elif op == "close":
                return self.store.close_session(session_id)
            else:  # pragma: no cover — _dispatch already validated op
                raise BadRequestError(f"unknown op {op!r}")
            if self.translator_middleware is not None:
                return self.translator_middleware(op, session_id, apply)
            return apply()

    @staticmethod
    def _require_str(payload: Dict[str, Any], field: str) -> str:
        value = payload.get(field)
        if not isinstance(value, str) or not value.strip():
            raise BadRequestError(f"op needs a non-empty string {field!r}")
        return value

    @staticmethod
    def _optional_dict(payload: Dict[str, Any], field: str) -> Optional[Dict[str, Any]]:
        value = payload.get(field)
        if value is None:
            return None
        if not isinstance(value, dict):
            raise BadRequestError(f"{field!r} must be a mapping")
        return value

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        now = time.monotonic()
        stats: Dict[str, Any] = {
            "config": self.config.to_dict(),
            "closing": self._closing,
            "sessions": self.store.session_ids(),
            "live_sessions": self.store.manager.live_sessions(),
            "recovered_sessions": list(self.recovered_sessions),
            "recovery_seconds": self.recovery_seconds,
            "inflight": dict(self._inflight),
            "shards": [
                {
                    "index": shard.index,
                    "queue_depth": shard.queue.qsize(),
                    "queue_limit": shard.depth,
                    "busy_op": shard.busy_op,
                    "busy_for_s": (
                        None if shard.busy_since is None else now - shard.busy_since
                    ),
                    "ewma_latency_s": shard.ewma_latency_s,
                    "completed": shard.completed,
                }
                for shard in self._shards
            ],
            "metrics": self.metrics.to_dict(),
        }
        if self._process_mode:
            placement = self._placement
            stats["process_mode"] = {
                "shard_processes": self.config.shard_processes,
                "replicate": self.config.replicate,
                "alive_members": placement.alive_members(),
                "assignments": len(placement.assignments()),
                "displaced": placement.displaced(),
                "placement_moves": placement.moves,
                "needs_rebalance": self._needs_rebalance,
                "pids": self._pool.pids(),
            }
        return stats

    def trace_snapshot(self) -> Dict[str, Any]:
        """Per-shard request span trees (each tracer is thread-confined)."""
        return {
            f"shard{shard.index}": shard.tracer.to_dict() for shard in self._shards
        }


class ServiceHandle:
    """A service running on a dedicated event-loop thread (tests, benchmarks,
    the loadgen's self-hosted mode).

    ``start`` blocks until the server is accepting; ``stop`` shuts it
    down gracefully; ``kill`` abandons the loop thread without draining
    — the in-process stand-in for a crashed worker (the real SIGKILL
    drill lives in the CI job and the chaos harness, which use ``repro
    serve`` subprocesses).
    """

    def __init__(self, service: InferenceService, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop):
        self.service = service
        self._thread = thread
        self._loop = loop
        self._stop_event: Optional[asyncio.Event] = None

    @classmethod
    def start(
        cls,
        config: ServiceConfig,
        *,
        translator_middleware: Optional[Any] = None,
        timeout_s: float = 30.0,
    ) -> "ServiceHandle":
        ready: "threading.Event" = threading.Event()
        holder: Dict[str, Any] = {}

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            service = InferenceService(
                config, translator_middleware=translator_middleware
            )
            stop_event = asyncio.Event()
            holder["service"] = service
            holder["loop"] = loop
            holder["stop_event"] = stop_event

            async def main() -> None:
                serve_task = asyncio.create_task(service.serve())
                await service.started.wait()
                ready.set()
                await stop_event.wait()
                await service.stop()
                serve_task.cancel()
                try:
                    await serve_task
                except asyncio.CancelledError:
                    pass

            try:
                loop.run_until_complete(main())
            except RuntimeError:
                pass  # kill(): loop stopped abruptly mid-flight
            finally:
                try:
                    pending = asyncio.all_tasks(loop)
                    for task in pending:
                        task.cancel()
                    if pending:
                        loop.run_until_complete(
                            asyncio.gather(*pending, return_exceptions=True)
                        )
                except RuntimeError:
                    pass
                loop.close()

        thread = threading.Thread(target=run, name="repro-service", daemon=True)
        thread.start()
        if not ready.wait(timeout_s):
            raise ServiceUnavailableError("service failed to start in time")
        handle = cls(holder["service"], thread, holder["loop"])
        handle._stop_event = holder["stop_event"]
        return handle

    @property
    def address(self) -> Tuple[str, int]:
        return self.service.host, self.service.port

    def stop(self, timeout_s: float = 10.0) -> None:
        if self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                return  # loop already gone
        self._thread.join(timeout_s)

    def kill(self) -> None:
        """Abrupt in-process death: stop the loop mid-flight, no draining.

        In process mode the shard worker processes are reaped afterwards
        — a real router SIGKILL would orphan them briefly until their
        parent-pid watchdogs fire, but tests must not leak children.
        """
        try:
            self._loop.call_soon_threadsafe(self._loop.stop)
        except RuntimeError:
            pass
        self._thread.join(5.0)
        if self.service._pool is not None:
            self.service._pool.stop_all()
