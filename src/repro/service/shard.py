"""Shard worker processes: the scale-out half of the inference service.

With ``ServiceConfig(shard_processes=N)`` the service splits into a
*router* process and ``N`` *shard* processes:

* the **router** (:class:`~repro.service.server.InferenceService` in
  process mode) keeps everything cheap and global — the asyncio front
  end, admission control, per-tenant quotas, deadlines, backpressure,
  and the degradation ladder — and forwards admitted requests over the
  existing framed codec wire format (:mod:`repro.service.wire`) to the
  shard that owns the session;
* each **shard process** (this module's :class:`ShardServer`, spawned as
  ``python -m repro.service.shard``) runs its own
  :class:`~repro.store.session.SessionManager` over the *shared*
  ``store_dir``, so inference work runs on real cores instead of being
  GIL-capped, and every commit lands in the same fsynced snapshot store
  the single-process service uses.

Placement and failover
----------------------

Sessions are spread over shard processes by the rendezvous-hashed
:class:`~repro.service.placement.PlacementMap`.  Shards recover sessions
**lazily**: a shard that receives an op for a session it does not hold
live replays that session's newest valid commit snapshot from the shared
store.  That single property is what makes failover lossless: the commit
protocol is write-ahead-of-ack, so when a shard process is SIGKILLed the
replica (the rendezvous runner-up) rebuilds exactly the acknowledged
state — byte-identical snapshots, nothing in the dead process's memory
was ever part of the contract.  With ``replicate=True`` the router also
pushes a ``replicate`` op to the runner-up after every acked mutation,
keeping a warm in-memory copy there so degraded reads during recovery
come from memory instead of disk.

Version negotiation
-------------------

The first frame the router sends on every shard connection is a
``hello`` carrying :data:`~repro.service.wire.WIRE_SCHEMA`.  A shard
built against an *older* schema refuses the handshake with a structured
``schema_version`` error, which the router surfaces as
:class:`~repro.errors.SchemaVersionError` — ``repro serve`` maps it to
exit code 2 (usage/configuration), the same rung as a newer-schema
checkpoint.  The ``--wire-schema`` flag of the module entry point exists
so tests can stand up a deliberately old shard without an old build.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import socket
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import (
    BadRequestError,
    SchemaVersionError,
    ServiceUnavailableError,
    SessionError,
)
from ..observability import MetricsRegistry
from ..parallel.worker import python_argv, spawn_ready_process, stop_process
from ..store.codec import dumps, loads
from ..store.session import _check_session_id
from .client import _LENGTH, _read_exact
from .config import ServiceConfig
from .server import DeadlineHooks
from .state import DurableSessionStore
from .wire import (
    SHARD_OPS,
    WIRE_SCHEMA,
    FrameError,
    encode_error,
    encode_hello,
    encode_ok,
    raise_for_response,
    read_frame,
    write_frame,
)

__all__ = [
    "ShardServer",
    "ShardLink",
    "ShardProcessHandle",
    "ShardProcessPool",
    "main",
]

#: Concurrent blocking handlers per shard process.  The owning lane's
#: ops arrive serialized on one connection, so extra workers only serve
#: cross-lane traffic (replicate / release) — a small pool keeps a warm
#: replica refresh from queueing behind a long translation.
_SHARD_WORKERS = 4


class ShardServer:
    """One shard process's request loop over its own session store.

    Speaks :data:`~repro.service.wire.SHARD_OPS` on the framed codec
    protocol.  Admission control already happened in the router, so this
    server does only the work: lazy recovery, tenant ownership, the
    op itself, and the write-ahead commit inside the store call.

    Parameters
    ----------
    config:
        The service config (the shard uses ``store_dir``, ``collection``,
        ``checkpoint_keep``, ``session_capacity``, ``num_particles``,
        ``max_frame_bytes``).
    shard_id:
        This process's member index in the placement map (telemetry and
        handshake echo only — placement lives in the router).
    wire_schema:
        The newest request schema this shard accepts.  Overridable so
        tests can simulate an older build refusing a newer router.
    """

    def __init__(
        self,
        config: ServiceConfig,
        shard_id: int = 0,
        *,
        wire_schema: int = WIRE_SCHEMA,
        metrics: Optional[MetricsRegistry] = None,
    ):
        # The shard never spawns processes of its own, whatever the
        # router-side config says.
        self.config = config.replace(shard_processes=0, port=0)
        self.shard_id = int(shard_id)
        self.wire_schema = int(wire_schema)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = DurableSessionStore(self.config)
        self._executor = ThreadPoolExecutor(
            max_workers=_SHARD_WORKERS,
            thread_name_prefix=f"repro-shardproc-{shard_id}",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self.started = asyncio.Event()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.completed = 0

    # -- lifecycle -------------------------------------------------------------

    async def serve(self) -> None:
        """Bind and accept until cancelled.  No recovery sweep here:
        sessions are recovered lazily, one by one, as ops arrive."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, 0
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self.started.set()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- connections -----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_frame(
                        reader, max_bytes=self.config.max_frame_bytes
                    )
                except FrameError as error:
                    await write_frame(writer, encode_error(error))
                    break
                if request is None:
                    break
                response = await self._handle(request)
                await write_frame(writer, response)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _handle(self, request: Any) -> Dict[str, Any]:
        try:
            if not isinstance(request, dict):
                raise BadRequestError(
                    f"request must be a document, got {type(request).__name__}"
                )
            op = request.get("op")
            if op not in SHARD_OPS:
                raise BadRequestError(
                    f"unknown op {op!r}; expected one of {list(SHARD_OPS)}"
                )
            if op == "hello":
                return encode_ok(self._hello(request))
            if op == "ping":
                return encode_ok({"pong": True, "shard": self.shard_id})
            if op == "stats":
                return encode_ok(self.stats())
            result = await asyncio.get_running_loop().run_in_executor(
                self._executor, partial(self._execute, op, request)
            )
            self.completed += 1
            return encode_ok(result)
        except BaseException as error:  # noqa: BLE001 — every error answers
            return encode_error(error)

    # -- version negotiation ---------------------------------------------------

    def _hello(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Accept or refuse the router's announced schema.

        A router speaking a *newer* schema than this build supports is
        refused with a structured ``schema_version`` error — forwarded
        requests could otherwise carry shapes this shard would silently
        mis-handle.  An older router is fine (schemas only add fields).
        """
        found = int(request.get("wire_schema", 0))
        if found > self.wire_schema:
            raise SchemaVersionError(
                f"shard {self.shard_id} speaks wire schema "
                f"{self.wire_schema}, router announced {found}; "
                "upgrade the shard build before scaling out",
                found=found,
                supported=self.wire_schema,
            )
        return {
            "wire_schema": self.wire_schema,
            "shard": self.shard_id,
            "pid": os.getpid(),
        }

    # -- the blocking work (executor threads) ----------------------------------

    def _ensure_live(self, session_id: str) -> None:
        """Lazy recovery: pull the session from the shared store on
        first touch.  This is the failover mechanism — nothing more."""
        try:
            self.store.meta(session_id)
            return
        except SessionError:
            pass
        if not self.store.recover_session(session_id):
            raise SessionError(f"unknown session {session_id!r}")

    def _execute(self, op: str, request: Dict[str, Any]) -> Any:
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise BadRequestError("request needs a 'session' id")
        _check_session_id(session_id)

        if op == "replicate":
            refreshed = self.store.recover_session(session_id)
            self.metrics.counter("shard.replications").inc()
            return {"session": session_id, "replicated": refreshed}
        if op == "release":
            released = self.store.release_session(session_id)
            self.metrics.counter("shard.releases").inc()
            return {"session": session_id, "released": released}

        tenant = request.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            raise BadRequestError("request needs a non-empty 'tenant'")
        hooks = None
        deadline_s = request.get("deadline_s")
        if deadline_s is not None:
            hooks = DeadlineHooks(time.monotonic() + float(deadline_s))

        if op == "create":
            program = request.get("program")
            if not isinstance(program, str) or not program.strip():
                raise BadRequestError("op needs a non-empty string 'program'")
            return self.store.create_session(
                tenant,
                session_id,
                program,
                env=request.get("env"),
                num_particles=request.get("num_particles"),
                seed=request.get("seed"),
            )

        self._ensure_live(session_id)
        self.store.owns(tenant, session_id)
        if op == "edit":
            program = request.get("program")
            if not isinstance(program, str) or not program.strip():
                raise BadRequestError("op needs a non-empty string 'program'")
            return self.store.apply_edit(session_id, program, hooks=hooks)
        if op == "observe":
            statement = request.get("statement")
            if not isinstance(statement, str) or not statement.strip():
                raise BadRequestError("op needs a non-empty string 'statement'")
            return self.store.apply_observation(session_id, statement, hooks=hooks)
        if op == "posterior":
            return self.store.posterior(session_id, top=int(request.get("top", 10)))
        if op == "close":
            return self.store.close_session(session_id)
        raise BadRequestError(f"unknown op {op!r}")  # pragma: no cover

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "shard": self.shard_id,
            "pid": os.getpid(),
            "wire_schema": self.wire_schema,
            "sessions": self.store.session_ids(),
            "live_sessions": self.store.manager.live_sessions(),
            "completed": self.completed,
            "metrics": self.metrics.to_dict(),
        }


# ---------------------------------------------------------------------------
# Router side: links and process lifecycle
# ---------------------------------------------------------------------------


class ShardLink:
    """One blocking connection from a router lane to a shard process.

    Thread-confined: each router lane's worker thread owns its own links
    (one per peer member), so no locking is needed.  Every (re)connect
    re-runs the ``hello`` negotiation — a respawned shard is re-vetted
    before any request reaches it.  The peer address is looked up
    through ``address_fn`` at connect time, because a respawned shard
    binds a fresh ephemeral port.
    """

    def __init__(
        self,
        member: int,
        address_fn: Callable[[], Tuple[str, int]],
        *,
        timeout_s: float = 30.0,
        shard_id: Optional[int] = None,
    ):
        self.member = int(member)
        self.address_fn = address_fn
        self.timeout_s = float(timeout_s)
        self.shard_id = shard_id
        self.peer_schema: Optional[int] = None
        self._sock: Optional[socket.socket] = None

    def connect(self) -> "ShardLink":
        if self._sock is not None:
            return self
        host, port = self.address_fn()
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=self.timeout_s
            )
        except OSError as error:
            raise ServiceUnavailableError(
                f"cannot reach shard {self.member} at {host}:{port}: {error}"
            ) from error
        try:
            info = self._roundtrip(encode_hello(self.shard_id), self.timeout_s)
        except SchemaVersionError:
            self.close()
            raise
        except Exception:
            self.close()
            raise
        self.peer_schema = int(info.get("wire_schema", 0)) if isinstance(info, dict) else None
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def _roundtrip(self, payload: Dict[str, Any], timeout_s: float) -> Any:
        sock = self._sock
        assert sock is not None
        try:
            sock.settimeout(timeout_s)
            body = dumps(payload, "json")
            sock.sendall(_LENGTH.pack(len(body)) + body)
            (length,) = _LENGTH.unpack(_read_exact(sock, _LENGTH.size))
            response = loads(_read_exact(sock, length))
        except ServiceUnavailableError:
            self.close()
            raise
        except (OSError, ValueError) as error:
            self.close()
            raise ServiceUnavailableError(
                f"transport failure talking to shard {self.member}: {error}"
            ) from error
        return raise_for_response(response)

    def call(
        self, payload: Dict[str, Any], *, timeout_s: Optional[float] = None
    ) -> Any:
        """One forwarded request; raises the shard's typed error.

        Transport failures poison the connection and surface as
        retryable :class:`~repro.errors.ServiceUnavailableError` — the
        router treats them as a death signal for this member.
        """
        self.connect()
        return self._roundtrip(
            payload, self.timeout_s if timeout_s is None else float(timeout_s)
        )


class ShardProcessHandle:
    """Lifecycle of one spawned ``python -m repro.service.shard``.

    Readiness is the port-file handshake from
    :func:`repro.parallel.worker.spawn_ready_process`: the child writes
    ``<port>\\n<pid>`` only once its socket is bound, so a returned
    handle is always connectable.
    """

    def __init__(
        self,
        member: int,
        config_path: Path,
        run_dir: Path,
        *,
        timeout_s: float = 30.0,
        wire_schema: Optional[int] = None,
    ):
        self.member = int(member)
        self.config_path = Path(config_path)
        self.run_dir = Path(run_dir)
        self.timeout_s = float(timeout_s)
        self.wire_schema = wire_schema
        self.process: Optional[Any] = None
        self.host = "127.0.0.1"
        self.port: Optional[int] = None
        self.spawns = 0

    def spawn(self) -> "ShardProcessHandle":
        ready_file = self.run_dir / f"shard-{self.member}.port"
        argv = python_argv(
            "repro.service.shard",
            "--config", str(self.config_path),
            "--shard-id", str(self.member),
            "--port-file", str(ready_file),
            "--parent-pid", str(os.getpid()),
        )
        if self.wire_schema is not None:
            argv += ["--wire-schema", str(self.wire_schema)]
        self.process, content = spawn_ready_process(
            argv, ready_file, timeout_s=self.timeout_s
        )
        self.port = int(content.split()[0])
        self.spawns += 1
        return self

    @property
    def pid(self) -> Optional[int]:
        return None if self.process is None else self.process.pid

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def address(self) -> Tuple[str, int]:
        if self.port is None:
            raise ServiceUnavailableError(
                f"shard {self.member} has not completed its handshake"
            )
        return (self.host, self.port)

    def kill(self) -> None:
        """SIGKILL, no grace — the chaos drill's weapon."""
        if self.process is not None:
            try:
                self.process.kill()
            except OSError:
                pass
            try:
                self.process.wait(timeout=5.0)
            except Exception:
                pass

    def stop(self) -> Optional[int]:
        if self.process is None:
            return None
        return stop_process(self.process)


class ShardProcessPool:
    """Spawn, probe, respawn, and stop the shard process fleet.

    The pool owns a scratch run directory holding the serialized config
    and the per-member port files.  :meth:`start` performs the ``hello``
    probe against every member, so a schema mismatch fails the router's
    startup — before any client traffic — with
    :class:`~repro.errors.SchemaVersionError`.
    """

    def __init__(
        self,
        config: ServiceConfig,
        *,
        run_dir: Optional[Any] = None,
        wire_schema: Optional[int] = None,
    ):
        if config.shard_processes < 1:
            raise ValueError("ShardProcessPool needs shard_processes >= 1")
        self.config = config
        self._own_run_dir = run_dir is None
        self.run_dir = Path(
            tempfile.mkdtemp(prefix="repro-shards-") if run_dir is None else run_dir
        )
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.config_path = self.run_dir / "shard-config.json"
        self.config_path.write_text(json.dumps(config.to_dict(), indent=2))
        self.handles: Dict[int, ShardProcessHandle] = {
            member: ShardProcessHandle(
                member,
                self.config_path,
                self.run_dir,
                timeout_s=config.shard_start_timeout_s,
                wire_schema=wire_schema,
            )
            for member in range(config.shard_processes)
        }

    def start(self) -> None:
        """Spawn every member and hello-probe each one."""
        try:
            for handle in self.handles.values():
                handle.spawn()
            for member in self.handles:
                self.probe(member)
        except BaseException:
            self.stop_all()
            raise

    def probe(self, member: int) -> Dict[str, Any]:
        """One-shot hello round trip (version negotiation)."""
        link = ShardLink(
            member,
            self.handles[member].address,
            timeout_s=self.config.shard_start_timeout_s,
        )
        try:
            link.connect()
            return {"member": member, "wire_schema": link.peer_schema}
        finally:
            link.close()

    def address(self, member: int) -> Tuple[str, int]:
        return self.handles[member].address()

    def is_alive(self, member: int) -> bool:
        return self.handles[member].alive()

    def poll_dead(self) -> List[int]:
        return [m for m, handle in self.handles.items() if not handle.alive()]

    def respawn(self, member: int) -> None:
        """Bring a dead member back (fresh process, fresh port)."""
        self.handles[member].spawn()
        self.probe(member)

    def kill(self, member: int) -> None:
        self.handles[member].kill()

    def stop_all(self) -> None:
        for handle in self.handles.values():
            try:
                handle.stop()
            except Exception:
                pass

    def pids(self) -> Dict[int, Optional[int]]:
        return {m: handle.pid for m, handle in self.handles.items()}


# ---------------------------------------------------------------------------
# Process entry point
# ---------------------------------------------------------------------------


def _parent_watchdog(parent_pid: int) -> None:
    """Exit when the router dies — a SIGKILLed router must not leak a
    fleet of orphan shard processes."""
    while True:
        time.sleep(1.0)
        if os.getppid() != parent_pid:
            os._exit(0)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.shard",
        description="One inference-service shard worker process.",
    )
    parser.add_argument("--config", required=True,
                        help="path to the serialized ServiceConfig (JSON)")
    parser.add_argument("--shard-id", type=int, required=True)
    parser.add_argument("--port-file", required=True,
                        help="readiness handshake: '<port>\\n<pid>' is "
                             "written here once the socket is bound")
    parser.add_argument("--parent-pid", type=int, default=None,
                        help="exit if reparented away from this pid")
    parser.add_argument("--wire-schema", type=int, default=WIRE_SCHEMA,
                        help="advertised request-schema version "
                             "(test seam for negotiation drills)")
    args = parser.parse_args(argv)

    with open(args.config, "r") as handle:
        fields = json.load(handle)
    config = ServiceConfig(**fields)

    if args.parent_pid is not None:
        threading.Thread(
            target=_parent_watchdog, args=(args.parent_pid,), daemon=True
        ).start()

    server = ShardServer(config, args.shard_id, wire_schema=args.wire_schema)

    async def run() -> None:
        serve_task = asyncio.ensure_future(server.serve())
        await server.started.wait()
        # Atomic publish: a reader never sees a half-written port.
        port_file = Path(args.port_file)
        tmp = port_file.with_name(f".tmp-{port_file.name}-{os.getpid()}")
        tmp.write_text(f"{server.port}\n{os.getpid()}\n")
        os.replace(tmp, port_file)
        await serve_task

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess
    raise SystemExit(main())
