"""Durable, transactional session state for the inference service.

:class:`DurableSessionStore` composes the two persistence substrates
into the service's commit protocol:

* the :class:`~repro.store.session.SessionManager` holds the *live*
  sessions (bounded by ``session_capacity``, LRU-spilled to
  ``<store_dir>/lru/`` and transparently reloaded);
* a per-session :class:`~repro.store.checkpoint.CheckpointManager`
  under ``<store_dir>/checkpoints/<session>/`` records one atomic,
  checksummed snapshot per *committed* mutation (create, observe,
  edit), numbered by edit count.

The commit protocol is write-ahead-of-ack: a mutation checkpoint is
fsynced to disk **before** the server acknowledges the request, so "the
client saw an ok" implies "the state survives SIGKILL".  Conversely a
request that fails — a translation fault, a deadline cancellation — is
rolled back by :meth:`InferenceSession.submit`'s transactional
semantics and never checkpointed, so failures cannot corrupt state
either.

On restart, :meth:`DurableSessionStore.recover` replays the newest
*valid* snapshot of every session: torn, zero-byte, or truncated files
from a crash mid-write are skipped by
:meth:`~repro.store.checkpoint.CheckpointManager.load_latest` in favor
of the previous snapshot (``checkpoint_keep >= 2`` guarantees one
exists), and the recovered collections are byte-identical to what was
acknowledged.
"""

from __future__ import annotations

import shutil
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..core import CorrespondenceTranslator
from ..core.config import InferenceConfig
from ..core.importance import importance_sampling
from ..errors import BadRequestError, SessionError
from ..graph import diff_correspondence
from ..lang import lang_model, parse_program
from ..observability import Hooks
from ..store import CheckpointManager, SessionManager
from ..store.session import InferenceSession
from .config import ServiceConfig

__all__ = ["DurableSessionStore", "value_histogram", "insert_observation"]


def value_histogram(collection: Any, top: int = 10) -> List[Dict[str, Any]]:
    """Weighted return-value distribution, largest mass first.

    The same summary ``repro translate`` prints, in JSON-able form.
    """
    values: Dict[Any, float] = {}
    weights = collection.normalized_weights()
    if hasattr(collection, "items"):
        particles: Any = collection.items
    else:
        # Columnar collections expose per-particle views instead of a
        # trace list; the views carry the same ``return_value``.
        particles = (collection.particle(i) for i in range(len(collection)))
    for trace, weight in zip(particles, weights):
        key = trace.return_value
        if isinstance(key, dict):
            key = tuple(sorted(key.items()))
        if isinstance(key, list):
            key = tuple(key)
        values[key] = values.get(key, 0.0) + float(weight)
    ranked = sorted(values.items(), key=lambda kv: (-kv[1], str(kv[0])))[:top]
    return [
        {"value": _jsonable(value), "probability": probability}
        for value, probability in ranked
    ]


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def insert_observation(source: str, statement: str) -> str:
    """Insert an observation statement before the trailing ``return``.

    The ``observe`` op models incremental data arrival: the client ships
    one statement (``observe(gauss(x, 1) == 2.5);``) and the server
    splices it into the session's current program, producing the edited
    program the usual translation path then runs.  The splice point is
    the *last* ``return`` keyword so the observation is reachable; a
    program without a return gets the statement appended.
    """
    statement = statement.strip()
    if not statement:
        raise BadRequestError("observe needs a non-empty statement")
    if not statement.endswith(";"):
        statement += ";"
    index = source.rfind("return")
    if index < 0:
        return f"{source.rstrip()}\n{statement}\n"
    return f"{source[:index].rstrip()}\n{statement}\n{source[index:]}"


class DurableSessionStore:
    """Sessions + program metadata + the write-ahead commit protocol.

    All mutating methods are safe to call from multiple shard worker
    threads (for different sessions) concurrently; per-session ordering
    is the server's job (shard affinity) and per-session integrity is
    the session lock's.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        root = None if config.store_dir is None else Path(config.store_dir)
        self.root = root
        lru_dir = None if root is None else root / "lru"
        # The per-session inference config: the service-level collection
        # mode (object vs columnar) rides in here; columnar steps the
        # vectorized runtime cannot represent spill to the object path
        # per step, exactly as in offline inference.
        self._session_config = InferenceConfig(
            resample="adaptive", collection=config.collection
        )
        self.manager = SessionManager(
            lru_dir,
            capacity=config.session_capacity,
            config=self._session_config,
        )
        #: session_id -> {"tenant", "program", "env"}; tiny, always live.
        self._meta: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.RLock()

    # -- helpers ---------------------------------------------------------------

    def _checkpoints_root(self) -> Optional[Path]:
        return None if self.root is None else self.root / "checkpoints"

    def _checkpoints(self, session_id: str) -> Optional[CheckpointManager]:
        root = self._checkpoints_root()
        if root is None:
            return None
        return CheckpointManager(
            root / session_id, keep=self.config.checkpoint_keep
        )

    def _parse(self, source: str, what: str):
        try:
            return parse_program(source)
        except Exception as error:
            raise BadRequestError(f"cannot parse {what}: {error}") from error

    def meta(self, session_id: str) -> Dict[str, Any]:
        with self._lock:
            try:
                return dict(self._meta[session_id])
            except KeyError:
                raise SessionError(f"unknown session {session_id!r}") from None

    def register_meta(
        self,
        session_id: str,
        tenant: str,
        *,
        program: str = "",
        env: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a session's metadata without holding its live state.

        The router process in multi-process mode tracks only metadata —
        tenant ownership for admission control and the session listing —
        while the session itself lives in a shard process.
        """
        with self._lock:
            self._meta[session_id] = {
                "tenant": tenant,
                "program": program,
                "env": dict(env or {}),
            }

    def forget_meta(self, session_id: str) -> None:
        with self._lock:
            self._meta.pop(session_id, None)

    def owns(self, tenant: str, session_id: str) -> None:
        """Tenant isolation: touching another tenant's session is poison."""
        owner = self.meta(session_id)["tenant"]
        if owner != tenant:
            raise BadRequestError(
                f"session {session_id!r} belongs to another tenant"
            )

    def session_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._meta)

    def sessions_of(self, tenant: str) -> List[str]:
        with self._lock:
            return sorted(
                sid for sid, meta in self._meta.items() if meta["tenant"] == tenant
            )

    def disk_bytes(self, session_id: str) -> int:
        """Durable footprint of one session (its checkpoint files)."""
        root = self._checkpoints_root()
        if root is None:
            return 0
        directory = root / session_id
        if not directory.is_dir():
            return 0
        return sum(p.stat().st_size for p in directory.iterdir() if p.is_file())

    # -- commit protocol -------------------------------------------------------

    def _commit(self, session: InferenceSession, meta: Dict[str, Any]) -> None:
        """Write-ahead snapshot: fsynced to disk before any ack."""
        checkpoints = self._checkpoints(session.session_id)
        if checkpoints is None:
            return
        snapshot = session.snapshot()
        checkpoints.save(
            session.num_edits,
            snapshot["collection"],
            rng=snapshot["rng"],
            extra={
                "history": snapshot["history"],
                "tenant": meta["tenant"],
                "program": meta["program"],
                "env": meta["env"],
            },
        )

    def create_session(
        self,
        tenant: str,
        session_id: str,
        source: str,
        *,
        env: Optional[Dict[str, Any]] = None,
        num_particles: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Dict[str, Any]:
        checkpoints = self._checkpoints(session_id)
        if checkpoints is not None and checkpoints.latest_step() is not None:
            # Guard against silently shadowing durable history: a lazy-
            # recovering deployment may not have this session live, but
            # re-creating over existing snapshots would interleave new
            # step-0 state with old step-N files and corrupt recovery.
            raise SessionError(
                f"session {session_id!r} already exists in the durable store"
            )
        program = self._parse(source, "program")
        env = dict(env or {})
        particles = int(num_particles or self.config.num_particles)
        if particles < 1:
            raise BadRequestError(f"num_particles must be >= 1, got {particles}")
        model = lang_model(program, env=env, name="e0")
        rng = np.random.default_rng(seed)
        collection = importance_sampling(model, rng, particles).resample(rng)
        session = self.manager.create(session_id, collection, rng=rng)
        meta = {"tenant": tenant, "program": source, "env": env}
        with self._lock:
            self._meta[session_id] = meta
        self._commit(session, meta)
        return {
            "session": session_id,
            "num_particles": len(collection),
            "ess": collection.effective_sample_size(),
            "num_edits": 0,
        }

    def apply_edit(
        self,
        session_id: str,
        new_source: str,
        *,
        hooks: Optional[Hooks] = None,
    ) -> Dict[str, Any]:
        """Translate the session's collection across a program edit.

        Parses and diffs the programs *before* touching the session, so
        a poison edit is rejected without burning worker time; commits
        the checkpoint before returning, so a returned summary is a
        durable promise.
        """
        meta = self.meta(session_id)
        old_program = self._parse(meta["program"], "current program")
        new_program = self._parse(new_source, "edited program")
        session = self.manager.get(session_id)
        edit_index = session.num_edits
        source_model = lang_model(
            old_program, env=meta["env"], name=f"e{edit_index}"
        )
        target_model = lang_model(
            new_program, env=meta["env"], name=f"e{edit_index + 1}"
        )
        correspondence = diff_correspondence(old_program, new_program)
        translator = CorrespondenceTranslator(
            source_model, target_model, correspondence
        )
        step = session.submit(translator, hooks=hooks)
        meta["program"] = new_source
        with self._lock:
            self._meta[session_id] = meta
        self._commit(session, meta)
        stats = step.stats
        return {
            "session": session_id,
            "num_edits": session.num_edits,
            "num_particles": stats.num_traces,
            "ess": stats.ess_after,
            "resampled": stats.resampled,
            "faults": stats.total_faults,
        }

    def apply_observation(
        self,
        session_id: str,
        statement: str,
        *,
        hooks: Optional[Hooks] = None,
    ) -> Dict[str, Any]:
        meta = self.meta(session_id)
        new_source = insert_observation(meta["program"], statement)
        return self.apply_edit(session_id, new_source, hooks=hooks)

    # -- reads -----------------------------------------------------------------

    def posterior(self, session_id: str, *, top: int = 10) -> Dict[str, Any]:
        session = self.manager.get(session_id)
        collection = session.collection
        return {
            "session": session_id,
            "num_edits": session.num_edits,
            "num_particles": len(collection),
            "ess": collection.effective_sample_size(),
            "values": value_histogram(collection, top),
            "degraded": False,
        }

    def posterior_degraded(
        self, session_id: str, *, top: int = 10
    ) -> Dict[str, Any]:
        """Posterior from the last commit snapshot, never the live worker.

        The degraded rung of the ladder: reads only checkpoint files, so
        it is safe from any thread while the shard worker is wedged on a
        slow translation.
        """
        checkpoints = self._checkpoints(session_id)
        if checkpoints is None:
            raise SessionError(
                f"no durable snapshot for session {session_id!r} "
                "(service is running without store_dir)"
            )
        checkpoint = checkpoints.load_latest()
        if checkpoint is None:
            raise SessionError(
                f"no usable snapshot for session {session_id!r}"
            )
        collection = checkpoint.collection
        return {
            "session": session_id,
            "num_edits": checkpoint.step,
            "num_particles": len(collection),
            "ess": collection.effective_sample_size(),
            "values": value_histogram(collection, top),
            "degraded": True,
        }

    # -- lifecycle -------------------------------------------------------------

    def close_session(self, session_id: str) -> Dict[str, Any]:
        """End a session and delete its durable state.

        Close is the one *destructive* op — recovery must not resurrect
        a session its owner ended — so the checkpoint directory and any
        LRU spill file go with it.
        """
        meta = self.meta(session_id)  # raises for unknown ids
        num_edits = 0
        try:
            num_edits = self.manager.get(session_id).num_edits
        except SessionError:
            pass  # live copy already gone; disk cleanup below still applies
        self.manager.close(session_id, persist=False)
        with self._lock:
            self._meta.pop(session_id, None)
        root = self._checkpoints_root()
        if root is not None:
            shutil.rmtree(root / session_id, ignore_errors=True)
        lru_path = self.manager._path_for(session_id)
        if lru_path is not None and lru_path.exists():
            lru_path.unlink()
        return {"session": session_id, "num_edits": num_edits, "tenant": meta["tenant"]}

    def recover_session(self, session_id: str) -> bool:
        """Replay one session's newest valid snapshot into the live set.

        The lazy single-session flavor of :meth:`recover`: a shard
        process that inherits a session on failover (or after a
        placement move) pulls exactly that session's state from the
        shared store instead of replaying everything.  Returns False
        when the session has no usable snapshot.
        """
        checkpoints = self._checkpoints(session_id)
        if checkpoints is None:
            return False
        checkpoint = checkpoints.load_latest()
        if checkpoint is None:
            return False
        extra = checkpoint.extra
        session = InferenceSession(
            session_id,
            checkpoint.collection,
            checkpoint.rng,
            config=self._session_config,
            history=extra.get("history") or [],
        )
        # Refresh semantics: a stale live copy (a warm replica being
        # re-pulled after a newer commit) is dropped, never merged.
        self.manager.close(session_id, persist=False)
        self.manager.adopt(session)
        with self._lock:
            self._meta[session_id] = {
                "tenant": extra.get("tenant", ""),
                "program": extra.get("program", ""),
                "env": extra.get("env") or {},
            }
        return True

    def release_session(self, session_id: str) -> bool:
        """Drop the live copy of a session; durable state is untouched.

        The inverse of :meth:`recover_session`, used when placement
        moves a session to another shard process: the old owner releases
        its (now stale-to-be) live copy so the next owner's lazy
        recovery is the only reader.  Returns False for ids this store
        never held.
        """
        with self._lock:
            known = session_id in self._meta
            self._meta.pop(session_id, None)
        self.manager.close(session_id, persist=False)
        lru_path = self.manager._path_for(session_id)
        if lru_path is not None and lru_path.exists():
            lru_path.unlink()
        return known

    def scan_meta(self) -> List[str]:
        """Load every session's *metadata* without adopting live state.

        The router-process startup path: it needs tenant ownership and
        session listings for admission control, but the sessions
        themselves live in the shard processes (recovered lazily there).
        Reads only the newest valid snapshot's ``extra`` block.
        """
        root = self._checkpoints_root()
        if root is None or not root.is_dir():
            return []
        scanned: List[str] = []
        for directory in sorted(p for p in root.iterdir() if p.is_dir()):
            session_id = directory.name
            checkpoints = self._checkpoints(session_id)
            checkpoint = checkpoints.load_latest()
            if checkpoint is None:
                continue
            extra = checkpoint.extra
            with self._lock:
                self._meta[session_id] = {
                    "tenant": extra.get("tenant", ""),
                    "program": extra.get("program", ""),
                    "env": extra.get("env") or {},
                }
            scanned.append(session_id)
        return scanned

    def recover(self) -> List[str]:
        """Replay every session's newest valid snapshot (crash recovery).

        Torn/zero-byte/truncated snapshots are skipped in favor of the
        previous one; a session directory with *no* valid snapshot is
        reported but not fatal — the service starts without it rather
        than refusing to start at all.
        """
        root = self._checkpoints_root()
        if root is None or not root.is_dir():
            return []
        recovered: List[str] = []
        for directory in sorted(p for p in root.iterdir() if p.is_dir()):
            if self.recover_session(directory.name):
                recovered.append(directory.name)
        return recovered
