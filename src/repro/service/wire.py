"""The service wire protocol: framed codec documents + error mapping.

Every message — request or response — is one frame::

    4-byte big-endian unsigned length | body

where the body is a :mod:`repro.store.codec` document (canonical strict
JSON by default), so anything the store can persist, the service can
ship: posterior summaries with exact float fidelity, non-finite log
weights, numpy scalars.  The frame length is checked against a hard cap
*before* the body is read, so a poison length prefix cannot make the
server buffer gigabytes.

Requests are dicts with an ``op`` plus op-specific fields; responses are
``{"ok": True, "result": ...}`` or ``{"ok": False, "error": {...}}``.
The error payload is the wire image of the
:class:`~repro.errors.ServiceError` taxonomy — ``code``, ``message``,
``retryable``, and optional ``retry_after_s`` — and
:func:`decode_error` maps it back to the same exception class on the
client, so ``except QuotaExceededError`` works across the network.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Dict, Optional, Type

from ..errors import (
    BadRequestError,
    DeadlineExceededError,
    OverloadedError,
    QuotaExceededError,
    SchemaVersionError,
    ServiceError,
    ServiceUnavailableError,
    SessionError,
)
from ..store.codec import dumps, loads

__all__ = [
    "MAX_FRAME_BYTES",
    "OPS",
    "SHARD_OPS",
    "WIRE_SCHEMA",
    "ERROR_CLASSES",
    "FrameError",
    "read_frame",
    "write_frame",
    "encode_request",
    "encode_hello",
    "encode_ok",
    "encode_error",
    "decode_error",
    "raise_for_response",
]

#: Default hard cap on frame bodies (overridden per-server by
#: ``ServiceConfig.max_frame_bytes``).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: The operations the server dispatches.
OPS = ("create", "observe", "edit", "posterior", "close", "stats", "ping")

#: The request-schema version this build speaks.  The router announces
#: it in the ``hello`` handshake when it connects to a shard process; a
#: shard that only supports an *older* schema refuses the handshake with
#: a structured ``schema_version`` error (mapped back to
#: :class:`~repro.errors.SchemaVersionError`, which ``repro serve``
#: surfaces with exit code 2 — the same taxonomy rung as a newer-schema
#: checkpoint).  Bump on any incompatible change to the request shapes
#: the router forwards.
WIRE_SCHEMA = 1

#: Extra operations spoken only on the router <-> shard-process link
#: (:mod:`repro.service.shard`), on top of :data:`OPS`:
#:
#: * ``hello`` — version negotiation (carries ``wire_schema``);
#: * ``replicate`` — refresh the shard's warm in-memory replica of a
#:   session from the shared commit store;
#: * ``release`` — drop the live copy of a session without touching its
#:   durable state (placement moved it to another shard).
SHARD_OPS = OPS + ("hello", "replicate", "release")

_LENGTH = struct.Struct(">I")


class FrameError(BadRequestError):
    """The connection carried bytes that are not a valid frame."""


#: code -> exception class, the client-side inverse of ``encode_error``.
ERROR_CLASSES: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (
        BadRequestError,
        QuotaExceededError,
        OverloadedError,
        DeadlineExceededError,
        ServiceUnavailableError,
    )
}


async def read_frame(
    reader: asyncio.StreamReader, *, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Any]:
    """Read one frame; None on clean EOF; :class:`FrameError` on poison.

    The length prefix is validated against ``max_bytes`` before any body
    byte is read, so an adversarial prefix cannot force unbounded
    buffering.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between frames
        raise FrameError("connection closed mid-frame") from error
    (length,) = _LENGTH.unpack(prefix)
    if length > max_bytes:
        raise FrameError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError("connection closed mid-frame") from error
    try:
        return loads(body)
    except Exception as error:  # CodecError, json errors, bad magic
        raise FrameError(f"frame body is not a codec document: {error}") from error


def frame_bytes(payload: Any, *, format: str = "json") -> bytes:
    """The full wire image of one message (length prefix + codec body)."""
    body = dumps(payload, format)
    return _LENGTH.pack(len(body)) + body


async def write_frame(
    writer: asyncio.StreamWriter, payload: Any, *, format: str = "json"
) -> None:
    writer.write(frame_bytes(payload, format=format))
    await writer.drain()


def encode_request(op: str, **kwargs: Any) -> Dict[str, Any]:
    request = {"op": op}
    request.update({k: v for k, v in kwargs.items() if v is not None})
    return request


def encode_hello(shard_id: Optional[int] = None) -> Dict[str, Any]:
    """The router's handshake frame: which schema it is about to speak."""
    hello: Dict[str, Any] = {"op": "hello", "wire_schema": WIRE_SCHEMA}
    if shard_id is not None:
        hello["shard"] = int(shard_id)
    return hello


def encode_ok(result: Any) -> Dict[str, Any]:
    return {"ok": True, "result": result}


def encode_error(error: BaseException) -> Dict[str, Any]:
    """The structured rejection payload for any exception.

    Service errors carry their own code/retryability; a
    :class:`~repro.errors.SessionError` maps to ``bad_request`` (the
    client named a session that does not exist or already does); any
    other exception becomes a non-retryable ``internal`` error — the
    connection survives, the payload says what broke.
    """
    if isinstance(error, ServiceError):
        payload: Dict[str, Any] = {
            "code": error.code,
            "message": str(error),
            "retryable": bool(error.retryable),
        }
        if error.retry_after_s is not None:
            payload["retry_after_s"] = float(error.retry_after_s)
        if isinstance(error, QuotaExceededError):
            if error.quota:
                payload["quota"] = error.quota
            if error.limit is not None:
                payload["limit"] = int(error.limit)
        return {"ok": False, "error": payload}
    if isinstance(error, SchemaVersionError):
        # Version negotiation: an older shard refusing a newer router
        # schema (or a newer-schema document on the wire).  Structured
        # and non-retryable — the operator has mismatched builds.
        payload = {
            "code": "schema_version",
            "message": str(error),
            "retryable": False,
        }
        if error.found is not None:
            payload["found"] = int(error.found)
        if error.supported is not None:
            payload["supported"] = int(error.supported)
        return {"ok": False, "error": payload}
    if isinstance(error, SessionError):
        return {
            "ok": False,
            "error": {
                "code": "bad_request",
                "message": str(error),
                "retryable": False,
            },
        }
    return {
        "ok": False,
        "error": {
            "code": "internal",
            "message": f"{type(error).__name__}: {error}",
            "retryable": False,
        },
    }


def decode_error(payload: Dict[str, Any]) -> Exception:
    """Rebuild the typed exception from a rejection payload."""
    if not isinstance(payload, dict):
        return ServiceUnavailableError(f"malformed error payload: {payload!r}")
    code = payload.get("code", "internal")
    message = payload.get("message", code)
    retry_after = payload.get("retry_after_s")
    if code == "schema_version":
        return SchemaVersionError(
            message,
            found=payload.get("found"),
            supported=payload.get("supported"),
        )
    cls = ERROR_CLASSES.get(code)
    if cls is QuotaExceededError:
        return QuotaExceededError(
            message,
            quota=payload.get("quota", ""),
            limit=payload.get("limit"),
            retry_after_s=retry_after,
        )
    if cls is not None:
        return cls(message, retry_after_s=retry_after)
    error = ServiceError(message, retry_after_s=retry_after)
    error.retryable = bool(payload.get("retryable", False))
    return error


def raise_for_response(response: Any) -> Any:
    """Return ``result`` from an ok response, raise the typed error otherwise."""
    if not isinstance(response, dict) or "ok" not in response:
        raise ServiceUnavailableError(f"malformed response: {response!r}")
    if response["ok"]:
        return response.get("result")
    raise decode_error(response.get("error") or {})
