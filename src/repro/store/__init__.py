"""Persistent trace store: codec, checkpoints, and inference sessions.

The durable-state layer for incremental inference (ROADMAP: durable,
resumable, serveable posterior collections).  Three pieces:

* :mod:`repro.store.codec` — versioned strict-JSON (+ optional binary)
  serialization of traces, graph traces, weighted collections, SMC
  stats, and RNG generator state, with bitwise log-weight fidelity;
* :mod:`repro.store.checkpoint` — atomic, checksummed snapshots of
  ``infer_sequence``/annealing runs (wired to
  ``InferenceConfig.checkpoint_dir``/``checkpoint_every``), with
  resume-from-latest and corruption fallback;
* :mod:`repro.store.session` — a keyed registry of live particle
  collections serving program-edit requests, with LRU eviction to the
  on-disk store and per-session metrics.
"""

from .checkpoint import Checkpoint, CheckpointManager
from .codec import (
    AST_REGISTRY,
    BINARY_MAGIC,
    DISTRIBUTION_REGISTRY,
    SCHEMA_VERSION,
    decode_value,
    deserialize,
    dumps,
    encode_value,
    loads,
    serialize,
)
from .session import InferenceSession, SessionManager

__all__ = [
    "SCHEMA_VERSION",
    "BINARY_MAGIC",
    "DISTRIBUTION_REGISTRY",
    "AST_REGISTRY",
    "serialize",
    "deserialize",
    "dumps",
    "loads",
    "encode_value",
    "decode_value",
    "Checkpoint",
    "CheckpointManager",
    "InferenceSession",
    "SessionManager",
]
