"""Atomic, checksummed checkpoints of inference runs.

A checkpoint captures everything needed to continue an
``infer_sequence``/annealing run exactly where it stopped: the step
index, the weighted collection, the RNG generator state at the step
boundary, and optional extras (per-step stats).  Because the RNG state
is part of the snapshot, a killed run resumed from its latest checkpoint
replays the remaining steps with the exact draws the uninterrupted run
would have made — the final collection is byte-identical.

File layout (one file per checkpointed step, ``step-00000007.ckpt``)::

    REPRO-CKPT 1 <sha256-of-body> <body-length>\\n
    <body bytes — a repro.store.codec document, JSON or binary>

Writes are atomic: the body goes to a temporary file in the same
directory, is fsynced, and is renamed over the final name.  A crash
mid-write leaves only a ``.tmp-*`` file, which readers ignore and the
next writer cleans up.  Reads verify the length and checksum, so a torn
or bit-flipped file raises
:class:`~repro.errors.CheckpointCorruptionError`;
:meth:`CheckpointManager.load_latest` treats that as "fall back to the
previous checkpoint" while :meth:`CheckpointManager.load` surfaces it.
A checkpoint written by a *newer* library version raises
:class:`~repro.errors.SchemaVersionError` and is never skipped over —
silently resuming from an older checkpoint instead would corrupt the
run's history.
"""

from __future__ import annotations

import hashlib
import os
import re
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.weighted import WeightedCollection
from ..errors import CheckpointCorruptionError, CodecError, SchemaVersionError
from .codec import dumps, loads

__all__ = ["Checkpoint", "CheckpointManager"]

_HEADER_PREFIX = b"REPRO-CKPT"
_HEADER_VERSION = 1
_STEP_FILE = re.compile(r"^step-(\d{8})\.ckpt$")


@dataclass
class Checkpoint:
    """One loaded checkpoint."""

    step: int
    collection: WeightedCollection
    rng: Optional[np.random.Generator]
    extra: Dict[str, Any] = field(default_factory=dict)
    path: Optional[Path] = None


class CheckpointManager:
    """Snapshot/restore of sequence runs in one directory.

    Parameters
    ----------
    directory:
        Where checkpoint files live; created on first save.
    every:
        Save cadence for :meth:`maybe_save` (``1`` = every step).
    format:
        Wire format of the body: ``"json"`` (canonical strict JSON,
        byte-stable — the default) or ``"binary"``.
    keep:
        When set, only the ``keep`` newest checkpoints are retained;
        older ones are deleted after each successful save.
    """

    def __init__(
        self,
        directory: Any,
        *,
        every: int = 1,
        format: str = "json",
        keep: Optional[int] = None,
    ):
        self.directory = Path(directory)
        if int(every) < 1:
            raise ValueError(f"every must be >= 1, got {every!r}")
        self.every = int(every)
        if format not in ("json", "binary"):
            raise ValueError(f"unknown checkpoint format {format!r}")
        self.format = format
        if keep is not None and int(keep) < 1:
            raise ValueError(f"keep must be >= 1, got {keep!r}")
        self.keep = None if keep is None else int(keep)

    # -- paths ----------------------------------------------------------------

    def path_for(self, step: int) -> Path:
        return self.directory / f"step-{step:08d}.ckpt"

    def list_steps(self) -> List[int]:
        """Steps with a checkpoint file present (unvalidated), ascending."""
        if not self.directory.is_dir():
            return []
        steps = []
        for entry in self.directory.iterdir():
            match = _STEP_FILE.match(entry.name)
            if match:
                steps.append(int(match.group(1)))
        return sorted(steps)

    def latest_step(self) -> Optional[int]:
        """The newest step with a checkpoint file present (unvalidated).

        Cheap directory metadata only — the failover path uses it to
        compare "is my warm replica behind the shared store?" without
        decoding a snapshot.
        """
        steps = self.list_steps()
        return steps[-1] if steps else None

    def latest_bytes(self) -> Optional[bytes]:
        """Raw bytes of the newest checkpoint file (header + body).

        Byte-identity checks (the chaos drills) compare these directly:
        two equal files imply equal recovered state because the body is
        a canonical codec document.
        """
        step = self.latest_step()
        if step is None:
            return None
        try:
            return self.path_for(step).read_bytes()
        except OSError:
            return None

    # -- writing --------------------------------------------------------------

    def save(
        self,
        step: int,
        collection: WeightedCollection,
        rng: Optional[np.random.Generator] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Atomically write the checkpoint for ``step``."""
        payload = {
            "step": int(step),
            "collection": collection,
            "rng": rng,
            "extra": dict(extra or {}),
        }
        body = dumps(payload, self.format)
        digest = hashlib.sha256(body).hexdigest()
        header = (
            f"{_HEADER_PREFIX.decode()} {_HEADER_VERSION} {digest} {len(body)}\n"
        ).encode("ascii")

        self.directory.mkdir(parents=True, exist_ok=True)
        self._clean_tmp_files()
        final_path = self.path_for(step)
        tmp_path = self.directory / f".tmp-step-{step:08d}-{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            handle.write(header)
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, final_path)
        self._fsync_directory()
        if self.keep is not None:
            self._prune()
        return final_path

    def maybe_save(
        self,
        step: int,
        collection: WeightedCollection,
        rng: Optional[np.random.Generator] = None,
        extra: Optional[Dict[str, Any]] = None,
        *,
        force: bool = False,
    ) -> Optional[Path]:
        """Save when the cadence (or ``force``) says so."""
        if force or (step + 1) % self.every == 0:
            return self.save(step, collection, rng=rng, extra=extra)
        return None

    def _clean_tmp_files(self) -> None:
        for entry in self.directory.glob(".tmp-step-*"):
            try:
                entry.unlink()
            except OSError:
                pass

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _prune(self) -> None:
        steps = self.list_steps()
        for step in steps[: max(0, len(steps) - self.keep)]:
            try:
                self.path_for(step).unlink()
            except OSError:
                pass

    # -- reading --------------------------------------------------------------

    def load(self, step: int) -> Checkpoint:
        """Load and verify one checkpoint; raises on any defect."""
        path = self.path_for(step)
        return self._load_path(path, expected_step=step)

    def load_latest(self) -> Optional[Checkpoint]:
        """The newest *valid* checkpoint, or None.

        Corrupt or truncated files are skipped with a warning (partial-
        write recovery: fall back to the previous snapshot).  A
        newer-schema checkpoint is **not** skipped — it propagates as
        :class:`~repro.errors.SchemaVersionError`, because quietly
        resuming from an older step would silently rewind the run.
        """
        for step in reversed(self.list_steps()):
            try:
                return self.load(step)
            except SchemaVersionError:
                raise
            except (CheckpointCorruptionError, CodecError) as error:
                warnings.warn(
                    f"skipping corrupt checkpoint {self.path_for(step)}: {error}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return None

    def _load_path(self, path: Path, expected_step: Optional[int] = None) -> Checkpoint:
        try:
            raw = path.read_bytes()
        except OSError as error:
            raise CheckpointCorruptionError(f"cannot read checkpoint {path}: {error}")

        if not raw:
            raise CheckpointCorruptionError(
                f"checkpoint {path} is empty (zero-byte file from a crashed write)"
            )
        newline = raw.find(b"\n")
        if newline < 0 or not raw.startswith(_HEADER_PREFIX):
            raise CheckpointCorruptionError(
                f"checkpoint {path} has no valid header (truncated write?)"
            )
        header_fields = raw[:newline].decode("ascii", errors="replace").split()
        if len(header_fields) != 4 or header_fields[0] != _HEADER_PREFIX.decode():
            raise CheckpointCorruptionError(f"checkpoint {path} has a malformed header")
        _, header_version, digest, length = header_fields
        try:
            header_version = int(header_version)
            length = int(length)
        except ValueError:
            # A garbled header must degrade to "corrupt" (skippable by
            # load_latest), not leak a bare ValueError to the caller.
            raise CheckpointCorruptionError(
                f"checkpoint {path} has a non-numeric header field"
            )
        if header_version > _HEADER_VERSION:
            raise SchemaVersionError(
                f"checkpoint {path} uses header version {header_version}, "
                f"this library supports up to {_HEADER_VERSION}",
                found=header_version,
                supported=_HEADER_VERSION,
            )
        body = raw[newline + 1:]
        if len(body) != length:
            raise CheckpointCorruptionError(
                f"checkpoint {path} body is {len(body)} bytes, header promised "
                f"{length} (partial write)"
            )
        if hashlib.sha256(body).hexdigest() != digest:
            raise CheckpointCorruptionError(
                f"checkpoint {path} failed its checksum (corrupted on disk)"
            )

        payload = loads(body)  # may raise SchemaVersionError / CodecError
        if not isinstance(payload, dict) or "step" not in payload:
            raise CheckpointCorruptionError(
                f"checkpoint {path} decoded to an unexpected payload"
            )
        step = int(payload["step"])
        if expected_step is not None and step != expected_step:
            raise CheckpointCorruptionError(
                f"checkpoint {path} claims step {step}, expected {expected_step}"
            )
        collection = payload.get("collection")
        if not isinstance(collection, WeightedCollection):
            raise CheckpointCorruptionError(
                f"checkpoint {path} carries no weighted collection"
            )
        return Checkpoint(
            step=step,
            collection=collection,
            rng=payload.get("rng"),
            extra=payload.get("extra") or {},
            path=path,
        )
