"""Versioned codec for durable inference state.

Everything the persistence layer stores — checkpoints of
``infer_sequence`` runs, evicted inference sessions, benchmark
snapshots — goes through this module's two dual functions::

    document = serialize(obj)        # strict-JSON-able dict
    obj2     = deserialize(document)

plus the byte-level pair :func:`dumps`/:func:`loads` which adds the two
wire formats: canonical strict JSON (sorted keys, no whitespace, no bare
``NaN``/``Infinity`` tokens) and an optional binary framing (magic +
schema header + pickled document) for large collections where JSON
encoding cost matters.

Supported object kinds
----------------------

* :class:`~repro.core.trace.Trace` — the embedded PPL's trace, which is
  also what the structured language's interpreter produces, so lang
  traces round-trip through the same path;
* :class:`~repro.graph.records.GraphTrace` — the dependency-graph
  runtime's trace.  The owning program AST is stored *structurally*
  (node class + fields) alongside the record tree, and statement
  references are rebound by structural descent on decode.  Pretty-
  printing and reparsing would **not** work here: parser-assigned labels
  encode source positions, so a formatting change would silently rename
  every address;
* :class:`~repro.core.weighted.WeightedCollection` of either trace kind
  (log weights and per-particle metadata included);
* :class:`~repro.core.columnar.ColumnarCollection` — the address-major
  population (schema 2): per-address value/log-prob arrays, distribution
  templates, value kinds, observations, and the batched return value.
  Documents containing one require schema >= 2, so a schema-1 reader
  refuses them with :class:`~repro.errors.SchemaVersionError` instead of
  mis-reading;
* :class:`~repro.core.smc.SMCStats`;
* ``numpy.random.Generator`` — via ``bit_generator.state``, so a
  restored generator continues the exact stream;
* plain JSON-able values, tuples, non-string-keyed dicts, numpy scalars
  and arrays, and any composition of the above (e.g. a checkpoint's
  ``{"step": ..., "collection": ..., "rng": ...}`` payload).

Bitwise fidelity
----------------

Log probabilities and log weights are stored as plain JSON numbers:
Python's ``json`` emits ``repr(float)`` (the shortest string that parses
back to the same IEEE-754 double), so finite floats survive a JSON round
trip bit for bit.  The only floats JSON cannot carry — ``inf``, ``-inf``
(a dropped particle's weight), ``nan`` — are encoded as explicit tags.

Schema policy
-------------

Every document carries ``schema`` (:data:`SCHEMA_VERSION`).  Documents
with an *older* schema are migrated forward on read (none exist yet);
documents with a *newer* schema raise
:class:`~repro.errors.SchemaVersionError` — a downgraded library must
refuse state it cannot fully understand rather than half-read it.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import pickle
import struct
from typing import Any, Dict, List, Type

import numpy as np

from ..core.columnar import ColumnarCollection
from ..core.smc import SMCStats
from ..core.trace import ChoiceRecord, ObservationRecord, Trace
from ..core.weighted import WeightedCollection
from ..distributions import Distribution
from ..errors import CodecError, SchemaVersionError
from ..derive.report import AddressMatch, DerivationReport
from ..graph.records import GraphTrace, StmtRecord
from ..lang import ast as lang_ast

__all__ = [
    "SCHEMA_VERSION",
    "BINARY_MAGIC",
    "DISTRIBUTION_REGISTRY",
    "AST_REGISTRY",
    "serialize",
    "deserialize",
    "dumps",
    "loads",
    "encode_value",
    "decode_value",
]

#: Version of the document layout produced by this module.  Bump on any
#: incompatible change; readers migrate older versions forward and
#: reject newer ones.  History: 1 — initial layout; 2 — adds the
#: ``$ccoll`` tag (columnar particle collections); 3 — adds the
#: ``$derep`` tag (correspondence derivation reports).
SCHEMA_VERSION = 3

#: Leading bytes of the binary framing (never valid JSON).
BINARY_MAGIC = b"\x89REPROSTORE\x00"

_FORMAT_NAME = "repro-store"


def _dataclass_registry(module: Any, base: type) -> Dict[str, Type]:
    """Name -> class for every dataclass subclass of ``base`` in ``module``."""
    registry: Dict[str, Type] = {}
    for name in module.__all__:
        candidate = getattr(module, name)
        if (
            isinstance(candidate, type)
            and issubclass(candidate, base)
            and dataclasses.is_dataclass(candidate)
        ):
            registry[candidate.__name__] = candidate
    return registry


def _distribution_registry() -> Dict[str, Type]:
    from .. import distributions

    return _dataclass_registry(distributions, Distribution)


#: Every serializable distribution class, by class name.  Aliases
#: (``Bernoulli`` is ``Flip``) collapse onto the canonical class name.
DISTRIBUTION_REGISTRY: Dict[str, Type] = _distribution_registry()

#: Every structured-language AST node class, by class name.
AST_REGISTRY: Dict[str, Type] = _dataclass_registry(lang_ast, lang_ast.Node)


def _init_field_values(obj: Any) -> Dict[str, Any]:
    """The constructor-visible fields of a dataclass instance.

    Derived fields (``init=False``, e.g. ``LogCategorical._log_norm``)
    are recomputed by ``__init__`` on decode, so they are not stored.
    """
    return {
        f.name: getattr(obj, f.name)
        for f in dataclasses.fields(obj)
        if f.init
    }


# ---------------------------------------------------------------------------
# Value encoding
# ---------------------------------------------------------------------------
#
# The encoding is a tagged superset of JSON: plain JSON values pass
# through unchanged, everything else becomes a single-key dict whose key
# starts with "$".  A plain dict is emitted as-is only when none of its
# (string) keys could be mistaken for a tag.


def _encode_float(value: float) -> Any:
    if value == float("inf"):
        return {"$f": "inf"}
    if value == float("-inf"):
        return {"$f": "-inf"}
    if value != value:  # NaN
        return {"$f": "nan"}
    return value


def _encode_record(record: Any) -> Dict[str, Any]:
    """Shared shape of ChoiceRecord / ObservationRecord."""
    return {
        "a": encode_value(record.address),
        "d": encode_value(record.dist),
        "v": encode_value(record.value),
        "lp": _encode_float(float(record.log_prob)),
    }


def _decode_choice(payload: Dict[str, Any]) -> ChoiceRecord:
    return ChoiceRecord(
        address=decode_value(payload["a"]),
        dist=decode_value(payload["d"]),
        value=decode_value(payload["v"]),
        log_prob=float(decode_value(payload["lp"])),
    )


def _decode_observation(payload: Dict[str, Any]) -> ObservationRecord:
    return ObservationRecord(
        address=decode_value(payload["a"]),
        dist=decode_value(payload["d"]),
        value=decode_value(payload["v"]),
        log_prob=float(decode_value(payload["lp"])),
    )


def _encode_trace(trace: Trace) -> Dict[str, Any]:
    return {
        "choices": [_encode_record(r) for r in trace.choices()],
        "obs": [_encode_record(r) for r in trace.observations()],
        "ret": encode_value(trace.return_value),
    }


def _decode_trace(payload: Dict[str, Any]) -> Trace:
    trace = Trace()
    for entry in payload["choices"]:
        trace.add_choice(_decode_choice(entry))
    for entry in payload["obs"]:
        trace.add_observation(_decode_observation(entry))
    trace.return_value = decode_value(payload["ret"])
    return trace


# -- GraphTrace --------------------------------------------------------------


def _encode_stmt_record(record: StmtRecord) -> Dict[str, Any]:
    """Record tree without stmt references (rebound on decode)."""
    return {
        "reads": {name: int(version) for name, version in record.reads.items()},
        "writes": {
            name: {"v": encode_value(value), "ver": int(version)}
            for name, (value, version) in record.writes.items()
        },
        "choices": [_encode_record(r) for r in record.choices.values()],
        "obs": [_encode_record(r) for r in record.observations.values()],
        "children": [
            [encode_value(key), _encode_stmt_record(child)]
            for key, child in record.children.items()
        ],
        "returned": bool(record.returned),
        "ret": encode_value(record.return_value),
    }


def _child_stmt(stmt: lang_ast.Stmt, key: Any) -> lang_ast.Stmt:
    """The sub-statement a child record key refers to (engine's scheme)."""
    if isinstance(stmt, lang_ast.Seq) and key in ("first", "second"):
        return stmt.first if key == "first" else stmt.second
    if isinstance(stmt, lang_ast.If) and isinstance(key, tuple) and key[0] == "branch":
        return stmt.then if key[1] else stmt.otherwise
    if isinstance(stmt, (lang_ast.For, lang_ast.While)) and isinstance(key, int):
        return stmt.body
    raise CodecError(
        f"graph-trace child key {key!r} does not match statement "
        f"{type(stmt).__name__}; the stored record tree and program disagree"
    )


def _decode_stmt_record(payload: Dict[str, Any], stmt: lang_ast.Stmt) -> StmtRecord:
    record = StmtRecord(stmt=stmt)
    record.reads = {name: int(v) for name, v in payload["reads"].items()}
    record.writes = {
        name: (decode_value(entry["v"]), int(entry["ver"]))
        for name, entry in payload["writes"].items()
    }
    for entry in payload["choices"]:
        choice = _decode_choice(entry)
        record.choices[choice.address] = choice
    for entry in payload["obs"]:
        observation = _decode_observation(entry)
        record.observations[observation.address] = observation
    for key_doc, child_doc in payload["children"]:
        key = decode_value(key_doc)
        record.children[key] = _decode_stmt_record(child_doc, _child_stmt(stmt, key))
    record.returned = bool(payload["returned"])
    record.return_value = decode_value(payload["ret"])
    # Children are decoded (and finalized) first, so the aggregates here
    # are computed bottom-up exactly as the engine computed them.
    record.finalize()
    return record


def _encode_graph_trace(trace: GraphTrace) -> Dict[str, Any]:
    return {
        "program": encode_value(trace.root.stmt),
        "root": _encode_stmt_record(trace.root),
        "env_in": encode_value(trace.env_in),
        "env_out": encode_value(trace.env_out),
        "next_version": int(trace.next_version),
        "visited": int(trace.visited_statements),
    }


def _decode_graph_trace(payload: Dict[str, Any]) -> GraphTrace:
    program = decode_value(payload["program"])
    if not isinstance(program, lang_ast.Stmt):
        raise CodecError(
            f"graph-trace program decoded to {type(program).__name__}, "
            "expected a statement"
        )
    return GraphTrace(
        root=_decode_stmt_record(payload["root"], program),
        env_in=decode_value(payload["env_in"]),
        env_out=decode_value(payload["env_out"]),
        next_version=int(payload["next_version"]),
        visited_statements=int(payload["visited"]),
    )


# -- collections, stats, RNG state ------------------------------------------


def _encode_collection(collection: WeightedCollection) -> Dict[str, Any]:
    return {
        "items": [encode_value(item) for item in collection.items],
        "log_weights": [_encode_float(float(w)) for w in collection.log_weights],
        "metadata": encode_value(collection.metadata),
    }


def _decode_collection(payload: Dict[str, Any]) -> WeightedCollection:
    return WeightedCollection(
        [decode_value(item) for item in payload["items"]],
        [float(decode_value(w)) for w in payload["log_weights"]],
        metadata=decode_value(payload["metadata"]),
    )


def _encode_columnar(collection: ColumnarCollection) -> Dict[str, Any]:
    """Address-major layout, one entry per address.

    The float64 columns ride on the ``$nd`` array encoding and the
    distribution templates on ``$dist`` (whose per-field encoding covers
    array-valued parameters), so the payload introduces no new leaf
    encodings — just the new aggregate tag.  The source-trace backref a
    freshly converted collection may hold is intentionally not stored:
    a decoded collection synthesizes object traces from its columns,
    which is value-identical.
    """
    return {
        "n": int(collection.num_particles),
        "log_weights": encode_value(collection.log_weights),
        "choices": [
            {
                "a": encode_value(address),
                "v": encode_value(collection.value_column(address)),
                "lp": encode_value(collection.log_prob_column(address)),
                "d": encode_value(collection.dist_template(address)),
                "k": collection.value_kind(address),
            }
            for address in collection.addresses()
        ],
        "obs": [
            {
                "a": encode_value(address),
                "v": encode_value(column.value),
                "vv": encode_value(column.varying_value),
                "lp": encode_value(column.log_probs),
                "d": encode_value(column.dist),
            }
            for address, column in (
                (a, collection._observations[a])
                for a in collection.observation_addresses()
            )
        ],
        "ret": encode_value(collection.return_value),
        "metadata": encode_value(collection.metadata),
    }


def _decode_columnar(payload: Dict[str, Any]) -> ColumnarCollection:
    from ..core.columnar import _Column, _ObsColumn

    num = int(payload["n"])
    choice_order = []
    choices = {}
    for entry in payload["choices"]:
        address = decode_value(entry["a"])
        choice_order.append(address)
        choices[address] = _Column(
            decode_value(entry["v"]),
            decode_value(entry["lp"]),
            decode_value(entry["d"]),
            str(entry["k"]),
        )
    obs_order = []
    observations = {}
    for entry in payload["obs"]:
        address = decode_value(entry["a"])
        obs_order.append(address)
        observations[address] = _ObsColumn(
            decode_value(entry["v"]),
            decode_value(entry["lp"]),
            decode_value(entry["d"]),
            decode_value(entry["vv"]),
        )
    return ColumnarCollection(
        num,
        decode_value(payload["log_weights"]),
        tuple(choice_order),
        choices,
        tuple(obs_order),
        observations,
        return_value=decode_value(payload["ret"]),
        metadata=decode_value(payload["metadata"]),
    )


def _encode_rng(rng: np.random.Generator) -> Dict[str, Any]:
    return encode_value(rng.bit_generator.state)


def _decode_rng(state: Any) -> np.random.Generator:
    state = decode_value(state)
    name = state.get("bit_generator") if isinstance(state, dict) else None
    bit_generator_cls = getattr(np.random, name, None) if name else None
    if bit_generator_cls is None:
        raise CodecError(f"unknown bit generator in stored RNG state: {name!r}")
    bit_generator = bit_generator_cls()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


# -- the dispatcher ----------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode any supported value into the tagged strict-JSON form."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return _encode_float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return _encode_float(float(value))
    if isinstance(value, np.ndarray):
        return {
            "$nd": {
                "dtype": str(value.dtype),
                "shape": list(value.shape),
                "data": [encode_value(entry) for entry in value.ravel().tolist()],
            }
        }
    if isinstance(value, tuple):
        return {"$t": [encode_value(entry) for entry in value]}
    if isinstance(value, list):
        return [encode_value(entry) for entry in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) and not k.startswith("$") for k in value):
            return {k: encode_value(v) for k, v in value.items()}
        return {"$d": [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    if isinstance(value, bytes):
        return {"$b": base64.b64encode(value).decode("ascii")}
    if isinstance(value, Distribution):
        name = type(value).__name__
        if name not in DISTRIBUTION_REGISTRY:
            raise CodecError(
                f"distribution {name} is not registered for serialization; "
                "only the classes exported by repro.distributions round-trip"
            )
        return {
            "$dist": name,
            "p": {k: encode_value(v) for k, v in _init_field_values(value).items()},
        }
    if isinstance(value, lang_ast.Node):
        name = type(value).__name__
        if name not in AST_REGISTRY:
            raise CodecError(f"AST node {name} is not registered for serialization")
        return {
            "$ast": name,
            "f": {k: encode_value(v) for k, v in _init_field_values(value).items()},
        }
    if isinstance(value, Trace):
        return {"$trace": _encode_trace(value)}
    if isinstance(value, GraphTrace):
        return {"$graph": _encode_graph_trace(value)}
    if isinstance(value, WeightedCollection):
        return {"$coll": _encode_collection(value)}
    if isinstance(value, ColumnarCollection):
        return {"$ccoll": _encode_columnar(value)}
    if isinstance(value, SMCStats):
        return {
            "$stats": {k: encode_value(v) for k, v in _init_field_values(value).items()}
        }
    if isinstance(value, DerivationReport):
        return {
            "$derep": {
                "source_name": value.source_name,
                "target_name": value.target_name,
                "matches": [
                    {
                        "target": encode_value(m.target),
                        "source": encode_value(m.source),
                        "kind": m.kind,
                        "confidence": encode_value(m.confidence),
                        "evidence": m.evidence,
                    }
                    for m in value.matches
                ],
                "fresh": [encode_value(a) for a in value.fresh],
                "dropped": [encode_value(a) for a in value.dropped],
                "family_rules": encode_value(dict(value.family_rules)),
                "notes": list(value.notes),
                "source_complete": value.source_complete,
                "target_complete": value.target_complete,
            }
        }
    if isinstance(value, np.random.Generator):
        return {"$rng": _encode_rng(value)}
    raise CodecError(
        f"cannot serialize {type(value).__name__} value {value!r}; "
        "see repro.store.codec for the supported kinds"
    )


_NONFINITE = {"inf": float("inf"), "-inf": float("-inf"), "nan": float("nan")}


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [decode_value(entry) for entry in value]
    if not isinstance(value, dict):
        raise CodecError(f"cannot decode {type(value).__name__} value {value!r}")
    if len(value) == 1 or len(value) == 2:
        tag = next(iter(value))
        if tag == "$f":
            try:
                return _NONFINITE[value["$f"]]
            except KeyError:
                raise CodecError(f"unknown float tag {value['$f']!r}") from None
        if tag == "$t":
            return tuple(decode_value(entry) for entry in value["$t"])
        if tag == "$d":
            return {
                decode_value(k): decode_value(v) for k, v in value["$d"]
            }
        if tag == "$b":
            return base64.b64decode(value["$b"])
        if tag == "$nd":
            payload = value["$nd"]
            data = [decode_value(entry) for entry in payload["data"]]
            return np.array(data, dtype=payload["dtype"]).reshape(payload["shape"])
        if tag == "$dist":
            name = value["$dist"]
            cls = DISTRIBUTION_REGISTRY.get(name)
            if cls is None:
                raise CodecError(f"unknown distribution class in document: {name!r}")
            params = {k: decode_value(v) for k, v in value["p"].items()}
            return cls(**params)
        if tag == "$ast":
            name = value["$ast"]
            cls = AST_REGISTRY.get(name)
            if cls is None:
                raise CodecError(f"unknown AST node class in document: {name!r}")
            fields = {k: decode_value(v) for k, v in value["f"].items()}
            return cls(**fields)
        if tag == "$trace":
            return _decode_trace(value["$trace"])
        if tag == "$graph":
            return _decode_graph_trace(value["$graph"])
        if tag == "$coll":
            return _decode_collection(value["$coll"])
        if tag == "$ccoll":
            return _decode_columnar(value["$ccoll"])
        if tag == "$stats":
            fields = {k: decode_value(v) for k, v in value["$stats"].items()}
            return SMCStats(**fields)
        if tag == "$derep":
            payload = value["$derep"]
            return DerivationReport(
                source_name=payload["source_name"],
                target_name=payload["target_name"],
                matches=[
                    AddressMatch(
                        target=decode_value(m["target"]),
                        source=decode_value(m["source"]),
                        kind=m["kind"],
                        confidence=decode_value(m["confidence"]),
                        evidence=m["evidence"],
                    )
                    for m in payload["matches"]
                ],
                fresh=[decode_value(a) for a in payload["fresh"]],
                dropped=[decode_value(a) for a in payload["dropped"]],
                family_rules=decode_value(payload["family_rules"]),
                notes=list(payload["notes"]),
                source_complete=payload["source_complete"],
                target_complete=payload["target_complete"],
            )
        if tag == "$rng":
            return _decode_rng(value["$rng"])
        if tag.startswith("$"):
            raise CodecError(f"unknown codec tag {tag!r}")
    return {k: decode_value(v) for k, v in value.items()}


# ---------------------------------------------------------------------------
# Documents and wire formats
# ---------------------------------------------------------------------------


def serialize(obj: Any) -> Dict[str, Any]:
    """Wrap ``obj`` in a versioned, strict-JSON-able document."""
    return {
        "format": _FORMAT_NAME,
        "schema": SCHEMA_VERSION,
        "value": encode_value(obj),
    }


def check_schema(found: Any) -> int:
    """Validate a document's schema version against this library's."""
    if not isinstance(found, int):
        raise CodecError(f"document schema version is not an integer: {found!r}")
    if found > SCHEMA_VERSION:
        raise SchemaVersionError(
            f"document has schema version {found}, but this library supports "
            f"up to {SCHEMA_VERSION}; upgrade the library (or re-create the "
            "state) instead of downgrading the data",
            found=found,
            supported=SCHEMA_VERSION,
        )
    return found


def deserialize(document: Dict[str, Any]) -> Any:
    """Invert :func:`serialize`, enforcing the schema policy."""
    if not isinstance(document, dict) or "schema" not in document or "value" not in document:
        raise CodecError("not a repro-store document (missing schema/value)")
    declared = document.get("format", _FORMAT_NAME)
    if declared != _FORMAT_NAME:
        raise CodecError(f"unknown document format {declared!r}")
    check_schema(document["schema"])
    return decode_value(document["value"])


def dumps(obj: Any, format: str = "json") -> bytes:
    """Serialize ``obj`` to bytes.

    ``"json"`` produces canonical strict JSON: sorted keys, no
    whitespace, UTF-8 — so equal objects produce equal bytes, which is
    what the kill-and-resume equivalence check compares.  ``"binary"``
    frames the same document with :data:`BINARY_MAGIC`, a schema header,
    and pickle (protocol 5); it skips JSON string formatting for large
    collections but carries exactly the same information.
    """
    document = serialize(obj)
    if format == "json":
        return json.dumps(
            document, sort_keys=True, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    if format == "binary":
        header = BINARY_MAGIC + struct.pack(">H", SCHEMA_VERSION)
        return header + pickle.dumps(document, protocol=5)
    raise ValueError(f"unknown codec format {format!r}; choose 'json' or 'binary'")


def loads(data: bytes) -> Any:
    """Invert :func:`dumps`; the format is sniffed from the bytes."""
    if not isinstance(data, (bytes, bytearray)):
        raise CodecError(f"loads expects bytes, got {type(data).__name__}")
    data = bytes(data)
    if data.startswith(BINARY_MAGIC):
        header_end = len(BINARY_MAGIC) + 2
        if len(data) < header_end:
            raise CodecError("truncated binary document (incomplete header)")
        (version,) = struct.unpack(">H", data[len(BINARY_MAGIC):header_end])
        check_schema(version)
        try:
            document = pickle.loads(data[header_end:])
        except Exception as error:
            raise CodecError(f"cannot unpickle binary document: {error}") from error
        return deserialize(document)
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CodecError(f"cannot parse JSON document: {error}") from error
    return deserialize(document)
