"""Incremental-inference sessions over a durable trace store.

The paper's workflow is interactive: a user edits a probabilistic
program repeatedly, and each edit reuses the previous posterior particle
collection via trace translation (Algorithm 2).  An
:class:`InferenceSession` is the server-side object for that workflow —
a keyed, *live* particle collection plus its RNG stream; clients submit
a program edit as a translator (e.g. a
:class:`~repro.core.corr_translator.CorrespondenceTranslator` built from
a new :class:`~repro.core.correspondence.Correspondence`, or a
:class:`~repro.graph.translate.GraphTranslator`) and get back the
translated, reweighted collection.

:class:`SessionManager` is the keyed registry: it holds the most
recently used sessions live and evicts the rest to the on-disk store
(one codec document per session), reloading them transparently on next
access.  Translators are per-request and never persisted — only the
durable state (collection, RNG stream, edit history) is.

Every session owns a :class:`~repro.observability.MetricsRegistry`, so
per-session counters/histograms (edits, particles translated, ESS,
translate latency) can be exported independently of whatever global
sinks the inference config carries.
"""

from __future__ import annotations

import copy
import os
import re
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.config import InferenceConfig
from ..core.mcmc import Kernel
from ..core.smc import SMCStep, infer
from ..core.translator import TraceTranslator
from ..core.weighted import WeightedCollection
from ..errors import CodecError, SessionError
from ..observability import Hooks, MetricsRegistry
from .codec import dumps, loads

__all__ = ["InferenceSession", "SessionManager"]

_SESSION_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _check_session_id(session_id: str) -> str:
    if not isinstance(session_id, str) or not _SESSION_ID.match(session_id):
        raise SessionError(
            f"invalid session id {session_id!r}; use letters, digits, '.', '_', '-'"
        )
    return session_id


class InferenceSession:
    """One live incremental-inference session.

    Parameters
    ----------
    session_id:
        Registry key (also the on-disk file stem after eviction).
    collection:
        The current posterior particle collection.
    rng:
        The session's private random stream.  It advances with every
        edit and is part of the persisted state, so an evicted-and-
        reloaded session continues byte-identically.
    config:
        Base :class:`InferenceConfig` for edits; the session swaps in
        its own metrics registry.  Defaults to adaptive resampling.
    history:
        Per-edit summaries (restored verbatim on reload).
    """

    def __init__(
        self,
        session_id: str,
        collection: WeightedCollection,
        rng: np.random.Generator,
        *,
        config: Optional[InferenceConfig] = None,
        history: Optional[List[Dict[str, Any]]] = None,
    ):
        self.session_id = _check_session_id(session_id)
        self.collection = collection
        self.rng = rng
        self.metrics = MetricsRegistry()
        base = config if config is not None else InferenceConfig(resample="adaptive")
        # Checkpointing belongs to sequence runs, not per-edit requests;
        # sessions persist through the manager's store instead.
        self._config = base.replace(metrics=self.metrics, checkpoint_dir=None)
        self.history: List[Dict[str, Any]] = list(history or [])
        #: Serializes mutation (submit) against concurrent snapshots, so
        #: an eviction racing a long edit persists either the pre- or the
        #: post-edit state — never a torn mixture.
        self._lock = threading.RLock()

    @property
    def num_edits(self) -> int:
        return len(self.history)

    def submit(
        self,
        translator: TraceTranslator,
        mcmc_kernel: Optional[Kernel] = None,
        *,
        hooks: Optional[Hooks] = None,
    ) -> SMCStep:
        """Apply one program edit: translate, reweight, maybe resample.

        Returns the :class:`SMCStep` and replaces the session's live
        collection with the translated one.

        The edit is *transactional*: if translation raises — a fault
        under ``fail_fast``, or a deadline hook cancelling the request
        mid-flight — the session's collection **and** its RNG stream are
        rolled back to their pre-submit state, so a failed or cancelled
        edit leaves the session byte-identical to before.

        Parameters
        ----------
        hooks:
            Per-request observability/cancellation hooks layered over
            the session's config for this edit only (the inference
            service uses this to enforce request deadlines at particle
            boundaries).
        """
        with self._lock:
            config = self._config if hooks is None else self._config.replace(hooks=hooks)
            rng_state = copy.deepcopy(self.rng.bit_generator.state)
            try:
                step = infer(
                    translator, self.collection, self.rng, mcmc_kernel, config=config
                )
            except BaseException:
                self.rng.bit_generator.state = rng_state
                raise
            self.collection = step.collection
            return self._record_step(step)

    def sequence(
        self,
        models: Sequence[Any],
        mcmc_kernels: Optional[Sequence[Optional[Kernel]]] = None,
        *,
        correspondence: str = "derive",
        hooks: Optional[Hooks] = None,
    ) -> List[SMCStep]:
        """Apply a chain of edits given only the models, no address maps.

        ``models[0]`` must be the program the session's collection
        currently approximates; each later model is the program after
        one more edit.  With the default ``correspondence="derive"``,
        the adjacent correspondences are derived automatically
        (:func:`repro.derive.derive_sequence_translators`) before any
        edit is applied, so a derivation failure leaves the session
        untouched.  Each edit then goes through :meth:`submit` and is
        individually transactional.
        """
        if correspondence != "derive":
            raise ValueError(
                f"correspondence must be 'derive', got {correspondence!r}; "
                "build translators yourself and call submit() for "
                "hand-written maps"
            )
        from ..derive import derive_sequence_translators

        translators = derive_sequence_translators(models)
        if mcmc_kernels is None:
            mcmc_kernels = [None] * len(translators)
        if len(mcmc_kernels) != len(translators):
            raise ValueError(
                "one (possibly None) MCMC kernel per edit is required: "
                f"{len(models)} models make {len(translators)} edits, got "
                f"{len(mcmc_kernels)} kernels"
            )
        return [
            self.submit(translator, kernel, hooks=hooks)
            for translator, kernel in zip(translators, mcmc_kernels)
        ]

    def _record_step(self, step: SMCStep) -> SMCStep:
        stats = step.stats
        self.history.append(
            {
                "edit": len(self.history),
                "num_particles": stats.num_traces,
                "ess_before_resample": stats.ess_before_resample,
                "ess_after": stats.ess_after,
                "resampled": stats.resampled,
                "log_mean_weight_increment": stats.log_mean_weight_increment,
                "translate_seconds": stats.translate_seconds,
                "mcmc_seconds": stats.mcmc_seconds,
                "faults": stats.total_faults,
            }
        )
        self.metrics.counter("session.edits").inc()
        self.metrics.counter("session.particles_translated").inc(stats.num_traces)
        self.metrics.counter("session.faults").inc(stats.total_faults)
        self.metrics.histogram("session.ess_after").observe(stats.ess_after)
        self.metrics.histogram("session.translate_seconds").observe(
            stats.translate_seconds
        )
        return step

    def estimate(self, phi: Any) -> float:
        return self.collection.estimate(phi)

    def snapshot(self) -> Dict[str, Any]:
        """The session's durable state (what eviction persists)."""
        with self._lock:
            return {
                "session_id": self.session_id,
                "collection": self.collection,
                "rng": self.rng,
                "history": list(self.history),
            }

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.metrics.to_dict()

    def __repr__(self) -> str:
        return (
            f"InferenceSession({self.session_id!r}, particles="
            f"{len(self.collection)}, edits={self.num_edits})"
        )


class SessionManager:
    """Keyed registry of inference sessions with LRU eviction to disk.

    Parameters
    ----------
    store_dir:
        Directory for evicted sessions (``<id>.session`` codec files).
        ``None`` keeps every session live (no eviction possible).
    capacity:
        Maximum number of *live* sessions before the least recently
        used one is evicted to ``store_dir``.  Ignored when
        ``store_dir`` is None.
    config:
        Base inference config handed to new and reloaded sessions.
    format:
        Codec wire format for evicted sessions (``"json"``/``"binary"``).
    """

    def __init__(
        self,
        store_dir: Optional[Any] = None,
        *,
        capacity: int = 4,
        config: Optional[InferenceConfig] = None,
        format: str = "json",
    ):
        if int(capacity) < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.store_dir = None if store_dir is None else Path(store_dir)
        self.capacity = int(capacity)
        self.config = config
        if format not in ("json", "binary"):
            raise ValueError(f"unknown session store format {format!r}")
        self.format = format
        self.metrics = MetricsRegistry()
        self._live: "OrderedDict[str, InferenceSession]" = OrderedDict()
        #: Guards the live table, the LRU order, and the evict/reload
        #: paths.  Reentrant because evict (under the lock) calls
        #: session.snapshot, and a manager method may trigger capacity
        #: enforcement which evicts.  Long-running per-session work
        #: (submit) runs under the *session's* lock, not this one, so
        #: edits on different sessions still proceed concurrently.
        self._lock = threading.RLock()

    # -- paths ----------------------------------------------------------------

    def _path_for(self, session_id: str) -> Optional[Path]:
        if self.store_dir is None:
            return None
        return self.store_dir / f"{session_id}.session"

    # -- lifecycle ------------------------------------------------------------

    def create(
        self,
        session_id: str,
        collection: WeightedCollection,
        *,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> InferenceSession:
        """Register a new session around an initial collection."""
        _check_session_id(session_id)
        with self._lock:
            if session_id in self._live:
                raise SessionError(f"session {session_id!r} already exists")
            stored = self._path_for(session_id)
            if stored is not None and stored.exists():
                raise SessionError(
                    f"session {session_id!r} already exists in the store at {stored}"
                )
            if rng is None:
                rng = np.random.default_rng(seed)
            session = InferenceSession(session_id, collection, rng, config=self.config)
            self._live[session_id] = session
            self._live.move_to_end(session_id)
            self.metrics.counter("store.sessions_created").inc()
            self._enforce_capacity()
            return session

    def adopt(self, session: InferenceSession) -> InferenceSession:
        """Register an externally built session (the recovery hook).

        Crash recovery rebuilds sessions from checkpoint snapshots
        (collection + RNG stream + history) and adopts them here, so the
        recovered session enters the same LRU/eviction lifecycle as a
        freshly created one.  Unlike :meth:`create`, an existing stored
        file is *not* an error — recovery legitimately supersedes it.
        """
        with self._lock:
            if session.session_id in self._live:
                raise SessionError(f"session {session.session_id!r} already exists")
            self._live[session.session_id] = session
            self._live.move_to_end(session.session_id)
            self.metrics.counter("store.sessions_recovered").inc()
            self._enforce_capacity()
            return session

    def get(self, session_id: str) -> InferenceSession:
        """The live session, reloading it from the store if evicted."""
        _check_session_id(session_id)
        with self._lock:
            if session_id in self._live:
                self._live.move_to_end(session_id)
                return self._live[session_id]
            session = self._reload(session_id)
            self._live[session_id] = session
            self._live.move_to_end(session_id)
            self._enforce_capacity()
            return session

    def submit(
        self,
        session_id: str,
        translator: TraceTranslator,
        mcmc_kernel: Optional[Kernel] = None,
        *,
        hooks: Optional[Hooks] = None,
    ) -> SMCStep:
        """Route one edit request to the (possibly reloaded) session.

        The manager lock is held only for the table lookup; the edit
        itself runs under the session's own lock, so concurrent edits on
        *different* sessions proceed in parallel while an evict racing
        *this* session blocks until the edit commits or rolls back.
        """
        return self.get(session_id).submit(translator, mcmc_kernel, hooks=hooks)

    def evict(self, session_id: str) -> Path:
        """Persist one live session to the store and drop it from memory."""
        with self._lock:
            if session_id not in self._live:
                raise SessionError(f"session {session_id!r} is not live")
            path = self._path_for(session_id)
            if path is None:
                raise SessionError(
                    f"cannot evict session {session_id!r}: the manager has no store_dir"
                )
            session = self._live[session_id]
            # snapshot() takes the session lock, so a submit in flight on
            # another thread finishes (or rolls back) before we persist.
            body = dumps(session.snapshot(), self.format)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f".tmp-{path.name}-{os.getpid()}")
            tmp.write_bytes(body)
            os.replace(tmp, path)
            del self._live[session_id]
            self.metrics.counter("store.evictions").inc()
            self.metrics.counter("store.bytes_written").inc(len(body))
            return path

    def close(self, session_id: str, *, persist: bool = True) -> Optional[Path]:
        """End a session; by default persist it to the store first."""
        with self._lock:
            if persist and self.store_dir is not None and session_id in self._live:
                return self.evict(session_id)
            self._live.pop(session_id, None)
            return None

    # -- internals ------------------------------------------------------------

    def _reload(self, session_id: str) -> InferenceSession:
        path = self._path_for(session_id)
        if path is None or not path.exists():
            raise SessionError(f"unknown session {session_id!r}")
        try:
            payload = loads(path.read_bytes())
        except CodecError as error:
            raise SessionError(
                f"cannot reload session {session_id!r} from {path}: {error}"
            ) from error
        if not isinstance(payload, dict) or "collection" not in payload:
            raise SessionError(f"session file {path} has an unexpected payload")
        rng = payload.get("rng")
        if rng is None:
            raise SessionError(f"session file {path} carries no RNG state")
        session = InferenceSession(
            session_id,
            payload["collection"],
            rng,
            config=self.config,
            history=payload.get("history") or [],
        )
        # The stored file stays behind as a snapshot; a later evict
        # overwrites it with the newer state.
        self.metrics.counter("store.reloads").inc()
        return session

    def _enforce_capacity(self) -> None:
        if self.store_dir is None:
            return
        with self._lock:
            while len(self._live) > self.capacity:
                oldest = next(iter(self._live))
                self.evict(oldest)

    # -- introspection ---------------------------------------------------------

    def live_sessions(self) -> List[str]:
        with self._lock:
            return list(self._live)

    def stored_sessions(self) -> List[str]:
        if self.store_dir is None or not self.store_dir.is_dir():
            return []
        return sorted(p.name[: -len(".session")] for p in self.store_dir.glob("*.session"))

    def list_sessions(self) -> Dict[str, List[str]]:
        return {"live": self.live_sessions(), "stored": self.stored_sessions()}

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.metrics.to_dict()

    def __repr__(self) -> str:
        return (
            f"SessionManager(live={len(self._live)}, capacity={self.capacity}, "
            f"store_dir={str(self.store_dir) if self.store_dir else None!r})"
        )
