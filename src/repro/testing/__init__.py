"""Deterministic fault injection for chaos-testing the inference engine.

See :mod:`repro.testing.faults`.
"""

from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultyDistribution,
    FaultyTranslator,
    faulty_kernel,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultyDistribution",
    "FaultyTranslator",
    "faulty_kernel",
]
