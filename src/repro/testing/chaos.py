"""Deterministic chaos drill for the inference service.

:mod:`repro.testing.faults` attacks the SMC loop from inside one
particle; this module attacks the *service* contract from outside:

* **slow translators** — :class:`ChaosMiddleware` stalls every N-th
  mutating request on the shard worker thread, creating the wedge the
  degradation ladder and the deadline machinery exist for;
* **deadline cancellations** — the drill issues requests whose deadline
  is shorter than the injected stall and asserts the cancellation is
  *clean*: a structured ``deadline_exceeded`` rejection and a session
  whose edit count is exactly what was last acknowledged;
* **poison requests** — unparseable programs and unknown session ids,
  asserted to produce ``bad_request`` without disturbing state;
* **worker kills** — the server is killed abruptly (no draining, no
  graceful eviction) mid-workload and restarted over the same store;
  the drill asserts every *acknowledged* mutation survived and that the
  recovered durable state is byte-identical to the pre-kill snapshot.

Everything is seeded: the workload scripts come from
:data:`repro.service.loadgen.WORKLOADS` under a :class:`random.Random`
seeded from the config, the kill points are fixed op indices, and the
middleware's stall schedule is a call counter that lives in the driver
process and therefore survives server restarts.  Two runs of
:func:`run_chaos_drill` with the same config perform the same requests
and the same injections.

Invariant violations raise :class:`ChaosInvariantViolation` — a drill
that *returns* has proven its invariants, and the report it returns
says how much chaos that proof covered.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import (
    BadRequestError,
    DeadlineExceededError,
    ReproError,
    ServiceError,
)
from ..service.client import RetryingClient, ServiceClient
from ..service.config import ServiceConfig
from ..service.loadgen import WORKLOADS
from ..service.server import ServiceHandle
from ..store.codec import dumps

__all__ = ["ChaosConfig", "ChaosInvariantViolation", "ChaosMiddleware", "run_chaos_drill"]


class ChaosInvariantViolation(ReproError, AssertionError):
    """The service broke one of the contracts the drill checks."""


class ChaosMiddleware:
    """Stalls every ``slow_every``-th mutating request on the worker.

    The call counter lives here — in the *driver* process — so the stall
    schedule is deterministic across in-process server restarts.
    """

    def __init__(self, slow_every: int = 0, slow_seconds: float = 0.05):
        self.slow_every = int(slow_every)
        self.slow_seconds = float(slow_seconds)
        self.calls = 0
        self.stalled = 0

    def will_stall_next(self) -> bool:
        return self.slow_every > 0 and (self.calls + 1) % self.slow_every == 0

    def __call__(self, op: str, session_id: str, apply: Callable[[], Any]) -> Any:
        self.calls += 1
        if self.slow_every > 0 and self.calls % self.slow_every == 0:
            self.stalled += 1
            time.sleep(self.slow_seconds)
        return apply()


@dataclass(frozen=True)
class ChaosConfig:
    """One drill: which workload, how much chaos, where the kills land.

    ``kill_after_ops`` are 1-based indices into the flattened mutating-op
    sequence; before issuing that op the server is killed abruptly and
    restarted over the same store.  ``deadline_ops`` are indices issued
    with a deadline shorter than the injected stall (each must coincide
    with a stalled call — :func:`run_chaos_drill` arranges that by
    construction when left at defaults).
    """

    workload: str = "gauss-chain"
    num_sessions: int = 2
    ops_per_session: int = 6
    num_particles: int = 20
    seed: int = 0
    kill_after_ops: Tuple[int, ...] = (3, 8)
    slow_every: int = 4
    slow_seconds: float = 0.2
    tight_deadline_s: float = 0.05
    poison_every: int = 5
    tenant: str = "chaos"

    def replace(self, **changes: Any) -> "ChaosConfig":
        return replace(self, **changes)


def _service_config(store_dir: str, config: ChaosConfig) -> ServiceConfig:
    return ServiceConfig(
        store_dir=store_dir,
        num_particles=config.num_particles,
        num_shards=2,
        queue_depth=8,
        # Generous default; the drill's tight deadlines are per-request.
        default_deadline_s=30.0,
        wedged_after_s=0.5,
    )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosInvariantViolation(message)


def _snapshot_bytes(handle: ServiceHandle, session_ids: List[str]) -> Dict[str, bytes]:
    store = handle.service.store
    return {
        sid: dumps(store.manager.get(sid).snapshot(), "json") for sid in session_ids
    }


def run_chaos_drill(store_dir: str, config: Optional[ChaosConfig] = None) -> Dict[str, Any]:
    """Run the drill; return its report or raise :class:`ChaosInvariantViolation`.

    The drill is single-threaded by design: determinism is the point,
    concurrency soak is the load generator's job.
    """
    config = config or ChaosConfig()
    service_config = _service_config(store_dir, config)
    middleware = ChaosMiddleware(config.slow_every, config.slow_seconds)

    # -- the deterministic script ---------------------------------------------
    generator = WORKLOADS[config.workload]
    scripts: Dict[str, Tuple[str, List[Tuple[str, str]]]] = {}
    for index in range(config.num_sessions):
        rng = random.Random(f"{config.seed}:{config.workload}:{index}")
        scripts[f"{config.tenant}-s{index}"] = generator(
            index, config.ops_per_session, rng
        )
    # Round-robin interleave of the sessions' mutating ops.
    flattened: List[Tuple[str, str, str]] = []
    for position in range(config.ops_per_session):
        for sid, (_, ops) in scripts.items():
            op, payload = ops[position]
            flattened.append((sid, op, payload))

    ledger: Dict[str, int] = {}  # sid -> acknowledged mutating ops
    report: Dict[str, Any] = {
        "ops": 0, "acks": 0, "kills": 0, "recoveries_verified": 0,
        "deadline_cancellations": 0, "poison_rejections": 0,
        "rejections": {}, "stalls": 0, "byte_identical_recoveries": 0,
    }

    handle = ServiceHandle.start(
        service_config, translator_middleware=middleware
    )

    def make_client() -> RetryingClient:
        return RetryingClient(
            ServiceClient(*handle.address, tenant=config.tenant),
            max_attempts=3,
            rng=random.Random(config.seed),
            sleep=lambda _s: None,
        )

    client = make_client()

    def verify_recovery(expect_bytes: Dict[str, bytes]) -> None:
        recovered = set(handle.service.recovered_sessions)
        _require(
            recovered == set(ledger),
            f"recovered sessions {sorted(recovered)} != committed {sorted(ledger)}",
        )
        for sid, committed in ledger.items():
            posterior = client.posterior(sid)
            _require(
                posterior["num_edits"] == committed,
                f"{sid}: recovered {posterior['num_edits']} edits, "
                f"committed {committed} — an acknowledged mutation was dropped",
            )
        actual = _snapshot_bytes(handle, sorted(ledger))
        for sid, expected in expect_bytes.items():
            _require(
                actual[sid] == expected,
                f"{sid}: recovered snapshot differs from pre-kill bytes",
            )
        report["byte_identical_recoveries"] += len(expect_bytes)
        report["recoveries_verified"] += 1

    def kill_and_restart() -> None:
        nonlocal handle, client
        expect = _snapshot_bytes(handle, sorted(ledger))
        client.client.close()
        handle.kill()
        report["kills"] += 1
        handle = ServiceHandle.start(
            service_config, translator_middleware=middleware
        )
        client = make_client()
        verify_recovery(expect)

    def record_rejection(error: ServiceError) -> None:
        report["rejections"][error.code] = report["rejections"].get(error.code, 0) + 1

    try:
        # Create every session up front (these acks are mutating commits
        # in the ledger sense: the sessions must survive kills).
        for sid, (base, _) in scripts.items():
            result = client.create(
                sid, base, num_particles=config.num_particles, seed=config.seed
            )
            _require(result["session"] == sid, f"create echoed {result!r}")
            ledger[sid] = 0
            report["acks"] += 1

        for op_index, (sid, op, payload) in enumerate(flattened, start=1):
            if op_index in config.kill_after_ops:
                kill_and_restart()

            if config.poison_every and op_index % config.poison_every == 0:
                # Poison first: must reject structurally, not disturb state.
                try:
                    client.client.edit(sid, "this is ! not a program (")
                except BadRequestError:
                    report["poison_rejections"] += 1
                else:
                    raise ChaosInvariantViolation(
                        "poison program was accepted instead of rejected"
                    )
                posterior = client.posterior(sid)
                _require(
                    posterior["num_edits"] == ledger[sid],
                    f"{sid}: poison request disturbed session state",
                )

            deadline_s = None
            if middleware.will_stall_next():
                # This request will hit the injected stall; give it a
                # deadline it cannot meet, then verify the cancellation
                # was clean and retry without the tight deadline.
                deadline_s = config.tight_deadline_s

            def issue(deadline: Optional[float]) -> Dict[str, Any]:
                if op == "observe":
                    return client.client.observe(sid, payload, deadline_s=deadline)
                return client.client.edit(sid, payload, deadline_s=deadline)

            report["ops"] += 1
            if deadline_s is not None:
                try:
                    issue(deadline_s)
                except DeadlineExceededError as error:
                    report["deadline_cancellations"] += 1
                    record_rejection(error)
                    posterior = client.posterior(sid)
                    _require(
                        posterior["num_edits"] == ledger[sid],
                        f"{sid}: cancelled request corrupted session state",
                    )
                else:
                    raise ChaosInvariantViolation(
                        "a request stalled past its deadline was not cancelled"
                    )
            # The committed attempt (retries allowed, no tight deadline).
            try:
                result = issue(None)
            except ServiceError as error:
                _require(
                    error.code is not None and error.retryable is not None,
                    f"unstructured rejection {error!r}",
                )
                record_rejection(error)
                continue
            ledger[sid] += 1
            report["acks"] += 1
            _require(
                result["num_edits"] == ledger[sid],
                f"{sid}: server reports {result['num_edits']} edits, "
                f"ledger says {ledger[sid]}",
            )

        # Final kill: everything acknowledged must still be there.
        kill_and_restart()
        report["stalls"] = middleware.stalled
        report["final_ledger"] = dict(sorted(ledger.items()))
        return report
    finally:
        client.client.close()
        handle.stop()
