"""Deterministic chaos drill for the inference service.

:mod:`repro.testing.faults` attacks the SMC loop from inside one
particle; this module attacks the *service* contract from outside:

* **slow translators** — :class:`ChaosMiddleware` stalls every N-th
  mutating request on the shard worker thread, creating the wedge the
  degradation ladder and the deadline machinery exist for;
* **deadline cancellations** — the drill issues requests whose deadline
  is shorter than the injected stall and asserts the cancellation is
  *clean*: a structured ``deadline_exceeded`` rejection and a session
  whose edit count is exactly what was last acknowledged;
* **poison requests** — unparseable programs and unknown session ids,
  asserted to produce ``bad_request`` without disturbing state;
* **worker kills** — the server is killed abruptly (no draining, no
  graceful eviction) mid-workload and restarted over the same store;
  the drill asserts every *acknowledged* mutation survived and that the
  recovered durable state is byte-identical to the pre-kill snapshot;
* **shard-process kills** — :func:`run_process_chaos_drill` runs the
  same script against a router with ``shard_processes`` worker
  processes and delivers real ``SIGKILL``\\ s to the shard that owns the
  in-flight session, asserting the acked ledger survives failover to
  the replica, durable bytes never change across a kill, and the
  supervisor respawns the fleet.

Everything is seeded: the workload scripts come from
:data:`repro.service.loadgen.WORKLOADS` under a :class:`random.Random`
seeded from the config, the kill points are fixed op indices, and the
middleware's stall schedule is a call counter that lives in the driver
process and therefore survives server restarts.  Two runs of
:func:`run_chaos_drill` with the same config perform the same requests
and the same injections.

Invariant violations raise :class:`ChaosInvariantViolation` — a drill
that *returns* has proven its invariants, and the report it returns
says how much chaos that proof covered.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import (
    BadRequestError,
    DeadlineExceededError,
    ReproError,
    ServiceError,
)
from ..service.client import RetryingClient, ServiceClient
from ..service.config import ServiceConfig
from ..service.loadgen import WORKLOADS
from ..service.server import ServiceHandle
from ..store.checkpoint import CheckpointManager
from ..store.codec import dumps

__all__ = [
    "ChaosConfig",
    "ChaosInvariantViolation",
    "ChaosMiddleware",
    "run_chaos_drill",
    "run_process_chaos_drill",
]


class ChaosInvariantViolation(ReproError, AssertionError):
    """The service broke one of the contracts the drill checks."""


class ChaosMiddleware:
    """Stalls every ``slow_every``-th mutating request on the worker.

    The call counter lives here — in the *driver* process — so the stall
    schedule is deterministic across in-process server restarts.
    """

    def __init__(self, slow_every: int = 0, slow_seconds: float = 0.05):
        self.slow_every = int(slow_every)
        self.slow_seconds = float(slow_seconds)
        self.calls = 0
        self.stalled = 0

    def will_stall_next(self) -> bool:
        return self.slow_every > 0 and (self.calls + 1) % self.slow_every == 0

    def __call__(self, op: str, session_id: str, apply: Callable[[], Any]) -> Any:
        self.calls += 1
        if self.slow_every > 0 and self.calls % self.slow_every == 0:
            self.stalled += 1
            time.sleep(self.slow_seconds)
        return apply()


@dataclass(frozen=True)
class ChaosConfig:
    """One drill: which workload, how much chaos, where the kills land.

    ``kill_after_ops`` are 1-based indices into the flattened mutating-op
    sequence; before issuing that op the server is killed abruptly and
    restarted over the same store.  ``deadline_ops`` are indices issued
    with a deadline shorter than the injected stall (each must coincide
    with a stalled call — :func:`run_chaos_drill` arranges that by
    construction when left at defaults).
    """

    workload: str = "gauss-chain"
    num_sessions: int = 2
    ops_per_session: int = 6
    num_particles: int = 20
    seed: int = 0
    kill_after_ops: Tuple[int, ...] = (3, 8)
    slow_every: int = 4
    slow_seconds: float = 0.2
    tight_deadline_s: float = 0.05
    poison_every: int = 5
    tenant: str = "chaos"

    def replace(self, **changes: Any) -> "ChaosConfig":
        return replace(self, **changes)


def _service_config(store_dir: str, config: ChaosConfig) -> ServiceConfig:
    return ServiceConfig(
        store_dir=store_dir,
        num_particles=config.num_particles,
        num_shards=2,
        queue_depth=8,
        # Generous default; the drill's tight deadlines are per-request.
        default_deadline_s=30.0,
        wedged_after_s=0.5,
    )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ChaosInvariantViolation(message)


def _snapshot_bytes(handle: ServiceHandle, session_ids: List[str]) -> Dict[str, bytes]:
    store = handle.service.store
    return {
        sid: dumps(store.manager.get(sid).snapshot(), "json") for sid in session_ids
    }


def run_chaos_drill(store_dir: str, config: Optional[ChaosConfig] = None) -> Dict[str, Any]:
    """Run the drill; return its report or raise :class:`ChaosInvariantViolation`.

    The drill is single-threaded by design: determinism is the point,
    concurrency soak is the load generator's job.
    """
    config = config or ChaosConfig()
    service_config = _service_config(store_dir, config)
    middleware = ChaosMiddleware(config.slow_every, config.slow_seconds)

    # -- the deterministic script ---------------------------------------------
    generator = WORKLOADS[config.workload]
    scripts: Dict[str, Tuple[str, List[Tuple[str, str]]]] = {}
    for index in range(config.num_sessions):
        rng = random.Random(f"{config.seed}:{config.workload}:{index}")
        scripts[f"{config.tenant}-s{index}"] = generator(
            index, config.ops_per_session, rng
        )
    # Round-robin interleave of the sessions' mutating ops.
    flattened: List[Tuple[str, str, str]] = []
    for position in range(config.ops_per_session):
        for sid, (_, ops) in scripts.items():
            op, payload = ops[position]
            flattened.append((sid, op, payload))

    ledger: Dict[str, int] = {}  # sid -> acknowledged mutating ops
    report: Dict[str, Any] = {
        "ops": 0, "acks": 0, "kills": 0, "recoveries_verified": 0,
        "deadline_cancellations": 0, "poison_rejections": 0,
        "rejections": {}, "stalls": 0, "byte_identical_recoveries": 0,
    }

    handle = ServiceHandle.start(
        service_config, translator_middleware=middleware
    )

    def make_client() -> RetryingClient:
        return RetryingClient(
            ServiceClient(*handle.address, tenant=config.tenant),
            max_attempts=3,
            rng=random.Random(config.seed),
            sleep=lambda _s: None,
        )

    client = make_client()

    def verify_recovery(expect_bytes: Dict[str, bytes]) -> None:
        recovered = set(handle.service.recovered_sessions)
        _require(
            recovered == set(ledger),
            f"recovered sessions {sorted(recovered)} != committed {sorted(ledger)}",
        )
        for sid, committed in ledger.items():
            posterior = client.posterior(sid)
            _require(
                posterior["num_edits"] == committed,
                f"{sid}: recovered {posterior['num_edits']} edits, "
                f"committed {committed} — an acknowledged mutation was dropped",
            )
        actual = _snapshot_bytes(handle, sorted(ledger))
        for sid, expected in expect_bytes.items():
            _require(
                actual[sid] == expected,
                f"{sid}: recovered snapshot differs from pre-kill bytes",
            )
        report["byte_identical_recoveries"] += len(expect_bytes)
        report["recoveries_verified"] += 1

    def kill_and_restart() -> None:
        nonlocal handle, client
        expect = _snapshot_bytes(handle, sorted(ledger))
        client.client.close()
        handle.kill()
        report["kills"] += 1
        handle = ServiceHandle.start(
            service_config, translator_middleware=middleware
        )
        client = make_client()
        verify_recovery(expect)

    def record_rejection(error: ServiceError) -> None:
        report["rejections"][error.code] = report["rejections"].get(error.code, 0) + 1

    try:
        # Create every session up front (these acks are mutating commits
        # in the ledger sense: the sessions must survive kills).
        for sid, (base, _) in scripts.items():
            result = client.create(
                sid, base, num_particles=config.num_particles, seed=config.seed
            )
            _require(result["session"] == sid, f"create echoed {result!r}")
            ledger[sid] = 0
            report["acks"] += 1

        for op_index, (sid, op, payload) in enumerate(flattened, start=1):
            if op_index in config.kill_after_ops:
                kill_and_restart()

            if config.poison_every and op_index % config.poison_every == 0:
                # Poison first: must reject structurally, not disturb state.
                try:
                    client.client.edit(sid, "this is ! not a program (")
                except BadRequestError:
                    report["poison_rejections"] += 1
                else:
                    raise ChaosInvariantViolation(
                        "poison program was accepted instead of rejected"
                    )
                posterior = client.posterior(sid)
                _require(
                    posterior["num_edits"] == ledger[sid],
                    f"{sid}: poison request disturbed session state",
                )

            deadline_s = None
            if middleware.will_stall_next():
                # This request will hit the injected stall; give it a
                # deadline it cannot meet, then verify the cancellation
                # was clean and retry without the tight deadline.
                deadline_s = config.tight_deadline_s

            def issue(deadline: Optional[float]) -> Dict[str, Any]:
                if op == "observe":
                    return client.client.observe(sid, payload, deadline_s=deadline)
                return client.client.edit(sid, payload, deadline_s=deadline)

            report["ops"] += 1
            if deadline_s is not None:
                try:
                    issue(deadline_s)
                except DeadlineExceededError as error:
                    report["deadline_cancellations"] += 1
                    record_rejection(error)
                    posterior = client.posterior(sid)
                    _require(
                        posterior["num_edits"] == ledger[sid],
                        f"{sid}: cancelled request corrupted session state",
                    )
                else:
                    raise ChaosInvariantViolation(
                        "a request stalled past its deadline was not cancelled"
                    )
            # The committed attempt (retries allowed, no tight deadline).
            try:
                result = issue(None)
            except ServiceError as error:
                _require(
                    error.code is not None and error.retryable is not None,
                    f"unstructured rejection {error!r}",
                )
                record_rejection(error)
                continue
            ledger[sid] += 1
            report["acks"] += 1
            _require(
                result["num_edits"] == ledger[sid],
                f"{sid}: server reports {result['num_edits']} edits, "
                f"ledger says {ledger[sid]}",
            )

        # Final kill: everything acknowledged must still be there.
        kill_and_restart()
        report["stalls"] = middleware.stalled
        report["final_ledger"] = dict(sorted(ledger.items()))
        return report
    finally:
        client.client.close()
        handle.stop()


# -- the shard-process drill ---------------------------------------------------


def _durable_bytes(store_dir: str, session_ids: List[str]) -> Dict[str, bytes]:
    """Latest commit-snapshot bytes straight off disk, one per session.

    The process drill cannot use :func:`_snapshot_bytes` — in process
    mode the router's manager holds no live sessions (they live in the
    shard processes) — so the byte-identity invariant is checked against
    the durability substrate itself: the fsynced checkpoint files the
    failover replica recovers from.
    """
    root = Path(store_dir) / "checkpoints"
    out: Dict[str, bytes] = {}
    for sid in session_ids:
        data = CheckpointManager(root / sid).latest_bytes()
        _require(data is not None, f"{sid}: no durable checkpoint on disk")
        out[sid] = data  # type: ignore[assignment]
    return out


def run_process_chaos_drill(
    store_dir: str,
    config: Optional[ChaosConfig] = None,
    *,
    shard_processes: int = 2,
    replicate: bool = True,
) -> Dict[str, Any]:
    """The kill drill against *shard processes*: SIGKILL individual
    shards mid-workload and prove failover loses nothing.

    Same deterministic script machinery as :func:`run_chaos_drill`, but
    the faults are real ``SIGKILL``\\ s delivered to individual shard
    worker processes while the router stays up.  At each kill point the
    drill:

    1. records the durable checkpoint bytes of every committed session;
    2. SIGKILLs the shard process that *owns* the next op's session
       (maximally adversarial: the kill always lands in the request
       path);
    3. immediately reads every session's posterior through the retrying
       client — the first attempts race the router's death detection, so
       this exercises the unavailable→retry→failover path and the
       degraded-read ladder — and requires exactly the ledgered edit
       count back (no acked mutation lost, no unacked mutation leaked);
    4. requires the on-disk checkpoint bytes to be byte-identical to the
       pre-kill capture (the kill corrupted nothing);
    5. resumes the script — the next mutating op must ack on the
       failed-over owner.

    Stall middleware does not apply here (translation runs inside the
    shard processes); the chaos is kills, races, and poison.  The drill
    ends with a full router+pool restart over the same store to prove
    cold recovery of the whole fleet, and verifies the supervisor
    respawned every killed member along the way.
    """
    config = config or ChaosConfig()
    service_config = _service_config(store_dir, config).replace(
        shard_processes=shard_processes, replicate=replicate
    )

    generator = WORKLOADS[config.workload]
    scripts: Dict[str, Tuple[str, List[Tuple[str, str]]]] = {}
    for index in range(config.num_sessions):
        rng = random.Random(f"{config.seed}:{config.workload}:{index}")
        scripts[f"{config.tenant}-s{index}"] = generator(
            index, config.ops_per_session, rng
        )
    flattened: List[Tuple[str, str, str]] = []
    for position in range(config.ops_per_session):
        for sid, (_, ops) in scripts.items():
            op, payload = ops[position]
            flattened.append((sid, op, payload))

    ledger: Dict[str, int] = {}
    report: Dict[str, Any] = {
        "ops": 0, "acks": 0, "process_kills": 0, "failover_reads": 0,
        "failover_acks": 0, "byte_identical_recoveries": 0,
        "poison_rejections": 0, "respawns_observed": 0,
        "cold_restarts": 0,
    }

    handle = ServiceHandle.start(service_config)

    def make_client() -> RetryingClient:
        # Real (short) sleeps: failover needs the router to *notice* the
        # death, which takes a transport error plus one loop tick.
        return RetryingClient(
            ServiceClient(*handle.address, tenant=config.tenant),
            max_attempts=8,
            backoff_base_s=0.05,
            backoff_cap_s=0.5,
            rng=random.Random(config.seed),
        )

    client = make_client()

    def verify_ledger(counter: str) -> None:
        for sid, committed in ledger.items():
            posterior = client.posterior(sid)
            _require(
                posterior["num_edits"] == committed,
                f"{sid}: read {posterior['num_edits']} edits after failover, "
                f"ledger says {committed} — an acknowledged mutation was lost",
            )
            report[counter] += 1

    def kill_owner_of(sid: str) -> None:
        service = handle.service
        victim = service._placement.assignments().get(sid)
        _require(victim is not None, f"{sid} has no placement to kill")
        expect = _durable_bytes(store_dir, sorted(ledger))
        service._pool.kill(victim)
        report["process_kills"] += 1
        # Reads race the death discovery: first attempts may land on the
        # dead lane, the retries must fail over to the replica.
        verify_ledger("failover_reads")
        actual = _durable_bytes(store_dir, sorted(ledger))
        for check_sid, expected in expect.items():
            _require(
                actual[check_sid] == expected,
                f"{check_sid}: durable snapshot changed across a shard "
                "SIGKILL — recovery is not byte-identical",
            )
        report["byte_identical_recoveries"] += len(expect)

    def await_respawn(deadline_s: float = 15.0) -> None:
        expected = list(range(shard_processes))
        waited = 0.0
        while waited < deadline_s:
            alive = client.stats()["process_mode"]["alive_members"]
            if alive == expected:
                report["respawns_observed"] += 1
                return
            time.sleep(0.1)
            waited += 0.1
        raise ChaosInvariantViolation(
            f"supervisor did not respawn killed shards within {deadline_s}s"
        )

    try:
        for sid, (base, _) in scripts.items():
            result = client.create(
                sid, base, num_particles=config.num_particles, seed=config.seed
            )
            _require(result["session"] == sid, f"create echoed {result!r}")
            ledger[sid] = 0
            report["acks"] += 1

        for op_index, (sid, op, payload) in enumerate(flattened, start=1):
            killed_here = op_index in config.kill_after_ops
            if killed_here:
                kill_owner_of(sid)

            if config.poison_every and op_index % config.poison_every == 0:
                try:
                    client.client.edit(sid, "this is ! not a program (")
                except BadRequestError:
                    report["poison_rejections"] += 1
                else:
                    raise ChaosInvariantViolation(
                        "poison program was accepted instead of rejected"
                    )
                posterior = client.posterior(sid)
                _require(
                    posterior["num_edits"] == ledger[sid],
                    f"{sid}: poison request disturbed session state",
                )

            report["ops"] += 1
            try:
                if op == "observe":
                    result = client.observe(sid, payload)
                else:
                    result = client.edit(sid, payload)
            except ServiceError as error:
                _require(
                    not killed_here,
                    f"{sid}: op after a shard kill was not failed over: {error!r}",
                )
                _require(
                    error.code is not None and error.retryable is not None,
                    f"unstructured rejection {error!r}",
                )
                continue
            ledger[sid] += 1
            report["acks"] += 1
            if killed_here:
                report["failover_acks"] += 1
            _require(
                result["num_edits"] == ledger[sid],
                f"{sid}: server reports {result['num_edits']} edits, "
                f"ledger says {ledger[sid]}",
            )

        # The supervisor must have brought every killed member back.
        await_respawn()

        # Cold restart of the whole fleet (router + every shard process)
        # over the same store: lazy recovery must reproduce the ledger
        # and must not rewrite a byte of durable state.
        expect = _durable_bytes(store_dir, sorted(ledger))
        client.client.close()
        handle.kill()
        handle = ServiceHandle.start(service_config)
        client = make_client()
        report["cold_restarts"] += 1
        verify_ledger("failover_reads")
        actual = _durable_bytes(store_dir, sorted(ledger))
        for check_sid, expected in expect.items():
            _require(
                actual[check_sid] == expected,
                f"{check_sid}: durable snapshot changed across a fleet restart",
            )
        report["byte_identical_recoveries"] += len(expect)

        report["final_ledger"] = dict(sorted(ledger.items()))
        return report
    finally:
        client.client.close()
        handle.stop()
