"""Deterministic fault injection for chaos-testing the inference engine.

The hardened SMC loop (:mod:`repro.core.smc`) promises that one bad
particle cannot take down the collection.  This module provides the
adversary that promise is tested against: wrappers around any
:class:`~repro.core.translator.TraceTranslator`, MCMC
:data:`~repro.core.mcmc.Kernel`, or
:class:`~repro.distributions.Distribution` that inject structured
exceptions, ``NaN`` log weights, and ``-inf`` log weights — either at a
seeded random rate (reproducible across runs) or at specific call
indices (reproducible across *policies*, for byte-for-byte comparisons
of ``fail_fast`` against the containing policies).

All wrappers share one :class:`FaultInjector`, which owns the decision
stream and the bookkeeping: ``injector.calls`` counts every intercepted
call and ``injector.injected`` counts injections by kind, so chaos tests
can assert that the fault counters reported in
:class:`~repro.core.smc.SMCStats` are exact.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Mapping, Optional, Tuple

import numpy as np

from ..core.mcmc import Kernel
from ..core.translator import TraceTranslator, TranslationResult
from ..distributions.base import Distribution, Support
from ..errors import TranslationError

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultyTranslator",
    "faulty_kernel",
    "FaultyDistribution",
]

NAN = float("nan")
NEG_INF = float("-inf")

#: ``error`` raises an exception, ``nan`` poisons the log weight with
#: ``NaN``, ``neg_inf`` forces a zero-probability (``-inf``) log weight.
FAULT_KINDS = ("error", "nan", "neg_inf")


def _default_error() -> Exception:
    return TranslationError("injected fault")


class FaultInjector:
    """A seeded source of fault decisions shared by the wrappers.

    Parameters
    ----------
    seed:
        Seed of the private random stream used for rate-based
        injection.  The stream is independent of the inference RNG, so
        injecting faults never perturbs which random choices the
        underlying sampler would have made on the surviving calls.
    error_rate / nan_rate / neg_inf_rate:
        Per-call probability of injecting each fault kind.  Rates are
        tried in that order and must sum to at most 1.
    at_calls:
        Mapping from 0-based call index to a fault kind, for precisely
        scripted scenarios (e.g. "the 4th translation raises").  Takes
        precedence over the rates at those indices.
    error_factory:
        Zero-argument callable building the exception instance for
        ``error`` faults; defaults to
        ``TranslationError("injected fault")``.

    Attributes
    ----------
    calls:
        Number of intercepted calls so far (across all wrappers sharing
        this injector).
    injected:
        ``collections.Counter`` of injections by fault kind.
    """

    def __init__(
        self,
        seed: int = 0,
        error_rate: float = 0.0,
        nan_rate: float = 0.0,
        neg_inf_rate: float = 0.0,
        at_calls: Optional[Mapping[int, str]] = None,
        error_factory: Callable[[], Exception] = _default_error,
    ):
        rates = {"error": error_rate, "nan": nan_rate, "neg_inf": neg_inf_rate}
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1], got {rate!r}")
        if sum(rates.values()) > 1.0:
            raise ValueError("fault rates must sum to at most 1")
        self._rates = rates
        self._at_calls = dict(at_calls or {})
        for index, kind in self._at_calls.items():
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} at call {index}; "
                    f"choose from {list(FAULT_KINDS)}"
                )
        self._rng = np.random.default_rng(seed)
        self.error_factory = error_factory
        self.calls = 0
        self.injected: Counter = Counter()

    def decide(self) -> Optional[str]:
        """Consume one call slot; return the fault kind to inject or None."""
        index = self.calls
        self.calls += 1
        kind = self._at_calls.get(index)
        if kind is None:
            # One uniform draw per call keeps the stream aligned across
            # kinds: changing one rate never reshuffles later decisions.
            draw = self._rng.random()
            cumulative = 0.0
            for candidate, rate in self._rates.items():
                cumulative += rate
                if draw < cumulative:
                    kind = candidate
                    break
        if kind is not None:
            self.injected[kind] += 1
        return kind

    def raise_injected(self) -> Exception:
        return self.error_factory()

    def total_injected(self) -> int:
        return sum(self.injected.values())


class FaultyTranslator(TraceTranslator):
    """Wrap a translator, injecting faults into ``translate`` calls.

    ``error`` faults raise before the inner translator runs; ``nan`` and
    ``neg_inf`` faults run the inner translator and then corrupt the
    returned log weight (the trace itself is genuine, which mirrors the
    realistic failure where only the arithmetic collapses).

    The ``regenerate`` method of the inner translator (used by the
    ``regenerate`` fault policy) is proxied untouched: the chaos harness
    attacks translation, not the degradation path, unless you wrap that
    path explicitly via ``fault_regenerate=True``.
    """

    def __init__(
        self,
        inner: TraceTranslator,
        injector: FaultInjector,
        fault_regenerate: bool = False,
    ):
        self._inner = inner
        self._injector = injector
        self._fault_regenerate = fault_regenerate

    @property
    def source(self) -> Any:
        return self._inner.source

    @property
    def target(self) -> Any:
        return self._inner.target

    @property
    def injector(self) -> FaultInjector:
        return self._injector

    def sync_calls(self, index: int) -> None:
        """Re-align the injector's call counter to a global particle index.

        Executor workers (:mod:`repro.parallel.worker`) call this before
        translating particle ``index``, so an ``at_calls`` fault schedule
        addresses particles by their *global* position — making scripted
        chaos runs identical under every backend, worker count, and
        chunking (a process worker's pickled injector copy would
        otherwise restart counting at zero).
        """
        self._injector.calls = index

    def translate(self, rng: np.random.Generator, trace: Any) -> TranslationResult:
        kind = self._injector.decide()
        if kind == "error":
            raise self._injector.raise_injected()
        result = self._inner.translate(rng, trace)
        if kind == "nan":
            return TranslationResult(result.trace, NAN, dict(result.components))
        if kind == "neg_inf":
            return TranslationResult(result.trace, NEG_INF, dict(result.components))
        return result

    def regenerate(self, rng: np.random.Generator) -> Tuple[Any, float]:
        inner_regenerate = getattr(self._inner, "regenerate", None)
        if inner_regenerate is None:
            raise AttributeError(
                f"{type(self._inner).__name__} has no regenerate(rng) method"
            )
        if self._fault_regenerate:
            kind = self._injector.decide()
            if kind == "error":
                raise self._injector.raise_injected()
            trace, log_weight = inner_regenerate(rng)
            if kind == "nan":
                return trace, NAN
            if kind == "neg_inf":
                return trace, NEG_INF
            return trace, log_weight
        return inner_regenerate(rng)


def faulty_kernel(inner: Kernel, injector: FaultInjector) -> Kernel:
    """Wrap an MCMC kernel, raising injected errors at seeded calls.

    Only ``error`` faults apply to kernels (a kernel returns a trace,
    not a weight); ``nan``/``neg_inf`` decisions at kernel calls raise
    too, so shared-injector call accounting stays exact.
    """

    def kernel(rng: np.random.Generator, trace: Any) -> Any:
        if injector.decide() is not None:
            raise injector.raise_injected()
        return inner(rng, trace)

    return kernel


class FaultyDistribution(Distribution):
    """Wrap a distribution, injecting faults into ``sample``/``log_prob``.

    ``error`` faults raise (as a model-execution failure would); ``nan``
    faults return a ``NaN`` sample or log probability; ``neg_inf``
    faults make ``log_prob`` return ``-inf`` (and are a no-op for
    ``sample``, which has no failure value of that shape).  Equality and
    support delegate to the inner distribution so reuse decisions are
    unaffected.

    ``log_prob`` consumes injector decisions, so it is *not* a pure
    function of ``(self, value)``: ``cacheable_log_prob`` is False so
    the translator's log-prob cache never elides a call (which would
    silently shift the fault schedule).
    """

    cacheable_log_prob = False

    def __init__(self, inner: Distribution, injector: FaultInjector):
        self.inner = inner
        self._injector = injector

    def sample(self, rng: np.random.Generator) -> Any:
        kind = self._injector.decide()
        if kind == "error":
            raise self._injector.raise_injected()
        if kind == "nan":
            return NAN
        return self.inner.sample(rng)

    def log_prob(self, value: Any) -> float:
        kind = self._injector.decide()
        if kind == "error":
            raise self._injector.raise_injected()
        if kind == "nan":
            return NAN
        if kind == "neg_inf":
            return NEG_INF
        return self.inner.log_prob(value)

    def support(self) -> Support:
        return self.inner.support()

    def is_discrete(self) -> bool:
        return self.inner.is_discrete()

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, FaultyDistribution):
            return self.inner == other.inner
        return self.inner == other

    def __hash__(self) -> int:
        return hash(self.inner)

    def __repr__(self) -> str:
        return f"FaultyDistribution({self.inner!r})"
