"""Unit suite for the abstract interpreter (:mod:`repro.analysis.absint`).

Covers the three layers separately: the value lattice, the Python-model
interpreter (constant propagation, loop unrolling, taint, fail-closed
refusals), and the :class:`StaticProfile` views the rest of the system
consumes (families, dependency graph, runtime-profile projection,
address interning).
"""

import math
import pickle

import numpy as np
import pytest

from repro.analysis.absint import analyze_model
from repro.analysis.absint.values import (
    MAX_ONE_OF,
    Const,
    OneOf,
    Sampled,
    Unknown,
    deps_of,
    is_numeric_scalar,
    is_tainted,
    join,
    make_one_of,
    possible_values,
)
from repro.core.model import Model
from repro.distributions import Flip, Normal, Uniform
from repro.lang.interp import lang_model
from repro.lang.parser import parse_program


# ---------------------------------------------------------------------------
# The value lattice
# ---------------------------------------------------------------------------


class TestLattice:
    def test_const_join_const_makes_one_of(self):
        merged = join(Const(1), Const(2))
        assert isinstance(merged, OneOf)
        assert set(merged.values) == {1, 2}
        assert not merged.tainted

    def test_branch_taint_folds_into_join(self):
        merged = join(Const(1), Const(2), tainted=True, extra_deps=frozenset({("a",)}))
        assert is_tainted(merged)
        assert ("a",) in deps_of(merged)

    def test_equal_consts_join_to_const(self):
        merged = join(Const(5), Const(5))
        assert merged == Const(5)

    def test_oversized_one_of_widens_to_unknown_numeric(self):
        widened = make_one_of(range(MAX_ONE_OF + 2), tainted=True)
        assert isinstance(widened, Unknown)
        assert widened.tainted
        # The shape fact survives the widening: every member was an int.
        assert is_numeric_scalar(widened)

    def test_oversized_one_of_of_non_scalars_is_not_numeric(self):
        members = [object() for _ in range(MAX_ONE_OF + 2)]
        widened = make_one_of(members, tainted=False)
        assert isinstance(widened, Unknown)
        assert not is_numeric_scalar(widened)

    def test_sampled_is_tainted_and_numeric(self):
        value = Sampled(("x",), (Normal(0.0, 1.0).support(),))
        assert is_tainted(value)
        assert is_numeric_scalar(value)
        assert deps_of(value) == frozenset({("x",)})

    def test_possible_values_enumerates_finite_supports(self):
        value = Sampled(("a",), (Flip(0.5).support(),))
        members = possible_values(value)
        assert members is not None
        assert set(members) == {True, False}

    def test_possible_values_refuses_continuous_supports(self):
        value = Sampled(("x",), (Uniform(0.0, 1.0).support(),))
        assert possible_values(value) is None

    def test_join_of_scalar_unknowns_keeps_numeric_bit(self):
        a = Unknown(tainted=True, numeric=True)
        b = Const(2.0)
        merged = join(a, b)
        assert isinstance(merged, Unknown)
        assert is_numeric_scalar(merged)

    def test_join_with_non_scalar_drops_numeric_bit(self):
        merged = join(Unknown(numeric=True), Const("text"))
        assert isinstance(merged, Unknown)
        assert not is_numeric_scalar(merged)


# ---------------------------------------------------------------------------
# Python-model interpretation
# ---------------------------------------------------------------------------


def _loop_fn(h, n):
    slope = h.sample(Normal(0.0, 2.0), "slope")
    for i in range(n):
        h.observe(Normal(slope * i, 1.0), 0.5 * i, ("y", i))
    return slope


def _branch_fn(h):
    a = h.sample(Flip(0.5), "a")
    if a:
        b = h.sample(Normal(1.0, 1.0), "b")
    else:
        b = 0.0
    return b


def _dynamic_address_fn(h, parts):
    return h.sample(Flip(0.5), "".join(reversed(parts)))


def _tainted_while_fn(h):
    x = h.sample(Normal(0.0, 1.0), "x")
    total = 0.0
    while x > 0:
        total = total + x
        x = h.sample(Normal(0.0, 1.0), "x")
    return total


def _param_dep_fn(h):
    mu = h.sample(Normal(0.0, 1.0), "mu")
    return h.sample(Normal(mu, 1.0), "x")


def _conditioned_fn(h):
    x = h.sample(Normal(0.0, 1.0), "x")
    h.sample(Normal(x, 1.0), "y")
    return x


def _list_fn(h, n):
    states = []
    for i in range(n):
        states.append(h.sample(Flip(0.5), ("s", i)))
    return states


class TestPythonInterpreter:
    def test_constant_args_unroll_the_loop(self):
        profile = analyze_model(Model(_loop_fn, args=(3,)))
        assert profile.complete
        assert list(profile.observations) == [("y", 0), ("y", 1), ("y", 2)]
        assert list(profile.addresses) == [("slope",)]
        info = profile.addresses[("slope",)]
        assert info.dist_classes == ("Normal",)
        assert info.always

    def test_loop_addresses_group_into_one_family(self):
        profile = analyze_model(Model(_loop_fn, args=(4,)))
        families = profile.families()
        # One family per head: "slope" (arity 0) stands alone.
        assert families[("slope", 0)] == [("slope",)]

    def test_branch_join_marks_conditional_address(self):
        profile = analyze_model(Model(_branch_fn))
        assert profile.complete
        assert profile.value_dependent_control_flow
        assert profile.addresses[("a",)].always
        b = profile.addresses[("b",)]
        assert not b.always
        assert ("a",) in b.control_deps

    def test_param_deps_form_the_dependency_graph(self):
        profile = analyze_model(Model(_param_dep_fn))
        assert profile.complete
        graph = profile.dependencies()
        assert graph[("x",)] == frozenset({("mu",)})
        assert graph[("mu",)] == frozenset()

    def test_conditioned_sample_is_an_observation(self):
        model = Model(_conditioned_fn, observations={("y",): 1.5})
        profile = analyze_model(model)
        assert profile.complete
        assert ("y",) in profile.observations
        assert ("y",) not in profile.addresses

    def test_mutable_list_of_samples_stays_precise(self):
        profile = analyze_model(Model(_list_fn, args=(3,)))
        assert profile.complete
        assert set(profile.addresses) == {("s", 0), ("s", 1), ("s", 2)}
        # A per-particle list return cannot be stacked into a column.
        assert profile.return_batchable is False

    def test_scalar_return_is_batchable(self):
        profile = analyze_model(Model(_param_dep_fn))
        assert profile.return_batchable is True

    def test_dynamic_address_fails_closed(self):
        profile = analyze_model(Model(_dynamic_address_fn, args=(("b", "a"),)))
        # "".join(reversed(...)) over constants executes concretely, so
        # this particular address closes; taint it instead:
        assert profile.complete  # constants close fine
        assert ("ab",) in profile.addresses

    def test_tainted_while_bound_fails_closed(self):
        profile = analyze_model(Model(_tainted_while_fn))
        assert not profile.complete
        assert profile.failure
        with pytest.raises(ValueError):
            profile.to_address_profile()

    def test_fail_records_first_reason_only(self):
        profile = analyze_model(Model(_tainted_while_fn))
        first = profile.failure
        profile.fail("a later reason")
        assert profile.failure == first

    def test_bundled_dist_classes_are_verified_batch(self):
        profile = analyze_model(Model(_param_dep_fn))
        assert all(i.verified_batch for i in profile.addresses.values())

    def test_third_party_dist_class_is_unverified(self):
        from tests.core.test_columnar_spill_codes import _bad_batch_tgt

        profile = analyze_model(Model(_bad_batch_tgt))
        assert profile.complete
        assert not profile.addresses[("x",)].verified_batch

    def test_opaque_tainted_calls_are_recorded(self):
        def fn(h):
            x = h.sample(Normal(0.0, 1.0), "x")
            y = math.exp(x)
            h.observe(Normal(y, 1.0), 0.5, "obs")
            return x

        profile = analyze_model(Model(fn))
        assert profile.complete
        assert profile.opaque_tainted_lines

    def test_static_addresses_pickle_identically_to_runtime(self):
        model = Model(_loop_fn, args=(3,))
        profile = analyze_model(model)
        trace = model.generate(np.random.default_rng(0))[0]
        runtime = list(trace.addresses()) + list(trace.observation_addresses())
        static = list(profile.addresses) + list(profile.observations)
        assert sorted(map(repr, static)) == sorted(map(repr, runtime))
        assert pickle.dumps(sorted(static)) == pickle.dumps(sorted(runtime))


# ---------------------------------------------------------------------------
# Structured-language models
# ---------------------------------------------------------------------------


class TestLangInterpreter:
    def test_straight_line_program_closes(self):
        program = parse_program("x = flip(0.5); y = gauss(0.0, 1.0); return y;")
        profile = analyze_model(lang_model(program, name="straight"))
        assert profile.complete
        assert len(profile.addresses) == 2

    def test_profile_json_shape(self):
        program = parse_program("x = flip(0.5); return x;")
        profile = analyze_model(lang_model(program, name="tiny"))
        payload = profile.to_json()
        assert payload["complete"] is True
        assert payload["name"] == "tiny"
        assert all("dist_classes" in a for a in payload["addresses"])
        assert all("verified_batch" in a for a in payload["addresses"])
        assert "value_dependent_control_flow" in payload
        assert "return_batchable" in payload
