"""Tests for the config/pipeline lint pass."""

from repro.analysis import lint_config
from repro.core import InferenceConfig
from repro.core.config import FaultPolicy


def codes(diagnostics):
    return {d.code for d in diagnostics}


class _LambdaTranslator:
    """A translator whose correspondence closes over a lambda."""

    def __init__(self):
        self.correspondence = lambda address: address

    def translate(self, rng, item):  # pragma: no cover - never called
        raise NotImplementedError


class TestConfigLint:
    def test_default_config_is_clean(self):
        assert lint_config(InferenceConfig()) == []

    def test_process_executor_with_lambda_translator_names_attribute(self):
        diagnostics = lint_config(
            InferenceConfig(executor="process"), _LambdaTranslator()
        )
        unpicklable = [d for d in diagnostics if d.code == "config-unpicklable"]
        assert len(unpicklable) == 1
        assert unpicklable[0].severity == "error"
        # The finding names the exact offending attribute path.
        assert "translator.correspondence" in unpicklable[0].message

    def test_process_executor_with_picklable_translator_is_clean(self):
        from repro.core.correspondence import Correspondence

        class _Picklable:
            correspondence = None

        translator = _LambdaTranslator.__new__(_LambdaTranslator)
        translator.correspondence = Correspondence.identity(["a"])
        diagnostics = lint_config(InferenceConfig(executor="process"), translator)
        assert "config-unpicklable" not in codes(diagnostics)

    def test_checkpoint_cadence_without_dir_warns(self):
        diagnostics = lint_config(InferenceConfig(checkpoint_every=5))
        cadence = [d for d in diagnostics if d.code == "config-checkpoint-cadence"]
        assert len(cadence) == 1
        assert cadence[0].severity == "warning"

    def test_checkpoint_cadence_with_dir_is_clean(self):
        config = InferenceConfig(checkpoint_dir="ckpt", checkpoint_every=5)
        assert "config-checkpoint-cadence" not in codes(lint_config(config))

    def test_workers_without_executor_warns(self):
        diagnostics = lint_config(InferenceConfig(workers=4))
        assert "config-workers-ignored" in codes(diagnostics)

    def test_ess_threshold_with_never_resample_warns(self):
        diagnostics = lint_config(
            InferenceConfig(resample="never", ess_threshold=0.9)
        )
        assert "config-ess-ignored" in codes(diagnostics)

    def test_regenerate_without_sampler_is_error(self):
        diagnostics = lint_config(InferenceConfig(fault_policy="regenerate"))
        missing = [d for d in diagnostics if d.code == "config-no-regenerate"]
        assert len(missing) == 1
        assert missing[0].severity == "error"

    def test_regenerate_with_policy_fn_is_clean(self):
        policy = FaultPolicy(mode="regenerate", regenerate_fn=lambda rng: (None, 0.0))
        diagnostics = lint_config(InferenceConfig(fault_policy=policy))
        assert "config-no-regenerate" not in codes(diagnostics)

    def test_drop_policy_without_resampling_warns(self):
        diagnostics = lint_config(InferenceConfig(fault_policy="drop"))
        assert "config-drop-accumulates" in codes(diagnostics)

    def test_no_weights_ablation_is_info(self):
        diagnostics = lint_config(InferenceConfig(use_weights=False))
        ablation = [d for d in diagnostics if d.code == "config-no-weights"]
        assert len(ablation) == 1
        assert ablation[0].severity == "info"
