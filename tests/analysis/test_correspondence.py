"""Seeded-bug tests for the correspondence validation pass."""

import numpy as np
import pytest

from repro.analysis import profile_model, validate_correspondence, validate_label_map
from repro.core.correspondence import Correspondence
from repro.core.model import Model
from repro.distributions import Flip, Normal
from repro.graph.diff import align_labels
from repro.lang.parser import parse_program


def _flip_pair_fn(t):
    a = t.sample(Flip(0.4), "a")
    t.sample(Flip(0.6), "b")
    return a


def _flip_renamed_fn(t):
    a = t.sample(Flip(0.4), "a2")
    t.sample(Flip(0.6), "b2")
    return a


def _gauss_fn(t):
    return t.sample(Normal(0.0, 1.0), "a")


def _collapse_to_a(address):
    # Deliberately non-injective: every target address maps to "a".
    return ("a",)


def _identity_backward(address):
    return address


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestProfileModel:
    def test_discrete_model_enumerates_completely(self):
        profile = profile_model(Model(_flip_pair_fn, name="p"))
        assert profile.complete
        assert set(profile.supports) == {("a",), ("b",)}

    def test_continuous_model_closes_statically(self):
        # The static profiler reads the RealLine support off the source;
        # no sampling, and the profile is complete.
        profile = profile_model(Model(_gauss_fn, name="g"), num_samples=5)
        assert profile.complete
        assert profile.method == "static"
        assert ("a",) in profile

    def test_continuous_model_falls_back_to_sampling(self):
        # The pre-static behavior, still reachable via method="runtime":
        # a continuous model cannot be enumerated, so the profile is a
        # sampled under-approximation.
        profile = profile_model(
            Model(_gauss_fn, name="g"), num_samples=5, method="runtime"
        )
        assert not profile.complete
        assert profile.method == "sample"
        assert ("a",) in profile


class TestSeededBugs:
    def test_non_injective_intensional_map(self):
        # from_dict rejects non-injective dicts eagerly, so the seeded
        # bug must come in through an intensional correspondence.
        bad = Correspondence(_collapse_to_a, _identity_backward)
        diagnostics = validate_correspondence(
            Model(_flip_pair_fn, name="p"), Model(_flip_pair_fn, name="q"), bad
        )
        assert "corr-not-injective" in codes(diagnostics)
        assert any(d.severity == "error" for d in diagnostics)

    def test_support_mismatch_flip_to_gauss_is_error(self):
        corr = Correspondence.identity(["a"])
        diagnostics = validate_correspondence(
            Model(_flip_pair_fn, name="p"), Model(_gauss_fn, name="q"), corr
        )
        mismatches = [d for d in diagnostics if d.code == "corr-support-mismatch"]
        assert len(mismatches) == 1
        assert mismatches[0].severity == "error"

    def test_address_in_neither_program_is_error(self):
        corr = Correspondence.from_dict({("ghost",): ("phantom",)})
        diagnostics = validate_correspondence(
            Model(_flip_pair_fn, name="p"), Model(_flip_pair_fn, name="q"), corr
        )
        unknown = [d for d in diagnostics if d.code == "corr-unknown-pair"]
        assert len(unknown) == 1
        assert unknown[0].severity == "error"

    def test_inconsistent_bijection_is_error(self):
        def forward(address):
            return ("a",) if address == ("a",) else None

        def backward(address):
            return ("b",)  # does not invert forward

        bad = Correspondence(forward, backward)
        diagnostics = validate_correspondence(
            Model(_flip_pair_fn, name="p"), Model(_flip_pair_fn, name="q"), bad
        )
        assert "corr-not-bijective" in codes(diagnostics)

    def test_lambda_correspondence_warns_not_picklable(self):
        corr = Correspondence.identity_by_predicate(lambda address: True)
        diagnostics = validate_correspondence(
            Model(_flip_pair_fn, name="p"), Model(_flip_pair_fn, name="q"), corr
        )
        pickling = [d for d in diagnostics if d.code == "corr-not-picklable"]
        assert len(pickling) == 1
        assert pickling[0].severity == "warning"

    def test_unmapped_target_is_info_only(self):
        corr = Correspondence.identity(["a"])
        diagnostics = validate_correspondence(
            Model(_flip_pair_fn, name="p"), Model(_flip_pair_fn, name="q"), corr
        )
        assert all(d.severity == "info" for d in diagnostics)
        assert "corr-dead-source" in codes(diagnostics)
        assert "corr-unmapped-target" in codes(diagnostics)


class TestBundledCorrespondences:
    def test_burglary_correspondence_is_clean(self):
        from repro.experiments.burglary import (
            burglary_correspondence,
            burglary_original,
            burglary_refined,
        )

        diagnostics = validate_correspondence(
            burglary_original(), burglary_refined(), burglary_correspondence()
        )
        assert not any(d.severity in ("warning", "error") for d in diagnostics)

    def test_hmm_correspondence_is_picklable_and_clean(self):
        import pickle

        from repro.hmm.programs import hidden_state_correspondence

        # The predicate is a module-level function, so the process
        # executor can ship it.
        pickle.dumps(hidden_state_correspondence())


class TestLabelMap:
    def test_derived_map_of_bundled_edit_is_clean(self):
        from repro.lang.programs import BURGLARY_ORIGINAL, BURGLARY_REFINED

        old = parse_program(BURGLARY_ORIGINAL)
        new = parse_program(BURGLARY_REFINED)
        diagnostics = validate_label_map(old, new, align_labels(old, new))
        assert not any(d.severity in ("warning", "error") for d in diagnostics)

    def test_flip_to_gauss_label_is_support_mismatch(self):
        from repro.lang.analysis import random_expressions

        old = parse_program("x = flip(0.5); return x;")
        new = parse_program("x = gauss(0.0, 1.0); return x;")
        old_label = random_expressions(old)[0].label
        new_label = random_expressions(new)[0].label
        diagnostics = validate_label_map(old, new, {new_label: old_label})
        assert "corr-support-mismatch" in codes(diagnostics)

    def test_unknown_labels_are_error(self):
        old = parse_program("x = flip(0.5); return x;")
        new = parse_program("y = flip(0.4); return y;")
        diagnostics = validate_label_map(old, new, {"nope": "missing"})
        assert "corr-unknown-pair" in codes(diagnostics)
