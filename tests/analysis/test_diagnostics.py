"""Tests for the shared diagnostic model (repro.analysis.diagnostics)."""

import pytest

from repro.analysis import (
    SEVERITIES,
    AnalysisResult,
    Diagnostic,
    max_severity,
    severity_rank,
)


class TestDiagnostic:
    def test_positional_compatibility(self):
        # The historical two-field form must keep working.
        d = Diagnostic("error", "boom")
        assert d.severity == "error"
        assert str(d) == "error: boom"

    def test_str_appends_code_suffix(self):
        d = Diagnostic("warning", "msg", code="corr-not-injective")
        assert str(d).startswith("warning: msg")
        assert "[corr-not-injective]" in str(d)

    def test_is_shared_with_lang_check(self):
        from repro.lang.check import Diagnostic as LangDiagnostic

        assert LangDiagnostic is Diagnostic

    def test_with_context_fills_only_unset(self):
        d = Diagnostic("info", "m", pass_name="edits")
        stamped = d.with_context(pass_name="other", target="t")
        assert stamped.pass_name == "edits"
        assert stamped.target == "t"

    def test_with_context_noop_returns_self(self):
        d = Diagnostic("info", "m", pass_name="p", target="t")
        assert d.with_context(pass_name="x", target="y") is d

    def test_to_dict_drops_none_fields(self):
        d = Diagnostic("error", "m", code="c")
        assert d.to_dict() == {"severity": "error", "message": "m", "code": "c"}


class TestSeverity:
    def test_total_order(self):
        ranks = [severity_rank(s) for s in SEVERITIES]
        assert ranks == sorted(ranks)
        assert severity_rank("info") < severity_rank("warning") < severity_rank("error")

    def test_unknown_severity_raises(self):
        with pytest.raises(ValueError, match="unknown severity"):
            severity_rank("fatal")

    def test_max_severity(self):
        diags = [Diagnostic("info", "a"), Diagnostic("warning", "b")]
        assert max_severity(diags) == "warning"
        assert max_severity([]) is None


class TestAnalysisResult:
    def test_extend_stamps_context(self):
        result = AnalysisResult()
        result.extend([Diagnostic("error", "m")], pass_name="p", target="t")
        assert result.diagnostics[0].pass_name == "p"
        assert result.diagnostics[0].target == "t"

    def test_counts_and_errors(self):
        result = AnalysisResult()
        result.extend(
            [Diagnostic("error", "a"), Diagnostic("info", "b"), Diagnostic("info", "c")]
        )
        assert result.counts() == {"error": 1, "warning": 0, "info": 2}
        assert result.has_errors
        assert len(result.errors) == 1

    def test_sorted_most_severe_first(self):
        result = AnalysisResult()
        result.extend(
            [Diagnostic("info", "i"), Diagnostic("error", "e"), Diagnostic("warning", "w")]
        )
        assert [d.severity for d in result.sorted()] == ["error", "warning", "info"]

    def test_to_dict_roundtrips_through_json(self):
        import json

        result = AnalysisResult()
        result.extend([Diagnostic("warning", "m", code="c")], target="t")
        report = json.loads(json.dumps(result.to_dict()))
        assert report["version"] == 1
        assert report["summary"]["warning"] == 1
        assert report["diagnostics"][0]["target"] == "t"
