"""Tests for the edit-soundness pass (static sets vs runtime visits)."""

from repro.analysis import check_edit, invalidation_sets, statement_effects
from repro.lang.parser import parse_program
from repro.lang.programs import BURGLARY_ORIGINAL, BURGLARY_REFINED


def codes(diagnostics):
    return {d.code for d in diagnostics}


OLD = """
a = flip(0.5);
b = gauss(a, 1.0);
c = gauss(b, 1.0);
return c;
"""

# Tail edit: only the last statement's input changes.
NEW_TAIL = """
a = flip(0.5);
b = gauss(a, 1.0);
c = gauss(b, 2.0);
return c;
"""

# Front insertion: positional Seq alignment loses downstream reuse.
NEW_FRONT = """
z = flip(0.1);
a = flip(0.5);
b = gauss(a, 1.0);
c = gauss(b, 1.0);
return c;
"""


class TestStaticSets:
    def test_statement_effects_reads_and_writes(self):
        effects = statement_effects(parse_program(OLD))
        assert effects[1].writes == {"b"}
        assert effects[1].reads == {"a"}
        assert effects[0].has_random and not effects[0].has_observe

    def test_tail_edit_must_visit_only_changed_statement(self):
        analysis = invalidation_sets(parse_program(OLD), parse_program(NEW_TAIL))
        assert analysis.must_visit == {2}
        # The return statement reads c, which the edited statement writes.
        assert analysis.may_visit == {2, 3}

    def test_front_insertion_must_visit_is_just_the_insertion(self):
        analysis = invalidation_sets(parse_program(OLD), parse_program(NEW_FRONT))
        assert analysis.must_visit == {0}
        # z feeds nothing downstream, so nothing else may be invalidated.
        assert analysis.may_visit == {0}


class TestRuntimeCrossCheck:
    def test_clean_tail_edit_has_no_findings(self):
        diagnostics = check_edit(parse_program(OLD), parse_program(NEW_TAIL))
        assert diagnostics == []

    def test_bundled_burglary_edit_is_clean(self):
        diagnostics = check_edit(
            parse_program(BURGLARY_ORIGINAL), parse_program(BURGLARY_REFINED)
        )
        assert not any(d.severity in ("warning", "error") for d in diagnostics)

    def test_front_insertion_reports_overpropagation_info(self):
        # The engine aligns the Seq spine positionally, so inserting at
        # the front re-executes everything downstream — sound, but all
        # reuse is lost.  That is exactly what the info finding reports.
        diagnostics = check_edit(parse_program(OLD), parse_program(NEW_FRONT))
        assert codes(diagnostics) == {"edit-overpropagation"}
        assert all(d.severity == "info" for d in diagnostics)

    def test_tampered_visit_vector_is_stale_skip_error(self):
        # Fabricate an unsound engine: the changed statement (index 2)
        # reports "skipped".  The detector must flag it as an error.
        diagnostics = check_edit(
            parse_program(OLD),
            parse_program(NEW_TAIL),
            visited=[False, False, False, True],
        )
        stale = [d for d in diagnostics if d.code == "edit-stale-skip"]
        assert len(stale) == 1
        assert stale[0].severity == "error"

    def test_wrong_length_visit_vector_is_shape_error(self):
        diagnostics = check_edit(
            parse_program(OLD), parse_program(NEW_TAIL), visited=[True]
        )
        assert codes(diagnostics) == {"edit-visit-shape"}

    def test_static_only_mode_returns_no_findings(self):
        assert (
            check_edit(
                parse_program(OLD), parse_program(NEW_FRONT), runtime_check=False
            )
            == []
        )

    def test_unexecutable_edit_degrades_to_warning(self):
        # n is an env parameter the check does not provide, so the
        # runtime half cannot execute; the static half still runs and
        # the failure surfaces as a warning, not a crash.
        old = parse_program("x = gauss(n, 1.0); return x;")
        new = parse_program("x = gauss(n, 2.0); return x;")
        diagnostics = check_edit(old, new)
        assert codes(diagnostics) == {"edit-runtime-failed"}
        assert all(d.severity == "warning" for d in diagnostics)
