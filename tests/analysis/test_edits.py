"""Tests for the edit-soundness pass (static sets vs runtime visits)."""

from repro.analysis import (
    check_edit,
    invalidation_sets,
    statement_effects,
    validate_label_map,
)
from repro.graph.diff import align_labels
from repro.lang.analysis import random_labels
from repro.lang.parser import parse_program
from repro.lang.programs import BURGLARY_ORIGINAL, BURGLARY_REFINED


def codes(diagnostics):
    return {d.code for d in diagnostics}


OLD = """
a = flip(0.5);
b = gauss(a, 1.0);
c = gauss(b, 1.0);
return c;
"""

# Tail edit: only the last statement's input changes.
NEW_TAIL = """
a = flip(0.5);
b = gauss(a, 1.0);
c = gauss(b, 2.0);
return c;
"""

# Front insertion: positional Seq alignment loses downstream reuse.
NEW_FRONT = """
z = flip(0.1);
a = flip(0.5);
b = gauss(a, 1.0);
c = gauss(b, 1.0);
return c;
"""


class TestStaticSets:
    def test_statement_effects_reads_and_writes(self):
        effects = statement_effects(parse_program(OLD))
        assert effects[1].writes == {"b"}
        assert effects[1].reads == {"a"}
        assert effects[0].has_random and not effects[0].has_observe

    def test_tail_edit_must_visit_only_changed_statement(self):
        analysis = invalidation_sets(parse_program(OLD), parse_program(NEW_TAIL))
        assert analysis.must_visit == {2}
        # The return statement reads c, which the edited statement writes.
        assert analysis.may_visit == {2, 3}

    def test_front_insertion_must_visit_is_just_the_insertion(self):
        analysis = invalidation_sets(parse_program(OLD), parse_program(NEW_FRONT))
        assert analysis.must_visit == {0}
        # z feeds nothing downstream, so nothing else may be invalidated.
        assert analysis.may_visit == {0}


class TestRuntimeCrossCheck:
    def test_clean_tail_edit_has_no_findings(self):
        diagnostics = check_edit(parse_program(OLD), parse_program(NEW_TAIL))
        assert diagnostics == []

    def test_bundled_burglary_edit_is_clean(self):
        diagnostics = check_edit(
            parse_program(BURGLARY_ORIGINAL), parse_program(BURGLARY_REFINED)
        )
        assert not any(d.severity in ("warning", "error") for d in diagnostics)

    def test_front_insertion_reports_overpropagation_info(self):
        # The engine aligns the Seq spine positionally, so inserting at
        # the front re-executes everything downstream — sound, but all
        # reuse is lost.  That is exactly what the info finding reports.
        diagnostics = check_edit(parse_program(OLD), parse_program(NEW_FRONT))
        assert codes(diagnostics) == {"edit-overpropagation"}
        assert all(d.severity == "info" for d in diagnostics)

    def test_tampered_visit_vector_is_stale_skip_error(self):
        # Fabricate an unsound engine: the changed statement (index 2)
        # reports "skipped".  The detector must flag it as an error.
        diagnostics = check_edit(
            parse_program(OLD),
            parse_program(NEW_TAIL),
            visited=[False, False, False, True],
        )
        stale = [d for d in diagnostics if d.code == "edit-stale-skip"]
        assert len(stale) == 1
        assert stale[0].severity == "error"

    def test_wrong_length_visit_vector_is_shape_error(self):
        diagnostics = check_edit(
            parse_program(OLD), parse_program(NEW_TAIL), visited=[True]
        )
        assert codes(diagnostics) == {"edit-visit-shape"}

    def test_static_only_mode_returns_no_findings(self):
        assert (
            check_edit(
                parse_program(OLD), parse_program(NEW_FRONT), runtime_check=False
            )
            == []
        )

    def test_unexecutable_edit_degrades_to_warning(self):
        # n is an env parameter the check does not provide, so the
        # runtime half cannot execute; the static half still runs and
        # the failure surfaces as a warning, not a crash.
        old = parse_program("x = gauss(n, 1.0); return x;")
        new = parse_program("x = gauss(n, 2.0); return x;")
        diagnostics = check_edit(old, new)
        assert codes(diagnostics) == {"edit-runtime-failed"}
        assert all(d.severity == "warning" for d in diagnostics)


NESTED_OLD = """
total = 0;
for i in [0 .. 2) {
    for j in [0 .. 2) {
        total = total + gauss(0.0, 1.0);
    }
}
return total;
"""

GROW_OLD = """
x = 0;
for i in [0 .. 3) {
    x = x + gauss(0.0, 1.0);
}
return x;
"""

# Two textually identical callsites; the edit inserts between them.
DUP_OLD = """
a = gauss(0.0, 1.0);
b = gauss(0.0, 1.0);
return a + b;
"""
DUP_NEW = """
a = gauss(0.0, 1.0);
c = flip(0.5);
b = gauss(0.0, 1.0);
return a + b;
"""


class TestAlignmentEdgeCases:
    """Alignment corners the derive subsystem leans on."""

    def test_nested_loops_invalidate_only_the_loop_spine(self):
        old = parse_program(NESTED_OLD)
        new = parse_program(NESTED_OLD.replace("gauss(0.0, 1.0)", "gauss(0.0, 2.0)"))
        analysis = invalidation_sets(old, new)
        assert analysis.must_visit == {1}
        assert analysis.may_visit == {1, 2}
        assert check_edit(old, new) == []
        # The doubly-indexed label still aligns to itself.
        mapping = align_labels(old, new)
        assert mapping == {label: label for label in random_labels(old)}

    def test_duplicated_callsites_align_injectively(self):
        old, new = parse_program(DUP_OLD), parse_program(DUP_NEW)
        mapping = align_labels(old, new)
        # Both old gauss sites are consumed exactly once, despite being
        # textually identical, and the insertion is left unmapped.
        assert sorted(mapping.values()) == sorted(random_labels(old))
        assert len(set(mapping.values())) == len(mapping)
        assert not any(label.startswith("flip") for label in mapping)
        assert not [
            d
            for d in validate_label_map(old, new, mapping)
            if d.severity == "error"
        ]

    def test_indexed_family_growth_keeps_the_label_aligned(self):
        old = parse_program(GROW_OLD)
        new = parse_program(GROW_OLD.replace("[0 .. 3)", "[0 .. 4)"))
        mapping = align_labels(old, new)
        assert mapping == {label: label for label in random_labels(old)}
        assert check_edit(old, new) == []

    def test_indexed_family_shrinkage_keeps_the_label_aligned(self):
        old = parse_program(GROW_OLD)
        new = parse_program(GROW_OLD.replace("[0 .. 3)", "[0 .. 2)"))
        mapping = align_labels(old, new)
        assert mapping == {label: label for label in random_labels(old)}
        assert check_edit(old, new) == []

    def test_flip_to_gauss_rewrite_is_never_matched(self):
        # Supports are type-disjoint, so no alignment may relate the two
        # sites — neither the tree diff nor a forced label map.
        old = parse_program("x = flip(0.5);\nreturn x;")
        new = parse_program("x = gauss(0.0, 1.0);\nreturn x;")
        assert align_labels(old, new) == {}
        forced = {random_labels(new)[0]: random_labels(old)[0]}
        diagnostics = validate_label_map(old, new, forced)
        assert any(d.severity == "error" for d in diagnostics)


class TestDerivationCitation:
    """``repro lint --derive`` threads the derivation into edit findings."""

    def make_derivation(self):
        import numpy as np

        from repro import Model
        from repro.derive import derive_correspondence
        from repro.distributions import Normal

        def fn(t):
            return t.sample(Normal(0, 1), ("x",))

        return derive_correspondence(
            Model(fn, name="old"), Model(fn, name="new"),
            rng=np.random.default_rng(0),
        )

    def test_stale_skip_cites_the_derivation_report(self):
        derivation = self.make_derivation()
        diagnostics = check_edit(
            parse_program(OLD),
            parse_program(NEW_TAIL),
            visited=[False, False, False, True],
            derivation=derivation,
        )
        stale = [d for d in diagnostics if d.code == "edit-stale-skip"]
        assert len(stale) == 1
        assert "under derived correspondence" in stale[0].message
        assert derivation.report.summary() in stale[0].message

    def test_overpropagation_cites_the_derivation_report(self):
        derivation = self.make_derivation()
        diagnostics = check_edit(
            parse_program(OLD), parse_program(NEW_FRONT), derivation=derivation
        )
        overs = [d for d in diagnostics if d.code == "edit-overpropagation"]
        assert overs
        assert all("under derived correspondence" in d.message for d in overs)

    def test_without_derivation_no_citation_appears(self):
        diagnostics = check_edit(parse_program(OLD), parse_program(NEW_FRONT))
        assert not any("derived correspondence" in d.message for d in diagnostics)
