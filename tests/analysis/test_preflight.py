"""Tests for the inference pre-flight (InferenceConfig.validate)."""

import warnings

import numpy as np
import pytest

from repro.analysis import preflight_inference
from repro.core import (
    CorrespondenceTranslator,
    InferenceConfig,
    WeightedCollection,
    infer,
)
from repro.core.correspondence import Correspondence
from repro.core.model import Model
from repro.distributions import Flip, Normal
from repro.errors import ReproError, ValidationError


def _flip_fn(t):
    return t.sample(Flip(0.5), "a")


def _gauss_fn(t):
    return t.sample(Normal(0.0, 1.0), "a")


def _good_translator():
    return CorrespondenceTranslator(
        Model(_flip_fn, name="p"), Model(_flip_fn, name="q"),
        Correspondence.identity(["a"]),
    )


def _bad_translator():
    # flip <-> gauss at the same address: a support mismatch error.
    return CorrespondenceTranslator(
        Model(_flip_fn, name="p"), Model(_gauss_fn, name="q"),
        Correspondence.identity(["a"]),
    )


def _collection(model, n=4):
    rng = np.random.default_rng(0)
    return WeightedCollection([model.simulate(rng) for _ in range(n)], [0.0] * n)


class TestValidateField:
    def test_default_is_off(self):
        assert InferenceConfig().validate == "off"

    def test_unknown_mode_rejected_eagerly(self):
        with pytest.raises(ValueError, match="validate"):
            InferenceConfig(validate="loud")


class TestPreflightInference:
    def test_combines_config_and_translator_findings(self):
        diagnostics = preflight_inference(
            [_bad_translator()], InferenceConfig(workers=4)
        )
        assert {"config-workers-ignored", "corr-support-mismatch"} <= {
            d.code for d in diagnostics
        }

    def test_deduplicates_repeated_translators(self):
        translator = _bad_translator()
        once = preflight_inference([translator], InferenceConfig())
        thrice = preflight_inference([translator] * 3, InferenceConfig())
        assert len(once) == len(thrice)


class TestInferIntegration:
    def test_error_mode_raises_before_any_particle_work(self):
        translator = _bad_translator()
        collection = _collection(translator.source)
        with pytest.raises(ValidationError) as excinfo:
            infer(
                translator, collection, np.random.default_rng(0),
                config=InferenceConfig(validate="error"),
            )
        assert any(d.code == "corr-support-mismatch" for d in excinfo.value.diagnostics)
        # ValidationError is a ReproError, so the CLI maps it to EXIT_FAULT.
        assert isinstance(excinfo.value, ReproError)

    def test_warn_mode_warns_and_completes(self):
        translator = _bad_translator()
        collection = _collection(translator.source)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            step = infer(
                translator, collection, np.random.default_rng(0),
                config=InferenceConfig(validate="warn"),
            )
        assert len(step.collection) == len(collection)
        assert any("pre-flight" in str(w.message) for w in caught)

    def test_clean_translator_passes_error_mode(self):
        translator = _good_translator()
        collection = _collection(translator.source)
        step = infer(
            translator, collection, np.random.default_rng(0),
            config=InferenceConfig(validate="error"),
        )
        assert len(step.collection) == len(collection)

    def test_off_mode_never_imports_analysis(self, monkeypatch):
        import sys

        translator = _good_translator()
        collection = _collection(translator.source)
        for name in [m for m in sys.modules if m.startswith("repro.analysis")]:
            monkeypatch.delitem(sys.modules, name)
        infer(translator, collection, np.random.default_rng(0),
              config=InferenceConfig())
        assert not any(m.startswith("repro.analysis") for m in sys.modules)

    def test_translator_validate_method(self):
        assert _good_translator().validate() == []
        assert any(
            d.code == "corr-support-mismatch" for d in _bad_translator().validate()
        )
