"""Tests for the extended program checker (pass 4)."""

from repro.analysis import extended_check_program
from repro.lang.parser import parse_program


def check(source, **kwargs):
    return extended_check_program(parse_program(source), **kwargs)


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestLegacyRulesStillFire:
    def test_use_before_assign(self):
        diagnostics = check("return y;")
        assert "use-before-assign" in codes(diagnostics)

    def test_syntactic_param_range(self):
        diagnostics = check("x = flip(1.5); return x;")
        assert "param-range" in codes(diagnostics)


class TestUnusedVariables:
    def test_unused_assignment_is_info(self):
        diagnostics = check("c = 1; x = flip(0.5); return x;")
        unused = [d for d in diagnostics if d.code == "unused-variable"]
        assert len(unused) == 1
        assert unused[0].severity == "info"
        assert "'c'" in unused[0].message

    def test_parameters_are_exempt(self):
        program = parse_program("x = gauss(0.0, 1.0); return x;")
        diagnostics = extended_check_program(program, parameters=("sigma",))
        assert "unused-variable" not in codes(diagnostics)

    def test_loop_variables_are_exempt(self):
        source = "s = 0; for i in [0 .. 3) { s = s + 1; } return s;"
        assert "unused-variable" not in codes(check(source))

    def test_index_assigned_arrays_count_as_read(self):
        source = "a = array(3, 0); a[0] = 1; return 0;"
        assert "unused-variable" not in codes(check(source))


class TestObserveOnConstants:
    def test_impossible_flip_observation_is_error(self):
        diagnostics = check("observe(flip(1) == 0); return 1;")
        impossible = [d for d in diagnostics if d.code == "observe-impossible"]
        assert len(impossible) == 1
        assert impossible[0].severity == "error"

    def test_vacuous_flip_observation_is_warning(self):
        diagnostics = check("observe(flip(1) == 1); return 1;")
        vacuous = [d for d in diagnostics if d.code == "observe-vacuous"]
        assert len(vacuous) == 1
        assert vacuous[0].severity == "warning"

    def test_flip_observed_outside_support_is_error(self):
        diagnostics = check("observe(flip(0.5) == 2); return 1;")
        assert "observe-impossible" in codes(diagnostics)

    def test_uniform_observed_out_of_range_is_error(self):
        diagnostics = check("observe(uniform(0, 3) == 7); return 1;")
        assert "observe-impossible" in codes(diagnostics)

    def test_in_support_observation_is_clean(self):
        assert check("observe(flip(0.7) == 1); return 1;") == []


class TestConstantPropagation:
    def test_propagated_flip_probability_out_of_range(self):
        diagnostics = check("p = 3; x = flip(p / 2); return x;")
        ranges = [d for d in diagnostics if d.code == "param-range"]
        assert len(ranges) == 1
        assert ranges[0].severity == "error"
        assert "after constant propagation" in ranges[0].message

    def test_propagated_gauss_std(self):
        diagnostics = check("s = 0; x = gauss(0.0, s); return x;")
        assert "param-range" in codes(diagnostics)

    def test_branch_merge_keeps_agreeing_bindings_only(self):
        # p differs between branches -> unknown -> no finding.
        source = """
        a = flip(0.5);
        if a { p = 0.2; } else { p = 2.0; }
        x = flip(p);
        return x;
        """
        assert "param-range" not in codes(check(source))

    def test_branch_merge_catches_agreeing_bad_binding(self):
        source = """
        a = flip(0.5);
        if a { p = 2.0; } else { p = 2.0; }
        x = flip(p);
        return x;
        """
        assert "param-range" in codes(check(source))

    def test_loop_assigned_variables_are_invalidated(self):
        # p is rewritten inside the loop, so its value is unknown after.
        source = """
        p = 0.5;
        for i in [0 .. 3) { p = p / 2; }
        x = flip(p);
        return x;
        """
        assert "param-range" not in codes(check(source))

    def test_random_assignments_are_not_constants(self):
        assert "param-range" not in codes(
            check("p = flip(0.5); x = flip(p + 0.2); return x;")
        )


class TestBundledProgramsAreErrorFree:
    def test_all_bundled_programs(self):
        from repro.lang import programs as lang_programs

        for name in (
            "BURGLARY_ORIGINAL",
            "BURGLARY_REFINED",
            "FIGURE3",
            "FIGURE5_P",
            "FIGURE5_Q",
            "FIGURE6_GEOMETRIC",
            "FIGURE7",
        ):
            diagnostics = check(getattr(lang_programs, name))
            bad = [d for d in diagnostics if d.severity in ("warning", "error")]
            assert not bad, f"{name}: {[str(d) for d in bad]}"

    def test_gmm_with_parameters(self):
        from repro.lang.programs import gmm_source

        diagnostics = extended_check_program(
            parse_program(gmm_source(3)),
            parameters=("sigma", "n"),
            array_parameters=("ys",),
        )
        assert not any(d.severity in ("warning", "error") for d in diagnostics)
