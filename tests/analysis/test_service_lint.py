"""Tests for the service-config lint pass."""

from repro.analysis import lint_service_config
from repro.service import ServiceConfig


def codes(diagnostics):
    return {d.code for d in diagnostics}


def _durable(**kwargs):
    kwargs.setdefault("store_dir", "store")
    return ServiceConfig(**kwargs)


class TestServiceLint:
    def test_durable_config_is_clean(self):
        assert lint_service_config(_durable()) == []

    def test_deadline_below_observed_latency_is_error(self):
        diagnostics = lint_service_config(
            _durable(default_deadline_s=0.2, expected_step_latency_s=0.5)
        )
        assert codes(diagnostics) == {"service-deadline-too-short"}
        (finding,) = diagnostics
        assert finding.severity == "error"
        assert "median step latency" in finding.message

    def test_deadline_above_observed_latency_is_clean(self):
        assert (
            lint_service_config(
                _durable(default_deadline_s=5.0, expected_step_latency_s=0.5)
            )
            == []
        )

    def test_zero_session_quota_warns(self):
        diagnostics = lint_service_config(_durable(max_sessions_per_tenant=0))
        assert codes(diagnostics) == {"service-zero-quota"}
        assert "create" in diagnostics[0].message

    def test_zero_inflight_quota_warns(self):
        diagnostics = lint_service_config(_durable(max_inflight_per_tenant=0))
        assert codes(diagnostics) == {"service-zero-quota"}
        assert "mutating" in diagnostics[0].message

    def test_both_zero_quotas_give_two_findings(self):
        diagnostics = lint_service_config(
            _durable(max_sessions_per_tenant=0, max_inflight_per_tenant=0)
        )
        assert len(diagnostics) == 2

    def test_unbounded_queue_warns(self):
        diagnostics = lint_service_config(_durable(queue_depth=0))
        assert codes(diagnostics) == {"service-unbounded-queue"}
        assert diagnostics[0].severity == "warning"

    def test_shed_noop_warns(self):
        diagnostics = lint_service_config(
            _durable(default_priority=2, shed_protect_priority=2)
        )
        assert codes(diagnostics) == {"service-shed-noop"}

    def test_unbounded_queue_suppresses_shed_rule(self):
        # With no bound there is no occupancy, so only the queue finding.
        diagnostics = lint_service_config(
            _durable(queue_depth=0, default_priority=2, shed_protect_priority=2)
        )
        assert codes(diagnostics) == {"service-unbounded-queue"}

    def test_in_memory_service_is_info(self):
        diagnostics = lint_service_config(ServiceConfig())
        assert codes(diagnostics) == {"service-no-durability"}
        assert diagnostics[0].severity == "info"

    def test_single_checkpoint_warns(self):
        diagnostics = lint_service_config(_durable(checkpoint_keep=1))
        assert codes(diagnostics) == {"service-checkpoint-keep"}

    def test_pass_name_tags_every_finding(self):
        diagnostics = lint_service_config(
            _durable(queue_depth=0, checkpoint_keep=1)
        )
        assert {d.pass_name for d in diagnostics} == {"service-config"}


class TestScaleOutLint:
    def test_shards_exceeding_cpus_warns(self, monkeypatch):
        import repro.analysis.config_lint as config_lint

        monkeypatch.setattr(config_lint.os, "cpu_count", lambda: 2)
        diagnostics = lint_service_config(_durable(shard_processes=3))
        assert codes(diagnostics) == {"service-shards-exceed-cpus"}
        (finding,) = diagnostics
        assert finding.severity == "warning"
        assert "time-slice" in finding.message

    def test_shards_within_cpus_is_clean(self, monkeypatch):
        import repro.analysis.config_lint as config_lint

        monkeypatch.setattr(config_lint.os, "cpu_count", lambda: 4)
        assert lint_service_config(_durable(shard_processes=4)) == []

    def test_unknown_cpu_count_assumes_one_core(self, monkeypatch):
        import repro.analysis.config_lint as config_lint

        monkeypatch.setattr(config_lint.os, "cpu_count", lambda: None)
        diagnostics = lint_service_config(_durable(shard_processes=2))
        assert codes(diagnostics) == {"service-shards-exceed-cpus"}

    def test_replication_without_store_is_error(self):
        diagnostics = lint_service_config(
            ServiceConfig(shard_processes=1, replicate=True)
        )
        by_code = {d.code: d for d in diagnostics}
        finding = by_code["service-replication-without-checkpoint-dir"]
        assert finding.severity == "error"
        assert "nothing to replicate" in finding.message
        # The in-memory info finding still fires alongside it.
        assert "service-no-durability" in by_code

    def test_replication_with_store_is_clean(self):
        assert (
            lint_service_config(_durable(shard_processes=1, replicate=True))
            == []
        )

    def test_columnar_collection_is_info(self):
        diagnostics = lint_service_config(_durable(collection="columnar"))
        assert codes(diagnostics) == {"service-columnar-unsupported-model"}
        (finding,) = diagnostics
        assert finding.severity == "info"
        assert "byte-identical" in finding.message

    def test_misconfigured_fleet_reports_everything(self, monkeypatch):
        import repro.analysis.config_lint as config_lint

        monkeypatch.setattr(config_lint.os, "cpu_count", lambda: 1)
        diagnostics = lint_service_config(
            ServiceConfig(
                shard_processes=8, replicate=True, collection="columnar"
            )
        )
        assert codes(diagnostics) == {
            "service-no-durability",
            "service-shards-exceed-cpus",
            "service-replication-without-checkpoint-dir",
            "service-columnar-unsupported-model",
        }
        assert {d.pass_name for d in diagnostics} == {"service-config"}


class TestBundledTarget:
    def test_bundled_sweep_includes_service_config(self):
        from repro.analysis.targets import bundled_targets, lint_bundled

        assert "config:service-durable" in bundled_targets()
        results = lint_bundled()
        assert results["config:service-durable"] == []
