"""The static-profile analysis pass (pass 5) and its agreement gate."""

import json

import numpy as np
import pytest

from repro.analysis import bundled_targets
from repro.analysis.static_profile import (
    bundled_static_profiles,
    columnar_plan_lint,
    static_profile_model,
)
from repro.core import Correspondence, CorrespondenceTranslator, Model
from repro.distributions import Flip, Normal


def _flip_pair_fn(h):
    a = h.sample(Flip(0.4), "a")
    h.sample(Flip(0.6), "b")
    return a


def _gauss_fn(h):
    return h.sample(Normal(0.0, 1.0), "x")


def codes(diagnostics):
    return {d.code for d in diagnostics}


def severities(diagnostics):
    return {d.severity for d in diagnostics}


class TestStaticProfilePass:
    def test_complete_model_reports_info_only(self):
        diagnostics = static_profile_model(Model(_flip_pair_fn, name="p"))
        assert "static-profile-complete" in codes(diagnostics)
        assert severities(diagnostics) == {"info"}

    def test_incomplete_model_reports_fallback(self):
        def unbounded(h):
            x = h.sample(Normal(0.0, 1.0), "x")
            n = 0
            while x > 0:
                x = h.sample(Normal(0.0, 1.0), ("x", n))
                n = n + 1
            return n

        diagnostics = static_profile_model(Model(unbounded, name="g"))
        assert "static-profile-incomplete" in codes(diagnostics)
        assert severities(diagnostics) == {"info"}

    def test_control_flow_verdict_is_reported(self):
        def branchy(h):
            a = h.sample(Flip(0.5), "a")
            if a:
                h.sample(Normal(0.0, 1.0), "b")
            return a

        diagnostics = static_profile_model(Model(branchy, name="br"))
        assert "static-profile-control-flow" in codes(diagnostics)
        assert severities(diagnostics) == {"info"}


class TestAgreementGate:
    """Seeded disagreements: doctor the static profile and check that the
    gate catches each direction of error."""

    def _doctored(self, monkeypatch, mutate):
        import repro.analysis.absint as absint

        real = absint.analyze_model

        def doctored(model):
            profile = real(model)
            mutate(profile)
            return profile

        monkeypatch.setattr(absint, "analyze_model", doctored)

    def test_missing_address_is_an_error(self, monkeypatch):
        self._doctored(
            monkeypatch, lambda profile: profile.addresses.pop(("b",))
        )
        diagnostics = static_profile_model(Model(_flip_pair_fn, name="p"))
        errors = [d for d in diagnostics if d.severity == "error"]
        assert errors
        assert all(d.code == "static-profile-disagreement" for d in errors)
        assert any("misses address" in d.message for d in errors)

    def test_ghost_address_against_enumeration_is_an_error(self, monkeypatch):
        from repro.analysis.absint.profile import AddressInfo

        def add_ghost(profile):
            profile.addresses[("ghost",)] = AddressInfo(
                address=("ghost",),
                dist_classes=("Flip",),
                supports=[Flip(0.5).support()],
            )

        self._doctored(monkeypatch, add_ghost)
        # The flip pair enumerates exhaustively, so the runtime profile is
        # complete and the ghost is provably wrong.
        diagnostics = static_profile_model(Model(_flip_pair_fn, name="p"))
        errors = [d for d in diagnostics if d.severity == "error"]
        assert any("never produced" in d.message for d in errors)

    def test_ghost_address_against_sampling_is_info(self, monkeypatch):
        from repro.analysis.absint.profile import AddressInfo

        def add_ghost(profile):
            profile.addresses[("ghost",)] = AddressInfo(
                address=("ghost",),
                dist_classes=("Normal",),
                supports=[Normal(0.0, 1.0).support()],
            )

        self._doctored(monkeypatch, add_ghost)
        # A continuous model cannot be enumerated: the runtime profile is
        # a sampled under-approximation, so a static-only address is a
        # sound over-approximation, not a proven bug.
        diagnostics = static_profile_model(Model(_gauss_fn, name="g"))
        assert "static-profile-overapprox" in codes(diagnostics)
        assert not any(d.severity == "error" for d in diagnostics)

    def test_support_mismatch_is_an_error(self, monkeypatch):
        def swap_support(profile):
            profile.addresses[("a",)].supports = [Normal(0.0, 1.0).support()]

        self._doctored(monkeypatch, swap_support)
        diagnostics = static_profile_model(Model(_flip_pair_fn, name="p"))
        errors = [d for d in diagnostics if d.severity == "error"]
        assert any("support disagreement" in d.message for d in errors)

    def test_check_agreement_off_skips_the_runtime_profiler(self):
        diagnostics = static_profile_model(
            Model(_flip_pair_fn, name="p"), check_agreement=False
        )
        assert codes(diagnostics) == {"static-profile-complete"}


class TestColumnarPlanLint:
    def test_eligible_translator_reports_columnar_eligible(self):
        def src(h):
            x = h.sample(Normal(0.0, 1.0), "x")
            h.observe(Normal(x, 0.5), 0.3, "y")
            return x

        translator = CorrespondenceTranslator(
            Model(src), Model(src), Correspondence.identity(["x"])
        )
        diagnostics = columnar_plan_lint(translator)
        assert "columnar-eligible" in codes(diagnostics)
        assert severities(diagnostics) <= {"info"}

    def test_findings_use_stable_lint_codes(self):
        from repro.experiments.burglary import (
            burglary_correspondence,
            burglary_original,
            burglary_refined,
        )

        translator = CorrespondenceTranslator(
            burglary_original(), burglary_refined(), burglary_correspondence()
        )
        diagnostics = columnar_plan_lint(translator)
        finding_codes = codes(diagnostics) - {"columnar-eligible"}
        assert finding_codes
        assert all(c.startswith("columnar-ineligible-") for c in finding_codes)
        assert severities(diagnostics) == {"info"}


class TestBundledArtifacts:
    def test_bundled_static_profiles_shape(self):
        payload = bundled_static_profiles()
        assert set(payload) == {"burglary", "gmm", "hmm", "regression"}
        for name, entry in payload.items():
            assert set(entry) == {"source", "target", "columnar_plan"}
            assert entry["source"]["complete"], name
            assert entry["target"]["complete"], name
            assert "predicted_codes" in entry["columnar_plan"]
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_registry_exposes_static_profile_targets(self):
        registry = bundled_targets()
        expected = {
            "static-profile:burglary",
            "static-profile:gmm",
            "static-profile:hmm",
            "static-profile:regression",
            "static-profile:figure3",
            "static-profile:figure5_p",
            "static-profile:figure5_q",
            "static-profile:figure6_geometric",
            "static-profile:figure7",
        }
        assert expected <= set(registry)

    @pytest.mark.parametrize(
        "target",
        [
            "static-profile:burglary",
            "static-profile:hmm",
            "static-profile:figure6_geometric",
        ],
    )
    def test_registry_targets_are_strict_clean(self, target):
        diagnostics = bundled_targets()[target]()
        assert not any(d.severity in ("warning", "error") for d in diagnostics)
