"""Shared fixtures: the paper's running example programs.

``burglary_original`` / ``burglary_refined`` are the two programs of
Figure 1; ``figure5_p`` / ``figure5_q`` are the programs of Example 3
(Figure 5).
"""

import numpy as np
import pytest

from repro import Model
from repro.distributions import Flip, UniformDiscrete


def burglary_original_fn(t):
    burglary = t.sample(Flip(0.02), "burglary")
    p_alarm = 0.9 if burglary else 0.01
    alarm = t.sample(Flip(p_alarm), "alarm")
    p_mary_wakes = 0.8 if alarm else 0.05
    t.observe(Flip(p_mary_wakes), 1, "mary_wakes")
    return burglary


def burglary_refined_fn(t):
    burglary = t.sample(Flip(0.02), "burglary")
    earthquake = t.sample(Flip(0.005), "earthquake")
    if earthquake:
        p_alarm = 0.95
    else:
        p_alarm = 0.9 if burglary else 0.01
    alarm = t.sample(Flip(p_alarm), "alarm")
    if alarm:
        p_mary_wakes = 0.9 if earthquake else 0.8
    else:
        p_mary_wakes = 0.05
    t.observe(Flip(p_mary_wakes), 1, "mary_wakes")
    return burglary


def figure5_p_fn(t):
    a = t.sample(Flip(1 / 2), "a")
    if a == 0:
        b = t.sample(UniformDiscrete(0, 5), "b")
    else:
        b = t.sample(Flip(1 / 2), "b")
    c = t.sample(Flip(1 / 2), "c")
    return (a, b, c)


def figure5_q_fn(t):
    a = t.sample(Flip(1 / 3), "a")
    if a == 0:
        b = t.sample(UniformDiscrete(0, 5), "b")
    else:
        b = t.sample(Flip(1 / 2), "b")
    c = t.sample(UniformDiscrete(1, 6), "c")
    d = t.sample(UniformDiscrete(-5, -2), "d")
    return (a, b, c, d)


@pytest.fixture
def burglary_original():
    return Model(burglary_original_fn)


@pytest.fixture
def burglary_refined():
    return Model(burglary_refined_fn)


@pytest.fixture
def figure5_p():
    return Model(figure5_p_fn)


@pytest.fixture
def figure5_q():
    return Model(figure5_q_fn)


@pytest.fixture
def rng():
    return np.random.default_rng(2018)
