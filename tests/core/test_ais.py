"""Tests for annealed importance sampling via trace translation."""

import math

import numpy as np
import pytest

from repro import Model, exact_choice_marginal, log_normalizer
from repro.core.annealing import (
    annealed_importance_sampling,
    interpolated_schedule,
)
from repro.core.mcmc import random_walk_mh_site, repeat
from repro.distributions import Flip, Normal


@pytest.fixture
def rng():
    return np.random.default_rng(2001)


def discrete_path(t: float) -> Model:
    """Temper the observation strength of a flip model."""

    def fn(handler):
        x = handler.sample(Flip(0.5), "x")
        p_obs = 0.5 + 0.45 * t if x else 0.5 - 0.45 * t
        handler.observe(Flip(p_obs), 1, "o")
        return x

    return Model(fn, name=f"tempered({t:.2f})")


class TestInterpolatedSchedule:
    def test_endpoints(self):
        models = interpolated_schedule(discrete_path, 5)
        assert len(models) == 5
        assert models[0].name == "tempered(0.00)"
        assert models[-1].name == "tempered(1.00)"

    def test_too_few_steps(self):
        with pytest.raises(ValueError):
            interpolated_schedule(discrete_path, 1)


class TestDiscreteAIS:
    def test_posterior_estimate(self, rng):
        collection, _log_ratio = annealed_importance_sampling(
            discrete_path, num_steps=6, num_particles=4000, rng=rng
        )
        truth = exact_choice_marginal(discrete_path(1.0), "x")[1]
        estimate = collection.estimate_probability(lambda u: u["x"] == 1)
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_normalizer_ratio(self, rng):
        estimates = [
            annealed_importance_sampling(
                discrete_path, num_steps=6, num_particles=500, rng=rng
            )[1]
            for _ in range(20)
        ]
        truth = log_normalizer(discrete_path(1.0)) - log_normalizer(discrete_path(0.0))
        assert np.mean(estimates) == pytest.approx(truth, abs=0.02)


class TestContinuousAIS:
    def test_sharp_gaussian_posterior(self, rng):
        """Temper the likelihood width from broad to sharp; with
        rejuvenation the particles track the narrowing posterior."""
        observation = 2.0

        def make_model(t: float) -> Model:
            std = 10.0 * (1 - t) + 0.5 * t

            def fn(handler):
                mu = handler.sample(Normal(0.0, 3.0), "mu")
                handler.observe(Normal(mu, std), observation, "y")
                return mu

            return Model(fn, name=f"gauss({t:.2f})")

        def kernel_for(model):
            return repeat(random_walk_mh_site(model, "mu", 0.5), 5)

        collection, log_ratio = annealed_importance_sampling(
            make_model,
            num_steps=12,
            num_particles=800,
            rng=rng,
            mcmc_kernel_for=kernel_for,
        )
        # Conjugate posterior at t = 1: precision = 1/9 + 1/0.25.
        precision = 1 / 9 + 1 / 0.25
        posterior_mean = (observation / 0.25) / precision
        estimate = collection.estimate(lambda u: u["mu"])
        assert estimate == pytest.approx(posterior_mean, abs=0.08)

        # log(Z_1 / Z_0) has a closed form: both are Gaussian evidences.
        def log_evidence(std):
            return Normal(0.0, math.sqrt(9.0 + std**2)).log_prob(observation)

        truth = log_evidence(0.5) - log_evidence(10.0)
        assert log_ratio == pytest.approx(truth, abs=0.25)
