"""Tests for sequential-observation SMC (particle filtering) built from
trace translators with the full identity correspondence."""

import math

import numpy as np
import pytest

from repro import Model
from repro.core.annealing import (
    full_identity_correspondence,
    observation_schedule,
    sequential_observations,
)
from repro.distributions import Flip, LogCategorical, Normal
from repro.hmm import FirstOrderParams, forward_filter, log_likelihood


@pytest.fixture
def rng():
    return np.random.default_rng(77)


@pytest.fixture
def hmm_params():
    return FirstOrderParams(
        log_initial=np.log([0.6, 0.4]),
        log_transition=np.log([[0.7, 0.3], [0.2, 0.8]]),
        log_observation=np.log([[0.9, 0.1], [0.3, 0.7]]),
    )


def hmm_fn(t, params, num_steps):
    states = []
    if num_steps >= 1:
        states.append(t.sample(LogCategorical(params.log_initial), ("hidden", 0)))
    for i in range(1, num_steps):
        states.append(
            t.sample(LogCategorical(params.log_transition[states[i - 1]]), ("hidden", i))
        )
    for i in range(num_steps):
        t.sample(LogCategorical(params.log_observation[states[i]]), ("y", i))
    return states


class TestObservationSchedule:
    def test_growing_structure(self, hmm_params):
        base = Model(hmm_fn)
        observations = [1, 0, 1]
        models = observation_schedule(
            base,
            batches=[{("y", i): observations[i]} for i in range(3)],
            args_per_step=[(hmm_params, i + 1) for i in range(3)],
        )
        assert len(models) == 3
        # The k-th model has k+1 observed addresses and k+1 latents.
        for k, model in enumerate(models):
            assert len(model.observations) == k + 1

    def test_batch_count_mismatch(self, hmm_params):
        base = Model(hmm_fn)
        with pytest.raises(ValueError):
            observation_schedule(base, batches=[{}, {}], args_per_step=[(hmm_params, 1)])


class TestParticleFilter:
    def test_filtering_marginals_match_exact(self, hmm_params, rng):
        """Bootstrap particle filtering via trace translation matches the
        exact forward-filtering marginals of the HMM."""
        observations = [1, 0, 1, 1, 0]
        base = Model(hmm_fn)
        models = observation_schedule(
            base,
            batches=[{("y", i): observations[i]} for i in range(len(observations))],
            args_per_step=[(hmm_params, i + 1) for i in range(len(observations))],
        )
        collection, steps = sequential_observations(models, 6000, rng)
        assert len(steps) == len(observations) - 1

        alphas, _total = forward_filter(hmm_params, observations)
        exact_filter = np.exp(alphas[-1] - np.logaddexp.reduce(alphas[-1]))
        last = len(observations) - 1
        estimate = collection.estimate_probability(
            lambda u: u[("hidden", last)] == 1
        )
        assert estimate == pytest.approx(exact_filter[1], abs=0.03)

    def test_log_evidence_telescopes(self, hmm_params, rng):
        """Summing per-step log mean weight increments plus the initial
        weights estimates the total log likelihood (Lemma 6 chained)."""
        observations = [1, 0, 1]
        base = Model(hmm_fn)
        models = observation_schedule(
            base,
            batches=[{("y", i): observations[i]} for i in range(len(observations))],
            args_per_step=[(hmm_params, i + 1) for i in range(len(observations))],
        )
        estimates = []
        for _ in range(20):
            traces, log_weights = [], []
            for _ in range(400):
                trace, log_weight = models[0].generate(rng)
                traces.append(trace)
                log_weights.append(log_weight)
            from repro import WeightedCollection, infer

            collection = WeightedCollection(traces, log_weights)
            log_z = collection.log_mean_weight()
            correspondence = full_identity_correspondence()
            from repro import CorrespondenceTranslator

            for i in range(len(models) - 1):
                translator = CorrespondenceTranslator(
                    models[i], models[i + 1], correspondence
                )
                step = infer(translator, collection, rng, resample="always")
                log_z += step.stats.log_mean_weight_increment
                collection = step.collection
            estimates.append(log_z)
        truth = log_likelihood(hmm_params, observations)
        assert np.mean(estimates) == pytest.approx(truth, abs=0.05)

    def test_fixed_structure_regression(self, rng):
        """Sequentially observing regression data reproduces the
        conjugate posterior."""

        def linreg_fn(t, xs):
            slope = t.sample(Normal(0.0, 5.0), "slope")
            for i, x in enumerate(xs):
                t.sample(Normal(slope * x, 1.0), ("y", i))
            return slope

        xs = [0.5, -1.0, 2.0, 1.5, -0.5, 1.0]
        true_slope = 1.2
        data_rng = np.random.default_rng(3)
        ys = [true_slope * x + data_rng.normal(0, 1.0) for x in xs]

        base = Model(linreg_fn, args=(tuple(xs),))
        models = observation_schedule(
            base, batches=[{("y", i): ys[i]} for i in range(len(xs))]
        )
        collection, _steps = sequential_observations(models, 8000, rng)

        # Conjugate posterior: precision = 1/25 + sum x^2, mean = sum(xy)/precision.
        precision = 1 / 25 + sum(x * x for x in xs)
        posterior_mean = sum(x * y for x, y in zip(xs, ys)) / precision
        estimate = collection.estimate(lambda u: u["slope"])
        assert estimate == pytest.approx(posterior_mean, abs=0.05)

    def test_single_model_schedule(self, hmm_params, rng):
        base = Model(hmm_fn)
        models = observation_schedule(
            base, batches=[{("y", 0): 1}], args_per_step=[(hmm_params, 1)]
        )
        collection, steps = sequential_observations(models, 100, rng)
        assert steps == []
        assert len(collection) == 100

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            sequential_observations([], 10, rng)
        base = Model(hmm_fn)
        with pytest.raises(ValueError):
            sequential_observations([base], 0, rng)
