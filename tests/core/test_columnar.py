"""Unit tests for the columnar particle collection and its SMC step.

Covers the ColumnarCollection data model (conversion, resampling,
estimation, diagnostics parity with WeightedCollection), the spill
triggers that route unsupported steps back to the object path, and the
store codec round-trip (schema 2, ``$ccoll``).
"""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    ColumnarCollection,
    ColumnarSpill,
    Correspondence,
    CorrespondenceTranslator,
    InferenceConfig,
    Model,
    Trace,
    WeightedCollection,
    infer,
    single_site_mh,
)
from repro.core.columnar import _merge_dists
from repro.distributions import Flip, Gamma, Normal, UniformDiscrete
from repro.errors import ReproError
from repro.store.codec import SCHEMA_VERSION, dumps, loads


def _regression_model(std=1.0, with_flip=False):
    def fn(h):
        slope = h.sample(Normal(0.0, 2.0), "slope")
        noise = h.sample(Gamma(2.0, 1.0), "noise")
        if with_flip:
            h.sample(Flip(0.3), "outlier")
        for i in range(5):
            h.observe(Normal(slope * i, std * noise), 0.6 * i, f"y{i}")
        return slope

    return Model(fn)


def _population(model, n=20, seed=0):
    rng = np.random.default_rng(seed)
    return WeightedCollection(
        [model.generate(rng)[0] for _ in range(n)],
        list(np.linspace(-0.5, 0.5, n)),
    )


class TestConversion:
    def test_round_trip_is_lossless_for_untranslated_collections(self):
        coll = _population(_regression_model(), n=8)
        back = ColumnarCollection.from_weighted(coll).to_weighted()
        assert back.items == coll.items  # same objects: source backref kept
        assert back.log_weights == coll.log_weights

    def test_synthesized_traces_match_bitwise(self):
        coll = _population(_regression_model(with_flip=True), n=8)
        columnar = ColumnarCollection.from_weighted(coll)
        columnar._source_items = None  # force synthesis from columns
        back = columnar.to_weighted()
        for original, rebuilt in zip(coll.items, back.items):
            assert original.addresses() == rebuilt.addresses()
            for address in original.addresses():
                a, b = original.get_record(address), rebuilt.get_record(address)
                assert a.value == b.value and type(a.value) is type(b.value)
                assert a.log_prob == b.log_prob
                assert a.dist == b.dist
            assert original.log_prob == rebuilt.log_prob

    def test_total_log_probs_bitwise_equal_trace_totals(self):
        coll = _population(_regression_model(), n=16)
        columnar = ColumnarCollection.from_weighted(coll)
        for i, trace in enumerate(coll.items):
            assert float(columnar.total_log_probs[i]).hex() == trace.log_prob.hex()

    def test_value_kinds_restored(self):
        coll = _population(_regression_model(with_flip=True), n=6)
        columnar = ColumnarCollection.from_weighted(coll)
        assert columnar.value_kind("outlier") == "int"
        assert columnar.value_kind("slope") == "float"
        rebuilt = columnar.resample(np.random.default_rng(0)).to_weighted()
        assert isinstance(rebuilt.items[0]["outlier"], int)
        assert isinstance(rebuilt.items[0]["slope"], float)


class TestDiagnosticsParity:
    def test_matches_weighted_collection(self):
        coll = _population(_regression_model(), n=12)
        columnar = ColumnarCollection.from_weighted(coll)
        assert columnar.effective_sample_size() == coll.effective_sample_size()
        assert columnar.log_mean_weight() == coll.log_mean_weight()
        assert np.array_equal(columnar.normalized_weights(), coll.normalized_weights())
        phi = lambda item: item["slope"] ** 2
        assert columnar.estimate(phi) == coll.estimate(phi)
        assert columnar.estimate_probability(
            lambda item: item["slope"] > 0
        ) == coll.estimate_probability(lambda t: t["slope"] > 0)

    def test_particle_view_exposes_values_and_return(self):
        coll = _population(_regression_model(), n=4)
        columnar = ColumnarCollection.from_weighted(coll)
        view = columnar.particle(2)
        assert "slope" in view and "nonexistent" not in view
        assert view["slope"] == coll.items[2]["slope"]
        assert view.return_value == coll.items[2].return_value


class TestResample:
    def test_matches_object_resample_indices(self):
        coll = _population(_regression_model(), n=30)
        columnar = ColumnarCollection.from_weighted(coll)
        for scheme in ("multinomial", "systematic", "stratified", "residual"):
            obj = coll.resample(np.random.default_rng(5), scheme=scheme)
            col = columnar.resample(np.random.default_rng(5), scheme=scheme)
            assert [t["slope"] for t in obj.items] == col.value_column("slope").tolist()
            assert (col.log_weights == 0.0).all()

    def test_unknown_scheme_rejected(self):
        columnar = ColumnarCollection.from_weighted(_population(_regression_model()))
        with pytest.raises(ValueError, match="unknown resampling scheme"):
            columnar.resample(np.random.default_rng(0), scheme="bogus")


class TestSpillTriggers:
    def test_heterogeneous_addresses_spill(self):
        m1 = _regression_model()
        m2 = _regression_model(with_flip=True)
        rng = np.random.default_rng(0)
        mixed = WeightedCollection(
            [m1.generate(rng)[0], m2.generate(rng)[0]], [0.0, 0.0]
        )
        with pytest.raises(ColumnarSpill):
            ColumnarCollection.from_weighted(mixed)

    def test_non_numeric_values_spill(self):
        def fn(h):
            from repro.distributions import Delta

            return h.sample(Delta("text"), "label")

        coll = _population(Model(fn), n=3)
        with pytest.raises(ColumnarSpill):
            ColumnarCollection.from_weighted(coll)

    def test_unmergeable_dists_spill(self):
        with pytest.raises(ColumnarSpill):
            _merge_dists([Normal(0.0, 1.0), Flip(0.5)])

    def test_varying_numeric_params_merge(self):
        merged = _merge_dists([Normal(0.0, 1.0), Normal(1.0, 1.0)])
        assert isinstance(merged.mean, np.ndarray)
        assert merged.std == 1.0

    def test_spill_is_not_a_repro_error(self):
        # Fault policies catch ReproError subclasses; a spill must never
        # be containable as a model fault.
        assert not issubclass(ColumnarSpill, ReproError)


class TestStepDispatch:
    def _translator(self):
        return CorrespondenceTranslator(
            _regression_model(1.0),
            _regression_model(0.8),
            Correspondence.identity(["slope", "noise"]),
        )

    def test_columnar_step_reports_mode(self):
        step = infer(
            self._translator(),
            _population(_regression_model(), n=16),
            np.random.default_rng(1),
            config=InferenceConfig(collection="columnar"),
        )
        assert step.stats.collection_mode == "columnar"
        assert isinstance(step.collection, ColumnarCollection)

    def test_object_step_reports_mode(self):
        step = infer(
            self._translator(),
            _population(_regression_model(), n=16),
            np.random.default_rng(1),
            config=InferenceConfig(),
        )
        assert step.stats.collection_mode == "object"
        assert isinstance(step.collection, WeightedCollection)

    def test_mcmc_kernel_spills_to_object(self):
        q = _regression_model(0.8)
        step = infer(
            self._translator(),
            _population(_regression_model(), n=8),
            np.random.default_rng(1),
            mcmc_kernel=single_site_mh(q),
            config=InferenceConfig(collection="columnar"),
        )
        assert step.stats.collection_mode == "object"

    def test_containing_fault_policy_spills_to_object(self):
        step = infer(
            self._translator(),
            _population(_regression_model(), n=8),
            np.random.default_rng(1),
            config=InferenceConfig(collection="columnar", fault_policy="drop"),
        )
        assert step.stats.collection_mode == "object"

    def test_branching_model_spills_and_matches_object(self):
        def fn(h):
            x = h.sample(Normal(0.0, 1.0), "x")
            mean = 1.0 if x > 0 else -1.0
            h.observe(Normal(mean, 1.0), 0.5, "y")
            return x

        model = Model(fn)
        translator = CorrespondenceTranslator(
            model, model, Correspondence.identity(["x"])
        )
        coll = _population(model, n=12)
        object_step = infer(
            translator, coll.copy(), np.random.default_rng(2),
            config=InferenceConfig(),
        )
        columnar_step = infer(
            translator, coll.copy(), np.random.default_rng(2),
            config=InferenceConfig(collection="columnar"),
        )
        assert columnar_step.stats.collection_mode == "object"
        assert np.array_equal(
            np.asarray(object_step.collection.log_weights),
            np.asarray(columnar_step.collection.log_weights),
        )

    def test_object_path_accepts_columnar_input(self):
        columnar = ColumnarCollection.from_weighted(
            _population(_regression_model(), n=8)
        )
        step = infer(
            self._translator(), columnar, np.random.default_rng(3),
            config=InferenceConfig(),
        )
        assert step.stats.collection_mode == "object"
        assert isinstance(step.collection, WeightedCollection)


class TestConfigSurface:
    def test_collection_is_keyword_only(self):
        from repro.observability import NULL_HOOKS, NULL_METRICS, NULL_TRACER

        positional_fields = [
            f for f in dataclasses.fields(InferenceConfig) if not f.kw_only
        ]
        values = [
            "never", 0.5, "multinomial", True, "fail_fast", None, None, None,
            NULL_TRACER, NULL_METRICS, NULL_HOOKS, None, 1, "off",
        ]
        assert len(values) == len(positional_fields)
        InferenceConfig(*values)  # all positional fields are fine
        with pytest.raises(TypeError):
            InferenceConfig(*values, "columnar")  # collection is kw-only

    def test_invalid_collection_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown collection mode"):
            InferenceConfig(collection="simd")

    def test_modes_listed(self):
        assert InferenceConfig.COLLECTION_MODES == ("object", "columnar")


class TestCodecRoundTrip:
    def test_schema_version_bumped_for_ccoll(self):
        assert SCHEMA_VERSION >= 2

    @pytest.mark.parametrize("fmt", ["json", "binary"])
    def test_round_trip(self, fmt):
        coll = _population(_regression_model(with_flip=True), n=10)
        columnar = ColumnarCollection.from_weighted(coll)
        restored = loads(dumps(columnar, fmt))
        assert isinstance(restored, ColumnarCollection)
        assert np.array_equal(restored.log_weights, columnar.log_weights)
        assert restored.addresses() == columnar.addresses()
        for address in columnar.addresses():
            assert np.array_equal(
                restored.value_column(address), columnar.value_column(address)
            )
            assert np.array_equal(
                restored.log_prob_column(address),
                columnar.log_prob_column(address),
            )
            assert restored.dist_template(address) == columnar.dist_template(address)
            assert restored.value_kind(address) == columnar.value_kind(address)
        # Synthesized object traces from the decoded collection carry the
        # same totals as the originals, bit for bit.
        for original, rebuilt in zip(coll.items, restored.to_weighted().items):
            assert original.log_prob.hex() == rebuilt.log_prob.hex()

    def test_translated_collection_round_trips(self):
        translator = CorrespondenceTranslator(
            _regression_model(1.0),
            _regression_model(0.8),
            Correspondence.identity(["slope", "noise"]),
        )
        step = infer(
            translator,
            _population(_regression_model(), n=8),
            np.random.default_rng(4),
            config=InferenceConfig(collection="columnar"),
        )
        restored = loads(dumps(step.collection))
        assert np.array_equal(restored.log_weights, step.collection.log_weights)
