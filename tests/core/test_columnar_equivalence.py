"""Columnar-vs-object equivalence suite (CI-gated).

Two tiers, matching the columnar runtime's contract:

* **Bitwise** — for parameter-only edits (every address reused) the
  columnar step must reproduce the object step byte for byte: particle
  values, per-record log probs, log weights, the evidence increment, the
  ESS, resampling indices, and posterior estimates.  Checked across the
  inline loop and every executor backend at multiple worker counts, with
  resampling forced on.
* **Statistical** — for structure-changing edits the columnar path draws
  fresh choices in a different RNG order (per-address instead of
  per-particle), so the two runs are equal in distribution but not
  bitwise.  Checked with fixed-seed moment comparisons and a
  two-sample Kolmogorov-Smirnov statistic on the resampled posterior.
"""

import math

import numpy as np
import pytest

from repro.core import (
    Correspondence,
    CorrespondenceTranslator,
    InferenceConfig,
    Model,
    WeightedCollection,
    infer,
    infer_sequence,
)
from repro.distributions import Flip, Gamma, Normal, TwoNormals
from repro.regression.programs import (
    NoOutlierModelParams,
    OutlierModelParams,
    coefficient_correspondence,
    no_outlier_model,
    outlier_model,
)

#: Executor axis shared by the bitwise tests: backend name and worker
#: count (None = the legacy inline loop fed by the shared step RNG).
EXECUTORS = [
    pytest.param(None, None, id="inline"),
    pytest.param("serial", None, id="serial"),
    pytest.param("thread", 1, id="thread-1"),
    pytest.param("thread", 3, id="thread-3"),
    pytest.param("process", 2, id="process-2"),
]


def _param_edit_fn(h, std, num_obs):
    # Module-level so the translator pickles for the process executor.
    slope = h.sample(Normal(0.0, 2.0), "slope")
    intercept = h.sample(Normal(0.0, 2.0), "intercept")
    scale = h.sample(Gamma(2.0, 1.0), "scale")
    for i in range(num_obs):
        h.observe(Normal(slope * i + intercept, std * scale), 0.7 * i, f"y{i}")
    return slope


def _param_edit_translator(num_obs=8):
    """Parameter-only edit: same structure, different observation noise."""
    return CorrespondenceTranslator(
        Model(_param_edit_fn, args=(0.5, num_obs)),
        Model(_param_edit_fn, args=(0.8, num_obs)),
        Correspondence.identity(["slope", "intercept", "scale"]),
    )


def _population(model, n, seed=0):
    rng = np.random.default_rng(seed)
    return WeightedCollection([model.generate(rng)[0] for _ in range(n)], [0.0] * n)


def _weighted_population(model, n, seed=0):
    """Population that keeps the likelihood weights from ``generate``.

    Discarding them (as :func:`_population` does for the bitwise tests,
    where only determinism matters) makes the translated weights blow up
    by ``-log p(obs | source)`` and the comparison degenerates to a
    single surviving particle.
    """
    rng = np.random.default_rng(seed)
    pairs = [model.generate(rng) for _ in range(n)]
    return WeightedCollection([t for t, _ in pairs], [w for _, w in pairs])


def _fingerprint(collection):
    """Bitwise-comparable digest of a collection (either representation)."""
    weighted = (
        collection if isinstance(collection, WeightedCollection)
        else collection.to_weighted()
    )
    return [
        (
            tuple(
                (r.address, r.value.hex() if isinstance(r.value, float) else r.value,
                 r.log_prob.hex())
                for r in trace.choices()
            ),
            trace.log_prob.hex(),
            float(weight).hex(),
        )
        for trace, weight in zip(weighted.items, weighted.log_weights)
    ]


class TestBitwiseParameterOnly:
    @pytest.mark.parametrize("executor,workers", EXECUTORS)
    def test_step_identical_across_modes(self, executor, workers):
        translator = _param_edit_translator()
        population = _population(translator.source, n=24)
        results = {}
        for mode in ("object", "columnar"):
            step = infer(
                translator,
                population.copy(),
                np.random.default_rng(42),
                config=InferenceConfig(
                    resample="always",
                    executor=executor,
                    workers=workers,
                    collection=mode,
                ),
            )
            results[mode] = step
        assert results["columnar"].stats.collection_mode == "columnar"
        assert _fingerprint(results["object"].collection) == _fingerprint(
            results["columnar"].collection
        )
        for field in ("log_mean_weight_increment", "ess_before_resample", "ess_after"):
            assert getattr(results["object"].stats, field) == getattr(
                results["columnar"].stats, field
            ), field

    def test_estimates_identical(self):
        translator = _param_edit_translator()
        population = _population(translator.source, n=40)
        estimates = {}
        for mode in ("object", "columnar"):
            step = infer(
                translator, population.copy(), np.random.default_rng(3),
                config=InferenceConfig(collection=mode),
            )
            estimates[mode] = step.collection.estimate(lambda item: item["slope"])
        assert estimates["object"].hex() == estimates["columnar"].hex()

    @pytest.mark.parametrize("scheme", ["multinomial", "systematic", "stratified"])
    def test_resampling_schemes_identical(self, scheme):
        translator = _param_edit_translator()
        population = _population(translator.source, n=24)
        prints = []
        for mode in ("object", "columnar"):
            step = infer(
                translator, population.copy(), np.random.default_rng(9),
                config=InferenceConfig(
                    resample="always", resampling_scheme=scheme, collection=mode
                ),
            )
            prints.append(_fingerprint(step.collection))
        assert prints[0] == prints[1]

    def test_sequence_identical_with_adaptive_resampling(self):
        def make(std):
            def fn(h):
                slope = h.sample(Normal(0.0, 2.0), "slope")
                for i in range(6):
                    h.observe(Normal(slope * i, std), 0.8 * i, f"y{i}")
                return slope

            return Model(fn)

        models = [make(std) for std in (1.0, 0.9, 0.8, 0.7, 0.6)]
        translators = [
            CorrespondenceTranslator(a, b, Correspondence.identity(["slope"]))
            for a, b in zip(models, models[1:])
        ]
        population = _population(models[0], n=32)
        per_mode = {}
        for mode in ("object", "columnar"):
            steps = infer_sequence(
                translators, population.copy(), np.random.default_rng(17),
                config=InferenceConfig(resample="adaptive", collection=mode),
            )
            per_mode[mode] = steps
        for object_step, columnar_step in zip(per_mode["object"], per_mode["columnar"]):
            assert columnar_step.stats.collection_mode == "columnar"
            assert _fingerprint(object_step.collection) == _fingerprint(
                columnar_step.collection
            )

    def test_fig8_workload_identical(self):
        """The paper's Figure 8 edit (robustification) on real programs.

        This is a *structural* edit (the outlier_log_var address is new),
        but with exactly one fresh address the per-address and
        per-particle RNG orders coincide, so the inline loop is bitwise
        reproducible here too — and it exercises TwoNormals columns with
        array-valued scale parameters end to end.
        """
        xs = [float(i) for i in range(10)]
        ys = [0.5 * x + 0.2 for x in xs]
        p = no_outlier_model(NoOutlierModelParams(prior_std=10.0, std=0.5), xs, ys)
        q = outlier_model(
            OutlierModelParams(prior_std=10.0, prob_outlier=0.1, inlier_std=0.5),
            xs,
            ys,
        )
        translator = CorrespondenceTranslator(p, q, coefficient_correspondence())
        population = _population(p, n=20)
        prints = []
        for mode in ("object", "columnar"):
            step = infer(
                translator, population.copy(), np.random.default_rng(8),
                config=InferenceConfig(resample="always", collection=mode),
            )
            if mode == "columnar":
                assert step.stats.collection_mode == "columnar"
            prints.append(_fingerprint(step.collection))
        assert prints[0] == prints[1]


def _ks_statistic(a, b):
    """Two-sample Kolmogorov-Smirnov statistic (no scipy dependency)."""
    a, b = np.sort(np.asarray(a)), np.sort(np.asarray(b))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / len(a)
    cdf_b = np.searchsorted(b, grid, side="right") / len(b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


def _structural_small_fn(h):
    slope = h.sample(Normal(0.5, 1.0), "slope")
    for i in range(3):
        h.observe(Normal(slope * i, 2.0), 0.8 * i, f"y{i}")
    return slope


def _structural_big_fn(h):
    slope = h.sample(Normal(0.5, 1.0), "slope")
    intercept = h.sample(Normal(0.0, 1.0), "intercept")
    spread = h.sample(Gamma(4.0, 0.5), "spread")
    for i in range(3):
        h.observe(Normal(slope * i + intercept, spread), 0.8 * i, f"y{i}")
    return slope


class TestStatisticalStructural:
    """Structural edits: two fresh addresses means the per-address and
    per-particle RNG orders genuinely diverge, so agreement is
    distributional.  The edit is deliberately mild (3 loose observations,
    likelihood-weighted input population) so the weights stay
    non-degenerate — with collapsed weights (ESS ~ 1) any comparison of
    the resampled population is a coin flip, not a test.  Both paths were
    verified bitwise against the Eq. 2 weight formula; these thresholds
    were calibrated against an object-vs-object null (KS ~ 0.05-0.07,
    per-seed estimate diffs centered on zero with std ~ 0.08).
    """

    N_SEEDS = 12
    N_PARTICLES = 400

    def _run(self, mode, seed):
        translator = CorrespondenceTranslator(
            Model(_structural_small_fn),
            Model(_structural_big_fn),
            Correspondence.identity(["slope"]),
        )
        population = _weighted_population(
            translator.source, n=self.N_PARTICLES, seed=seed
        )
        step = infer(
            translator, population, np.random.default_rng(seed + 1000),
            config=InferenceConfig(collection=mode),
        )
        if mode == "columnar":
            assert step.stats.collection_mode == "columnar"
        collection = step.collection
        estimate = collection.estimate(lambda item: item["intercept"])
        second_moment = collection.estimate(lambda item: item["intercept"] ** 2)
        resampled = collection.resample(np.random.default_rng(seed + 500))
        draws = (
            resampled.value_column("intercept")
            if hasattr(resampled, "value_column")
            else np.asarray([t["intercept"] for t in resampled.items])
        )
        return (
            float(estimate),
            float(second_moment),
            step.stats.log_mean_weight_increment,
            np.asarray(draws),
        )

    def test_structural_edit_statistically_equivalent(self):
        per_mode = {"object": [], "columnar": []}
        for mode in per_mode:
            for seed in range(self.N_SEEDS):
                per_mode[mode].append(self._run(mode, seed))
        o_est, o_m2, o_inc, o_draws = zip(*per_mode["object"])
        c_est, c_m2, c_inc, c_draws = zip(*per_mode["columnar"])
        # Weighted posterior estimates agree seed by seed in expectation.
        est_diff = np.asarray(o_est) - np.asarray(c_est)
        m2_diff = np.asarray(o_m2) - np.asarray(c_m2)
        assert abs(est_diff.mean()) < 0.08, est_diff
        assert abs(m2_diff.mean()) < 0.12, m2_diff
        # Evidence increments agree in expectation.
        assert math.isclose(
            float(np.mean(o_inc)), float(np.mean(c_inc)), abs_tol=0.3
        ), (np.mean(o_inc), np.mean(c_inc))
        # Resampled posterior draws agree in distribution.  The pooled
        # draws are correlated within a seed (resampling duplicates), so
        # the threshold sits well above the iid rejection line but far
        # below the ~0.67 a genuine weight bug produced while debugging.
        object_all = np.concatenate(o_draws)
        columnar_all = np.concatenate(c_draws)
        assert abs(object_all.mean() - columnar_all.mean()) < 0.15
        assert abs(object_all.std() - columnar_all.std()) < 0.15
        assert _ks_statistic(object_all, columnar_all) < 0.15

    def test_fresh_discrete_choice_statistically_equivalent(self):
        def make_plain():
            def fn(h):
                x = h.sample(Normal(0.0, 1.0), "x")
                h.observe(Normal(x, 1.0), 0.4, "y")
                return x

            return Model(fn)

        def make_mixture():
            def fn(h):
                x = h.sample(Normal(0.0, 1.0), "x")
                h.sample(Flip(0.3), "component")
                h.observe(TwoNormals(x, 0.3, 1.0, 3.0), 0.4, "y")
                return x

            return Model(fn)

        translator = CorrespondenceTranslator(
            make_plain(), make_mixture(), Correspondence.identity(["x"])
        )
        rates = {}
        for mode in ("object", "columnar"):
            population = _population(translator.source, n=2000, seed=3)
            step = infer(
                translator, population, np.random.default_rng(77),
                config=InferenceConfig(resample="always", collection=mode),
            )
            collection = step.collection
            if hasattr(collection, "value_column"):
                rates[mode] = float(collection.value_column("component").mean())
            else:
                rates[mode] = float(
                    np.mean([t["component"] for t in collection.items])
                )
        assert abs(rates["object"] - rates["columnar"]) < 0.05
