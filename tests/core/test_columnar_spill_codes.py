"""Every :class:`ColumnarSpill` reason code, reached *and* predicted.

Two properties per code, exercised by one trigger each:

* **reachable** — a concrete step construction makes the columnar
  runtime raise a spill carrying exactly that ``code``;
* **predicted** — the static pre-flight's
  :meth:`~repro.analysis.absint.plan.ColumnarPlan.predicted_codes`
  (computed from the same translator/config/kernel, *before* the run)
  contains the code.  This is the plan's soundness contract: prediction
  is a superset of what actually spills.

The triggers deliberately span every layer the runtime probes: the
translator shape checks, the input-collection columnarization, the
distribution merge/template machinery, and the batched model execution
itself.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.analysis.absint import SPILL_CODES, plan_columnar_step
from repro.core import (
    Correspondence,
    CorrespondenceTranslator,
    InferenceConfig,
    Model,
    WeightedCollection,
)
from repro.core.columnar import ColumnarSpill, columnar_infer_step
from repro.distributions import Flip, Gamma, Normal
from repro.distributions.base import Distribution, FiniteSupport, RealLine


# ---------------------------------------------------------------------------
# Model zoo (module level so ``inspect.getsource`` sees clean sources)
# ---------------------------------------------------------------------------


def _plain_src(h):
    x = h.sample(Normal(0.0, 1.0), "x")
    h.observe(Normal(x, 0.5), 0.3, "y")
    return x


def _plain_tgt(h):
    x = h.sample(Normal(0.0, 1.0), "x")
    h.observe(Normal(x, 0.8), 0.3, "y")
    return x


def _branchy_src(h):
    a = h.sample(Flip(0.5), "a")
    if a:
        h.sample(Normal(0.0, 1.0), "extra")
    return a


def _flip_tgt(h):
    a = h.sample(Flip(0.6), "a")
    h.observe(Normal(0.0, 1.0), 0.1, "y")
    return a


def _mixed_dist_src(h):
    a = h.sample(Flip(0.5), "a")
    if a:
        x = h.sample(Normal(0.0, 1.0), "x")
    else:
        x = h.sample(Gamma(1.0, 1.0), "x")
    return x


def _flip_normal_tgt(h):
    a = h.sample(Flip(0.5), "a")
    x = h.sample(Normal(0.0, 1.0), "x")
    h.observe(Normal(x, 1.0), 0.2, "y")
    return a


def _list_return_src(h):
    x = h.sample(Normal(0.0, 1.0), "x")
    return [x]


def _x_only_src(h):
    return h.sample(Normal(0.0, 1.0), "x")


def _branch_obs_tgt(h):
    x = h.sample(Flip(0.5), "x")
    if x:
        h.observe(Normal(1.0, 1.0), 0.2, "y")
    else:
        h.observe(Normal(-1.0, 1.0), 0.2, "y")
    return x


def _flip_src(h):
    return h.sample(Flip(0.5), "x")


def _opaque_tgt(h):
    x = h.sample(Normal(0.0, 1.0), "x")
    y = math.exp(x)
    h.observe(Normal(y, 1.0), 0.5, "y")
    return x


class StringDist(Distribution):
    """Finite support over strings — legal on the object path, never
    representable as a float column."""

    def sample(self, rng):
        return str(rng.choice(("ok", "bad")))

    def log_prob(self, value):
        return math.log(0.5) if value in ("ok", "bad") else float("-inf")

    def support(self):
        return FiniteSupport(("ok", "bad"))

    def __eq__(self, other):
        return type(other) is StringDist

    def __hash__(self):
        return hash(StringDist)


def _string_src(h):
    h.sample(StringDist(), "s")
    return 0.0


def _string_tgt(h):
    h.sample(StringDist(), "s")
    h.observe(Normal(0.0, 1.0), 0.1, "y")
    return 0.0


class TableDist(Distribution):
    """Array-parameterized but *not* a dataclass: its template cannot be
    gathered for resampling."""

    def __init__(self, probs):
        self.probs = np.asarray(probs, dtype=np.float64)

    def sample(self, rng):
        return float(rng.choice(self.probs.size, p=self.probs))

    def log_prob(self, value):
        index = int(value)
        if 0 <= index < self.probs.size:
            return float(np.log(self.probs[index]))
        return float("-inf")

    def support(self):
        return FiniteSupport((0.0, 1.0))


#: Shared instance: every particle references the same object, so the
#: merge succeeds and the spill comes from the gatherability check.
_TABLE = TableDist([0.5, 0.5])


def _table_src(h):
    return h.sample(_TABLE, "k")


def _table_tgt(h):
    k = h.sample(_TABLE, "k")
    h.observe(Normal(k, 1.0), 0.4, "y")
    return k


@dataclasses.dataclass(frozen=True)
class BadBatchNormal(Distribution):
    """Normal-alike whose ``log_prob_batch`` violates the shape contract."""

    mean: float

    def sample(self, rng):
        return float(rng.normal(self.mean, 1.0))

    def log_prob(self, value):
        return float(
            -0.5 * (value - self.mean) ** 2 - 0.5 * math.log(2.0 * math.pi)
        )

    def support(self):
        return RealLine()

    def log_prob_batch(self, values):
        values = np.asarray(values, dtype=np.float64)
        return super().log_prob_batch(values).reshape(-1, 1)  # wrong shape


def _bad_batch_tgt(h):
    x = h.sample(BadBatchNormal(0.5), "x")
    h.observe(Normal(x, 1.0), 0.3, "y")
    return x


_OBS_VECTOR = np.ones(3)


def _array_obs_tgt(h):
    x = h.sample(Normal(0.0, 1.0), "x")
    h.observe(Normal(0.0, 1.0), _OBS_VECTOR, "y")
    n = 0
    while x > 0 and n < 1:  # value-dependent bound: defeats the analyzer
        n = n + 1
    return x


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def _translator(src, tgt, addresses):
    return CorrespondenceTranslator(
        Model(src), Model(tgt), Correspondence.identity(addresses)
    )


def _population(model, n, seed=0):
    rng = np.random.default_rng(seed)
    return WeightedCollection([model.generate(rng)[0] for _ in range(n)], [0.0] * n)


def _run(translator, traces, *, config=None, mcmc_kernel=None, probe=False):
    """Plan the step, run it, and hand back (plan, raised spill)."""
    config = config or InferenceConfig()
    plan = plan_columnar_step(translator, config=config, mcmc_kernel=mcmc_kernel)
    if probe:
        # Force the runtime probe to run (skip the cached pre-flight) so
        # the test exercises the actual raise site.
        try:
            translator._columnar_plan = False
        except Exception:
            pass
    with pytest.raises(ColumnarSpill) as excinfo:
        columnar_infer_step(
            translator, traces, np.random.default_rng(7), mcmc_kernel, config
        )
    return plan, excinfo.value


class TestEveryCodeReachableAndPredicted:
    def test_translator(self):
        plan, spill = _run(object(), [])
        assert spill.code == "translator"
        assert spill.code in plan.predicted_codes()
        assert not plan.eligible

    def test_proposals(self):
        translator = CorrespondenceTranslator(
            Model(_plain_src),
            Model(_plain_tgt),
            Correspondence.identity(["x"]),
            forward_proposals={"x": lambda rng, trace: Normal(0.0, 1.0)},
        )
        plan, spill = _run(translator, _population(translator.source, 4))
        assert spill.code == "proposals"
        assert spill.code in plan.predicted_codes()
        assert not plan.eligible

    def test_mcmc(self):
        translator = _translator(_plain_src, _plain_tgt, ["x"])
        plan, spill = _run(
            translator, _population(translator.source, 4), mcmc_kernel=object()
        )
        assert spill.code == "mcmc"
        assert spill.code in plan.predicted_codes()
        assert not plan.eligible

    def test_fault_policy(self):
        translator = _translator(_plain_src, _plain_tgt, ["x"])
        config = InferenceConfig(fault_policy="drop")
        plan, spill = _run(
            translator, _population(translator.source, 4), config=config
        )
        assert spill.code == "fault-policy"
        assert spill.code in plan.predicted_codes()
        assert not plan.eligible

    def test_collection_type(self):
        translator = _translator(_plain_src, _plain_tgt, ["x"])
        plan, spill = _run(
            translator, list(_population(translator.source, 4).items)
        )
        assert spill.code == "collection-type"
        assert spill.code in plan.predicted_codes()

    def test_items(self):
        translator = _translator(_plain_src, _plain_tgt, ["x"])
        plan, spill = _run(translator, WeightedCollection([1, 2], [0.0, 0.0]))
        assert spill.code == "items"
        assert spill.code in plan.predicted_codes()

    def test_address_structure(self):
        translator = _translator(_branchy_src, _flip_tgt, ["a"])
        population = _population(translator.source, 16, seed=3)
        address_sets = {tuple(t.addresses()) for t in population.items}
        assert len(address_sets) > 1, "seed must produce both branches"
        plan, spill = _run(translator, population)
        assert spill.code == "address-structure"
        assert spill.code in plan.predicted_codes()

    def test_value_kind(self):
        translator = _translator(_string_src, _string_tgt, ["s"])
        plan, spill = _run(translator, _population(translator.source, 4))
        assert spill.code == "value-kind"
        assert spill.code in plan.predicted_codes()

    def test_dist_merge(self):
        translator = _translator(_mixed_dist_src, _flip_normal_tgt, ["a", "x"])
        population = _population(translator.source, 16, seed=3)
        dist_types = {
            type(t.get_record(("x",)).dist) for t in population.items
        }
        assert len(dist_types) > 1, "seed must produce both distribution classes"
        plan, spill = _run(translator, population)
        assert spill.code == "dist-merge"
        assert spill.code in plan.predicted_codes()

    def test_template(self):
        translator = _translator(_table_src, _table_tgt, ["k"])
        plan, spill = _run(translator, _population(translator.source, 4))
        assert spill.code == "template"
        assert spill.code in plan.predicted_codes()

    def test_observation(self):
        translator = _translator(_x_only_src, _array_obs_tgt, ["x"])
        plan, spill = _run(translator, _population(translator.source, 5))
        assert spill.code == "observation"
        assert spill.code in plan.predicted_codes()

    def test_batch_shape(self):
        translator = _translator(_plain_src, _bad_batch_tgt, ["x"])
        plan, spill = _run(translator, _population(translator.source, 4))
        assert spill.code == "batch-shape"
        assert spill.code in plan.predicted_codes()

    def test_return_value(self):
        translator = _translator(_list_return_src, _plain_tgt, ["x"])
        plan, spill = _run(translator, _population(translator.source, 4))
        assert spill.code == "return-value"
        assert spill.code in plan.predicted_codes()

    def test_control_flow_preflight(self):
        # A complete target profile with value-dependent control flow is
        # a *certain* finding: the step must route to the object path
        # before columnarizing anything.
        translator = _translator(_flip_src, _branch_obs_tgt, ["x"])
        plan, spill = _run(translator, _population(translator.source, 6))
        assert spill.code == "control-flow"
        assert "(static pre-flight)" in spill.detail
        assert spill.code in plan.predicted_codes()
        assert not plan.eligible
        assert plan.blocking(num_particles=6) is not None
        # A single particle's column is a size-1 array, which numpy
        # coerces to bool: the certainty does not apply there.
        assert plan.blocking(num_particles=1) is None

    def test_control_flow_runtime_probe(self):
        translator = _translator(_flip_src, _branch_obs_tgt, ["x"])
        plan, spill = _run(
            translator, _population(translator.source, 6), probe=True
        )
        assert spill.code == "control-flow"
        assert "(static pre-flight)" not in spill.detail
        assert spill.code in plan.predicted_codes()

    def test_execution(self):
        translator = _translator(_plain_src, _opaque_tgt, ["x"])
        plan, spill = _run(translator, _population(translator.source, 4))
        assert spill.code == "execution"
        assert spill.code in plan.predicted_codes()
        # The plan saw the opaque tainted call and stayed uncertain: the
        # step still probed (no certain finding).
        assert plan.eligible

    def test_unspecified_legacy_constructor(self):
        spill = ColumnarSpill("just a detail")
        assert spill.code == "unspecified"
        assert spill.detail == "just a detail"
        assert str(spill) == "[unspecified] just a detail"
        two_arg = ColumnarSpill("items", "not traces")
        assert (two_arg.code, two_arg.detail) == ("items", "not traces")
        assert "unspecified" in SPILL_CODES


class TestCodeInventory:
    def test_every_code_is_exercised(self):
        """The parametrized triggers above cover the full inventory."""
        exercised = {
            "translator",
            "proposals",
            "mcmc",
            "fault-policy",
            "collection-type",
            "items",
            "address-structure",
            "value-kind",
            "dist-merge",
            "template",
            "observation",
            "batch-shape",
            "return-value",
            "control-flow",
            "execution",
            "unspecified",
        }
        assert exercised == set(SPILL_CODES)

    def test_all_raise_sites_use_known_codes(self):
        """No in-tree raise site invents a code outside the inventory."""
        import re

        from repro.core import columnar

        source = open(columnar.__file__).read()
        for match in re.finditer(
            r"raise ColumnarSpill\(\s*\n?\s*\"([a-z-]+)\"", source
        ):
            assert match.group(1) in SPILL_CODES, match.group(1)

    def test_spill_message_is_code_prefixed(self):
        spill = ColumnarSpill("mcmc", "kernel configured")
        assert str(spill).startswith("[mcmc] ")


class TestPlanSoundnessOnEquivalenceSuite:
    """The plan never blocks a step the columnar equivalence suite proves
    runs columnar — a false *certain* finding would silently demote a
    bitwise-verified workload to the object path."""

    def _equivalence_translators(self):
        from repro.regression.programs import (
            NoOutlierModelParams,
            OutlierModelParams,
            coefficient_correspondence,
            no_outlier_model,
            outlier_model,
        )
        from tests.core.test_columnar_equivalence import (
            _param_edit_translator,
            _structural_big_fn,
            _structural_small_fn,
        )

        xs = [float(i) for i in range(10)]
        ys = [0.5 * x + 0.2 for x in xs]
        return {
            "param-edit": _param_edit_translator(),
            "fig8": CorrespondenceTranslator(
                no_outlier_model(NoOutlierModelParams(prior_std=10.0, std=0.5), xs, ys),
                outlier_model(
                    OutlierModelParams(
                        prior_std=10.0, prob_outlier=0.1, inlier_std=0.5
                    ),
                    xs,
                    ys,
                ),
                coefficient_correspondence(),
            ),
            "structural": CorrespondenceTranslator(
                Model(_structural_small_fn),
                Model(_structural_big_fn),
                Correspondence.identity(["slope"]),
            ),
        }

    def test_no_equivalence_workload_is_blocked(self):
        for name, translator in self._equivalence_translators().items():
            plan = plan_columnar_step(translator)
            assert plan.blocking(num_particles=24) is None, (
                name,
                [f.describe() for f in plan.findings],
            )

    def test_param_edit_step_runs_columnar_as_planned(self):
        from tests.core.test_columnar_equivalence import _param_edit_translator

        translator = _param_edit_translator()
        plan = plan_columnar_step(translator)
        assert plan.eligible
        step = columnar_infer_step(
            translator,
            _population(translator.source, 8),
            np.random.default_rng(11),
            None,
            InferenceConfig(),
        )
        assert step.stats.collection_mode == "columnar"
