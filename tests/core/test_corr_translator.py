"""Tests for the correspondence-based trace translator (Section 5).

Includes exact reproductions of the two worked examples in the paper:
the Figure 1 burglary translation (weight ≈ 1.19) and Example 3 /
Figure 5 (weight = 2/3), plus statistical checks of Lemma 4/6
(the weight estimate averages to Z_Q / Z_P) and convergence of the
self-normalized estimator to the target posterior (Lemma 2).
"""

import math

import numpy as np
import pytest

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    Model,
    WeightedCollection,
    exact_choice_marginal,
    exact_posterior_sampler,
    log_normalizer,
)
from repro.distributions import Flip, Normal, UniformDiscrete


@pytest.fixture
def burglary_translator(burglary_original, burglary_refined):
    correspondence = Correspondence.identity(["burglary", "alarm"])
    return CorrespondenceTranslator(burglary_original, burglary_refined, correspondence)


class TestFigure1:
    """The worked translation of Figure 1."""

    def test_weight_when_earthquake_sampled_one(self, burglary_translator, burglary_original, rng):
        """For t = [burglary=1, alarm=1] and sampled earthquake=1 the paper
        computes w' = (p_a' p_b' p_o') / (p_a p_b p_o) ≈ 1.19."""
        trace = burglary_original.score({"burglary": 1, "alarm": 1})
        seen = set()
        for _ in range(3000):
            result = burglary_translator.translate(rng, trace)
            earthquake = result.trace["earthquake"]
            seen.add(earthquake)
            if earthquake == 1:
                expected = (0.95 * 0.9) / (0.9 * 0.8)
                assert math.exp(result.log_weight) == pytest.approx(expected)
            else:
                assert math.exp(result.log_weight) == pytest.approx(1.0)
            assert result.trace["burglary"] == 1
            assert result.trace["alarm"] == 1
            if seen == {0, 1}:
                break
        assert seen == {0, 1}

    def test_forward_kernel_probability(self, burglary_translator, burglary_original, rng):
        """k(u; t) = 0.005 when earthquake=1 is sampled (Section 4.1)."""
        trace = burglary_original.score({"burglary": 1, "alarm": 1})
        for _ in range(3000):
            result = burglary_translator.translate(rng, trace)
            if result.trace["earthquake"] == 1:
                assert result.components["forward_log_prob"] == pytest.approx(math.log(0.005))
                return
        pytest.fail("earthquake=1 never sampled")

    def test_translated_estimate_converges_to_q_posterior(
        self, burglary_translator, burglary_original, burglary_refined, rng
    ):
        """Lemma 2: the weighted estimate converges to Q's posterior."""
        sampler = exact_posterior_sampler(burglary_original)
        traces = [sampler(rng) for _ in range(20000)]
        collection = WeightedCollection.uniform(traces)
        increments = []
        translated = []
        for trace in traces:
            result = burglary_translator.translate(rng, trace)
            translated.append(result.trace)
            increments.append(result.log_weight)
        out = WeightedCollection(translated, increments)
        estimate = out.estimate_probability(lambda u: u["burglary"] == 1)
        truth = exact_choice_marginal(burglary_refined, "burglary")[1]
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_unweighted_estimate_converges_to_wrong_posterior(
        self, burglary_translator, burglary_original, rng
    ):
        """Without weights the estimate converges to η, not Q — here η's
        burglary marginal equals P's posterior (burglary is reused)."""
        sampler = exact_posterior_sampler(burglary_original)
        translated = [
            burglary_translator.translate(rng, sampler(rng)).trace for _ in range(20000)
        ]
        out = WeightedCollection.uniform(translated)
        estimate = out.estimate_probability(lambda u: u["burglary"] == 1)
        truth_p = exact_choice_marginal(burglary_original, "burglary")[1]
        assert estimate == pytest.approx(truth_p, abs=0.01)


class TestExample3:
    """Example 3 / Figure 5: branch- and support-sensitive correspondence."""

    @pytest.fixture
    def translator(self, figure5_p, figure5_q):
        # Addresses "a" and "b" are shared; the support check implements
        # the paper's refusal to match uniform(0,5) with flip choices.
        return CorrespondenceTranslator(
            figure5_p, figure5_q, Correspondence.identity(["a", "b"])
        )

    def test_weight_is_two_thirds(self, translator, figure5_p, rng):
        """For t = [a=1, b=1, c=1], ŵ = (1/3 · 1/2)/(1/2 · 1/2) = 2/3."""
        trace = figure5_p.score({"a": 1, "b": 1, "c": 1})
        result = translator.translate(rng, trace)
        assert math.exp(result.log_weight) == pytest.approx(2 / 3)
        assert result.trace["a"] == 1
        assert result.trace["b"] == 1

    def test_forward_kernel_is_one_twentyfourth(self, translator, figure5_p, rng):
        """k samples uniform(1,6) and uniform(-5,-2): k(u;t) = 1/6 · 1/4."""
        trace = figure5_p.score({"a": 1, "b": 1, "c": 1})
        result = translator.translate(rng, trace)
        assert result.components["forward_log_prob"] == pytest.approx(math.log(1 / 24))

    def test_uniform_branch_reuses_b(self, translator, figure5_p, rng):
        """When a=0 both programs use uniform(0,5) for b: same support, reuse."""
        trace = figure5_p.score({"a": 0, "b": 4, "c": 0})
        result = translator.translate(rng, trace)
        assert result.trace["a"] == 0
        assert result.trace["b"] == 4
        # weight = p_Q(a=0) p_Q(b=4) / (p_P(a=0) p_P(b=4)) = (2/3 · 1/6)/(1/2 · 1/6)
        assert math.exp(result.log_weight) == pytest.approx((2 / 3) / (1 / 2))

    def test_fresh_choices_follow_their_priors(self, translator, figure5_p, rng):
        trace = figure5_p.score({"a": 1, "b": 1, "c": 1})
        c_values = []
        d_values = []
        for _ in range(6000):
            result = translator.translate(rng, trace)
            c_values.append(result.trace["c"])
            d_values.append(result.trace["d"])
        assert np.mean(c_values) == pytest.approx(3.5, abs=0.1)
        assert np.mean(d_values) == pytest.approx(-3.5, abs=0.1)
        assert set(c_values) == set(range(1, 7))
        assert set(d_values) == set(range(-5, -1))


class TestSupportMismatchFallback:
    """Case (ii) of Section 5.1: corresponding choice with changed support."""

    def test_changed_support_is_resampled(self, rng):
        def p_fn(t):
            return t.sample(UniformDiscrete(0, 5), "x")

        def q_fn(t):
            return t.sample(UniformDiscrete(0, 9), "x")

        p, q = Model(p_fn), Model(q_fn)
        translator = CorrespondenceTranslator(p, q, Correspondence.identity(["x"]))
        trace = p.score({"x": 3})
        values = {translator.translate(rng, trace).trace["x"] for _ in range(500)}
        # x must be freshly sampled (support changed), covering 0..9.
        assert values == set(range(10))

    def test_changed_support_weight_is_constant(self, rng):
        """With the fallback, both kernels sample the sole choice from the
        prior, so ŵ = P̃r[u]·l/(P̃r[t]·k) = (1/10·1/6)/(1/6·1/10) = 1."""

        def p_fn(t):
            return t.sample(UniformDiscrete(0, 5), "x")

        def q_fn(t):
            return t.sample(UniformDiscrete(0, 9), "x")

        p, q = Model(p_fn), Model(q_fn)
        translator = CorrespondenceTranslator(p, q, Correspondence.identity(["x"]))
        trace = p.score({"x": 3})
        for _ in range(20):
            assert translator.translate(rng, trace).log_weight == pytest.approx(0.0)


class TestMissingChoiceFallback:
    """Case (i) of Section 5.1: corresponding choice absent from the old trace."""

    def test_branch_generated_choice_is_sampled(self, rng):
        def p_fn(t):
            gate = t.sample(Flip(0.5), "gate")
            if gate:
                t.sample(Flip(0.3), "inner")
            return gate

        def q_fn(t):
            # Q always makes the inner choice.
            gate = t.sample(Flip(0.5), "gate")
            t.sample(Flip(0.3), "inner")
            return gate

        p, q = Model(p_fn), Model(q_fn)
        translator = CorrespondenceTranslator(
            p, q, Correspondence.identity(["gate", "inner"])
        )
        # Old trace took the gate=0 branch, so "inner" is missing.
        trace = p.score({"gate": 0})
        inner_values = set()
        for _ in range(200):
            result = translator.translate(rng, trace)
            assert result.trace["gate"] == 0
            inner_values.add(result.trace["inner"])
            assert result.log_weight == pytest.approx(0.0)
        assert inner_values == {0, 1}

    def test_choice_dropped_by_target_enters_backward_kernel(self, rng):
        def p_fn(t):
            gate = t.sample(Flip(0.5), "gate")
            t.sample(Flip(0.3), "extra")
            return gate

        def q_fn(t):
            return t.sample(Flip(0.5), "gate")

        p, q = Model(p_fn), Model(q_fn)
        translator = CorrespondenceTranslator(
            p, q, Correspondence.identity(["gate", "extra"])
        )
        trace = p.score({"gate": 1, "extra": 1})
        result = translator.translate(rng, trace)
        # The backward kernel must regenerate "extra" (prob 0.3 for value 1):
        # ŵ = P̃r[u]·l / (P̃r[t]·k) = (0.5 · 0.3) / (0.5 · 0.3 · 1) = 1.
        assert result.components["backward_log_prob"] == pytest.approx(math.log(0.3))
        assert result.log_weight == pytest.approx(0.0)


class TestLemma4Unbiasedness:
    """E[ŵ] over t ~ P, u ~ k(.;t) equals Z_Q / Z_P (Lemma 6)."""

    def test_mean_weight_estimates_normalizer_ratio(
        self, burglary_original, burglary_refined, burglary_translator, rng
    ):
        sampler = exact_posterior_sampler(burglary_original)
        weights = [
            math.exp(burglary_translator.translate(rng, sampler(rng)).log_weight)
            for _ in range(20000)
        ]
        ratio = math.exp(log_normalizer(burglary_refined) - log_normalizer(burglary_original))
        assert np.mean(weights) == pytest.approx(ratio, rel=0.05)

    def test_mean_weight_without_observations(self, figure5_p, figure5_q, rng):
        """Z_P = Z_Q = 1 for the Figure 5 programs, so E[ŵ] = 1."""
        translator = CorrespondenceTranslator(
            figure5_p, figure5_q, Correspondence.identity(["a", "b"])
        )
        sampler = exact_posterior_sampler(figure5_p)
        weights = [
            math.exp(translator.translate(rng, sampler(rng)).log_weight)
            for _ in range(20000)
        ]
        assert np.mean(weights) == pytest.approx(1.0, rel=0.05)


class TestEmptyCorrespondence:
    def test_everything_resampled(self, burglary_original, burglary_refined, rng):
        translator = CorrespondenceTranslator(
            burglary_original, burglary_refined, Correspondence.empty()
        )
        trace = burglary_original.score({"burglary": 1, "alarm": 1})
        burglaries = {translator.translate(rng, trace).trace["burglary"] for _ in range(500)}
        assert burglaries == {0, 1}


class TestContinuousTranslation:
    def test_reused_continuous_choice_weight(self, rng):
        """Changing a prior's std reweights by the density ratio."""

        def p_fn(t):
            t.sample(Normal(0.0, 1.0), "mu")

        def q_fn(t):
            t.sample(Normal(0.0, 2.0), "mu")

        p, q = Model(p_fn), Model(q_fn)
        translator = CorrespondenceTranslator(p, q, Correspondence.identity(["mu"]))
        trace = p.score({"mu": 0.7})
        result = translator.translate(rng, trace)
        expected = Normal(0.0, 2.0).log_prob(0.7) - Normal(0.0, 1.0).log_prob(0.7)
        assert result.log_weight == pytest.approx(expected)
        assert result.trace["mu"] == 0.7


class TestInverseTranslator:
    def test_round_trip_weight_cancels(self, figure5_p, figure5_q, rng):
        """Translating forward then backward restores the original trace's
        corresponding choices; the two log weights need not cancel exactly
        (fresh choices differ) but the reused values must round-trip."""
        translator = CorrespondenceTranslator(
            figure5_p, figure5_q, Correspondence.identity(["a", "b"])
        )
        inverse = translator.inverse()
        trace = figure5_p.score({"a": 1, "b": 0, "c": 1})
        forward = translator.translate(rng, trace)
        back = inverse.translate(rng, forward.trace)
        assert back.trace["a"] == trace["a"]
        assert back.trace["b"] == trace["b"]

    def test_round_trip_weights_cancel_for_full_correspondence(self, rng):
        def p_fn(t):
            t.sample(Flip(0.3), "x")

        def q_fn(t):
            t.sample(Flip(0.6), "x")

        p, q = Model(p_fn), Model(q_fn)
        translator = CorrespondenceTranslator(p, q, Correspondence.identity(["x"]))
        trace = p.score({"x": 1})
        forward = translator.translate(rng, trace)
        back = translator.inverse().translate(rng, forward.trace)
        assert forward.log_weight + back.log_weight == pytest.approx(0.0)
