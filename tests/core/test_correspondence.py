"""Tests for correspondence construction and queries."""

import pytest

from repro import Correspondence


class TestFromDict:
    def test_forward_and_backward(self):
        corr = Correspondence.from_dict({"a_new": "a_old", ("y", 1): ("z", 1)})
        assert corr.forward("a_new") == ("a_old",)
        assert corr.backward("a_old") == ("a_new",)
        assert corr.forward(("y", 1)) == ("z", 1)
        assert corr.backward(("z", 1)) == ("y", 1)

    def test_unmapped_addresses_return_none(self):
        corr = Correspondence.from_dict({"a": "b"})
        assert corr.forward("other") is None
        assert corr.backward("a") is None  # "a" is a target address, not source

    def test_non_injective_raises(self):
        with pytest.raises(ValueError):
            Correspondence.from_dict({"x": "shared", "y": "shared"})


class TestIdentity:
    def test_identity_over_set(self):
        corr = Correspondence.identity(["slope", ("y", 0)])
        assert corr.forward("slope") == ("slope",)
        assert corr.backward(("y", 0)) == ("y", 0)
        assert corr.forward("not_there") is None

    def test_identity_by_predicate(self):
        corr = Correspondence.identity_by_predicate(lambda a: a[0] == "hidden")
        assert corr.forward(("hidden", 7)) == ("hidden", 7)
        assert corr.forward(("obs", 7)) is None
        # Unbounded family: any index works without pre-registration.
        assert corr.forward(("hidden", 10**6)) == ("hidden", 10**6)


class TestInverse:
    def test_inverse_swaps_directions(self):
        corr = Correspondence.from_dict({"new": "old"})
        inv = corr.inverse()
        assert inv.forward("old") == ("new",)
        assert inv.backward("new") == ("old",)

    def test_double_inverse_is_original(self):
        corr = Correspondence.from_dict({"new": "old"})
        double = corr.inverse().inverse()
        assert double.forward("new") == ("old",)


class TestEmpty:
    def test_everything_unmapped(self):
        corr = Correspondence.empty()
        assert corr.forward("anything") is None
        assert corr.backward(("x", 1)) is None
