"""Tests for exact enumeration of finite discrete models."""

import math

import pytest

from repro import (
    Model,
    enumerate_traces,
    exact_choice_marginal,
    exact_expectation,
    exact_return_distribution,
    log_normalizer,
)
from repro.distributions import Flip, Normal, UniformDiscrete


def example1_fn(t):
    """The program of Example 1 (Figure 3) in the paper."""
    a = 1
    b = t.sample(Flip(a / 3), "b")
    if a < 2:
        c = t.sample(UniformDiscrete(1, 6), "c")
    else:
        c = t.sample(UniformDiscrete(6, 10), "c")
    d = t.sample(Flip(b / 2), "d")
    t.observe(Flip(1 / 5), d, "obs")
    return c


class TestEnumeration:
    def test_number_of_traces(self):
        model = Model(example1_fn)
        traces = list(enumerate_traces(model))
        # b in {0,1} x c in {1..6} x d in {0,1}
        assert len(traces) == 2 * 6 * 2

    def test_example1_trace_probability(self):
        """P̃r[t] for t = [b=1, c=4, d=1] is (1/3)(1/6)(1/2)(1/5)."""
        model = Model(example1_fn)
        target = None
        for trace in enumerate_traces(model):
            if (trace["b"], trace["c"], trace["d"]) == (1, 4, 1):
                target = trace
        assert target is not None
        assert target.log_prob == pytest.approx(
            math.log(1 / 3) + math.log(1 / 6) + math.log(1 / 2) + math.log(1 / 5)
        )

    def test_example1_normalizer(self):
        """The paper computes Z_P = 0.7 for Example 1."""
        assert math.exp(log_normalizer(Model(example1_fn))) == pytest.approx(0.7)

    def test_unnormalized_probs_sum_to_normalizer(self):
        model = Model(example1_fn)
        total = sum(math.exp(t.log_prob) for t in enumerate_traces(model))
        assert total == pytest.approx(math.exp(log_normalizer(model)))

    def test_continuous_choice_raises(self):
        def bad(t):
            return t.sample(Normal(0, 1), "x")

        with pytest.raises(ValueError):
            list(enumerate_traces(Model(bad)))


class TestExactQueries:
    def test_burglary_posterior_matches_figure1(self, burglary_original, burglary_refined):
        """Figure 1 reports posteriors 20.5% (original) and 19.4% (refined)."""
        marginal_p = exact_choice_marginal(burglary_original, "burglary")
        assert marginal_p[1] == pytest.approx(0.205, abs=0.001)
        marginal_q = exact_choice_marginal(burglary_refined, "burglary")
        assert marginal_q[1] == pytest.approx(0.194, abs=0.001)

    def test_burglary_prior_matches_figure1(self):
        """Figure 1 reports the prior 2% under both programs."""

        def prior_only(t):
            return t.sample(Flip(0.02), "burglary")

        marginal = exact_choice_marginal(Model(prior_only), "burglary")
        assert marginal[1] == pytest.approx(0.02)

    def test_expectation_of_indicator_equals_marginal(self, burglary_original):
        marginal = exact_choice_marginal(burglary_original, "burglary")
        expectation = exact_expectation(
            burglary_original, lambda trace: float(trace["burglary"])
        )
        assert expectation == pytest.approx(marginal[1])

    def test_return_distribution(self, burglary_original):
        dist = exact_return_distribution(burglary_original)
        marginal = exact_choice_marginal(burglary_original, "burglary")
        assert dist[1] == pytest.approx(marginal[1])
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_marginal_of_branch_only_address(self):
        def branching(t):
            a = t.sample(Flip(0.5), "a")
            if a:
                t.sample(Flip(0.9), "b")
            return a

        marginal = exact_choice_marginal(Model(branching), "b")
        # In half the posterior mass, "b" does not exist (key None).
        assert marginal[None] == pytest.approx(0.5)
        assert marginal[1] == pytest.approx(0.45)
        assert marginal[0] == pytest.approx(0.05)

    def test_observation_reduces_normalizer(self):
        def observed(t):
            x = t.sample(Flip(0.5), "x")
            t.observe(Flip(0.9 if x else 0.1), 1, "o")
            return x

        z = math.exp(log_normalizer(Model(observed)))
        assert z == pytest.approx(0.5 * 0.9 + 0.5 * 0.1)

    def test_zero_probability_branches_excluded(self):
        def impossible(t):
            x = t.sample(Flip(0.5), "x")
            t.observe(Flip(1.0 if x else 0.0), 1, "o")
            return x

        marginal = exact_choice_marginal(Model(impossible), "x")
        assert marginal == {1: pytest.approx(1.0)}
