"""Chaos suite: the fault-isolated SMC loop against injected failures.

Every test drives :func:`repro.core.smc.infer` / ``infer_sequence``
through a deterministic :class:`repro.testing.FaultInjector` and checks
the contract of each fault policy: ``fail_fast`` reproduces the
uncontained crash exactly, ``drop`` and ``regenerate`` keep the sampler
alive with accurate per-step counters, and ``regenerate`` additionally
keeps posterior estimates correct on the enumerable burglary model.
"""

import math

import numpy as np
import pytest

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    DegeneracyError,
    FaultPolicy,
    MissingChoiceError,
    Model,
    NumericalError,
    TranslationError,
    WeightedCollection,
    exact_choice_marginal,
    exact_posterior_sampler,
    infer,
    infer_sequence,
)
from repro.core.mcmc import gibbs_sweep
from repro.distributions import Flip
from repro.testing import FaultInjector, FaultyTranslator, faulty_kernel

NEG_INF = float("-inf")


def make_flip_model(p_x, p_obs_given_x1, p_obs_given_x0):
    def fn(t):
        x = t.sample(Flip(p_x), "x")
        t.observe(Flip(p_obs_given_x1 if x else p_obs_given_x0), 1, "o")
        return x

    return Model(fn, name=f"flip({p_x})")


def drifting_sequence():
    """Three translation steps across a drifting flip model."""
    params = [(0.5, 0.9, 0.2), (0.45, 0.85, 0.25), (0.4, 0.8, 0.3), (0.35, 0.8, 0.3)]
    models = [make_flip_model(*p) for p in params]
    translators = [
        CorrespondenceTranslator(models[i], models[i + 1], Correspondence.identity(["x"]))
        for i in range(len(models) - 1)
    ]
    return models, translators


def posterior_input(model, rng, size):
    sampler = exact_posterior_sampler(model)
    return WeightedCollection.uniform([sampler(rng) for _ in range(size)])


@pytest.fixture
def burglary_translator(burglary_original, burglary_refined):
    return CorrespondenceTranslator(
        burglary_original,
        burglary_refined,
        Correspondence.identity(["burglary", "alarm"]),
    )


class TestFailFast:
    def test_injected_error_type_is_preserved(self, burglary_translator, burglary_original, rng):
        """fail_fast must crash with the injected error, byte-for-byte in
        type — exactly what an unwrapped translator call would raise."""
        injector = FaultInjector(
            at_calls={5: "error"},
            error_factory=lambda: MissingChoiceError("alarm"),
        )
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 20)
        with pytest.raises(MissingChoiceError) as excinfo:
            infer(faulty, collection, rng, fault_policy="fail_fast")
        assert type(excinfo.value) is MissingChoiceError

    def test_fail_fast_is_the_default(self, burglary_translator, burglary_original, rng):
        injector = FaultInjector(at_calls={0: "error"})
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 5)
        with pytest.raises(TranslationError):
            infer(faulty, collection, rng)

    def test_nan_weight_raises_numerical_error(self, burglary_translator, burglary_original, rng):
        injector = FaultInjector(at_calls={2: "nan"})
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 5)
        with pytest.raises(NumericalError):
            infer(faulty, collection, rng, fault_policy="fail_fast")

    def test_no_faults_means_zero_counters(self, burglary_translator, burglary_original, rng):
        collection = posterior_input(burglary_original, rng, 50)
        step = infer(burglary_translator, collection, rng, fault_policy="drop")
        stats = step.stats
        assert (stats.failed, stats.dropped, stats.regenerated, stats.retried) == (0, 0, 0, 0)
        assert stats.total_faults == 0
        assert "faults[" not in str(stats)


class TestDropPolicy:
    def test_sequence_completes_with_20_percent_faults(self, rng):
        _models, translators = drifting_sequence()
        injector = FaultInjector(seed=7, error_rate=0.2)
        faulty = [FaultyTranslator(t, injector) for t in translators]
        initial = posterior_input(translators[0].source, rng, 400)
        steps = infer_sequence(faulty, initial, rng, resample="adaptive", fault_policy="drop")
        assert len(steps) == 3
        assert injector.injected["error"] > 0

    def test_counters_are_exact(self, rng):
        """Each step's failed/dropped counters equal the injector's
        bookkeeping for that step's slice of the call stream."""
        _models, translators = drifting_sequence()
        injector = FaultInjector(seed=3, error_rate=0.2, nan_rate=0.05)
        faulty = [FaultyTranslator(t, injector) for t in translators]
        initial = posterior_input(translators[0].source, rng, 300)
        steps = infer_sequence(faulty, initial, rng, resample="never", fault_policy="drop")
        total_failed = sum(s.stats.failed for s in steps)
        total_dropped = sum(s.stats.dropped for s in steps)
        # Under drop there are no retries: one translate call per particle,
        # and every error/NaN injection fails exactly one particle.
        assert injector.calls == sum(s.stats.num_traces for s in steps)
        assert total_failed == injector.injected["error"] + injector.injected["nan"]
        assert total_dropped == total_failed
        assert all(s.stats.retried == 0 and s.stats.regenerated == 0 for s in steps)

    def test_dropped_particles_carry_zero_weight(self, burglary_translator, burglary_original, rng):
        injector = FaultInjector(at_calls={1: "error", 3: "error"})
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 6)
        step = infer(faulty, collection, rng, fault_policy="drop")
        assert step.stats.dropped == 2
        assert sum(1 for w in step.collection.log_weights if w == NEG_INF) == 2

    def test_estimates_survive_dropping(self, burglary_translator, burglary_original, burglary_refined, rng):
        """Survivors are untouched by the faults, so the self-normalized
        estimate still targets the refined posterior."""
        injector = FaultInjector(seed=11, error_rate=0.2)
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 8000)
        step = infer(faulty, collection, rng, fault_policy="drop")
        truth = exact_choice_marginal(burglary_refined, "burglary")[1]
        estimate = step.collection.estimate_probability(lambda u: u["burglary"] == 1)
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_injected_neg_inf_is_a_weight_not_a_fault(self, burglary_translator, burglary_original, rng):
        """-inf is a legitimate log weight (zero-probability trace): the
        particle dies by normalization, not by the fault machinery."""
        injector = FaultInjector(at_calls={0: "neg_inf"})
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 4)
        step = infer(faulty, collection, rng, fault_policy="drop")
        assert step.stats.failed == 0
        assert step.collection.log_weights[0] == NEG_INF

    def test_total_collapse_raises_degeneracy_error(self, burglary_translator, burglary_original, rng):
        injector = FaultInjector(error_rate=1.0)
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 8)
        with pytest.raises(DegeneracyError) as excinfo:
            infer(faulty, collection, rng, fault_policy="drop")
        assert isinstance(excinfo.value, ValueError)  # backwards compatible
        assert excinfo.value.num_particles == 8

    def test_degeneracy_error_carries_step_index(self, rng):
        _models, translators = drifting_sequence()
        # Step 0 is clean; every call of step 1 (particles 10..19) fails.
        injector = FaultInjector(at_calls={i: "error" for i in range(10, 20)})
        faulty = [FaultyTranslator(t, injector) for t in translators]
        initial = posterior_input(translators[0].source, rng, 10)
        with pytest.raises(DegeneracyError) as excinfo:
            infer_sequence(faulty, initial, rng, resample="never", fault_policy="drop")
        assert excinfo.value.step == 1
        assert "step 1" in str(excinfo.value)


class TestRegeneratePolicy:
    def test_sequence_completes_with_20_percent_faults(self, rng):
        _models, translators = drifting_sequence()
        injector = FaultInjector(seed=5, error_rate=0.2)
        faulty = [FaultyTranslator(t, injector) for t in translators]
        initial = posterior_input(translators[0].source, rng, 400)
        policy = FaultPolicy(mode="regenerate", max_retries=2)
        steps = infer_sequence(faulty, initial, rng, resample="adaptive", fault_policy=policy)
        assert len(steps) == 3
        assert sum(s.stats.failed for s in steps) > 0

    def test_recovers_burglary_posterior(self, burglary_translator, burglary_original, burglary_refined, rng):
        """Acceptance: at a 20% seeded failure rate the regenerate policy
        keeps the posterior estimate within tolerance of enumeration."""
        injector = FaultInjector(seed=13, error_rate=0.2)
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 8000)
        policy = FaultPolicy(mode="regenerate", max_retries=2)
        step = infer(faulty, collection, rng, fault_policy=policy)
        truth = exact_choice_marginal(burglary_refined, "burglary")[1]
        estimate = step.collection.estimate_probability(lambda u: u["burglary"] == 1)
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_forced_regeneration_stays_within_tolerance(self, burglary_translator, burglary_original, burglary_refined, rng):
        """With retries disabled every fault regenerates from the prior;
        the regenerated subpopulation is itself properly weighted, so the
        mixed estimate stays consistent."""
        injector = FaultInjector(seed=17, error_rate=0.3)
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 8000)
        policy = FaultPolicy(mode="regenerate", max_retries=0)
        step = infer(faulty, collection, rng, fault_policy=policy)
        assert step.stats.regenerated > 0.2 * len(collection)
        truth = exact_choice_marginal(burglary_refined, "burglary")[1]
        estimate = step.collection.estimate_probability(lambda u: u["burglary"] == 1)
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_retry_salvages_the_particle(self, burglary_translator, burglary_original, rng):
        """A single injected failure with retries enabled is absorbed by a
        retry: no drop, no regeneration."""
        injector = FaultInjector(at_calls={0: "error"})
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 4)
        policy = FaultPolicy(mode="regenerate", max_retries=2)
        step = infer(faulty, collection, rng, fault_policy=policy)
        stats = step.stats
        assert (stats.failed, stats.retried) == (1, 1)
        assert (stats.dropped, stats.regenerated) == (0, 0)

    def test_exhausted_retries_regenerate(self, burglary_translator, burglary_original, rng):
        """Particle 0 fails its first attempt and its single retry, then
        falls back to prior regeneration."""
        injector = FaultInjector(at_calls={0: "error", 1: "error"})
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 4)
        policy = FaultPolicy(mode="regenerate", max_retries=1)
        step = infer(faulty, collection, rng, fault_policy=policy)
        stats = step.stats
        assert (stats.failed, stats.retried, stats.regenerated) == (2, 1, 1)
        assert math.isfinite(step.collection.log_weights[0])

    def test_regenerate_requires_a_sampler(self, rng):
        """A translator without regenerate(rng) is rejected up front with
        an actionable message, not after minutes of translation."""

        class BareTranslator:
            source = None
            target = None

            def translate(self, rng, trace):  # pragma: no cover - never called
                raise AssertionError("translate must not run")

        collection = WeightedCollection(["t"], [0.0])
        with pytest.raises(ValueError, match="regenerate"):
            infer(BareTranslator(), collection, rng, fault_policy="regenerate")

    def test_counters_render_in_stats_string(self, burglary_translator, burglary_original, rng):
        injector = FaultInjector(at_calls={0: "error"})
        faulty = FaultyTranslator(burglary_translator, injector)
        collection = posterior_input(burglary_original, rng, 4)
        step = infer(faulty, collection, rng, fault_policy="drop")
        assert "faults[failed=1" in str(step.stats)


class TestMCMCFaultIsolation:
    def test_kernel_faults_are_contained_and_counted(self, rng):
        models, translators = drifting_sequence()
        kernel_injector = FaultInjector(seed=23, error_rate=0.3)
        kernels = [
            faulty_kernel(gibbs_sweep(models[i + 1], ["x"]), kernel_injector)
            for i in range(len(translators))
        ]
        initial = posterior_input(models[0], rng, 200)
        steps = infer_sequence(
            translators, initial, rng, mcmc_kernels=kernels,
            resample="always", fault_policy="drop",
        )
        assert len(steps) == 3
        assert sum(s.stats.mcmc_failed for s in steps) == kernel_injector.total_injected()

    def test_fail_fast_propagates_kernel_errors(self, rng):
        models, translators = drifting_sequence()
        kernel_injector = FaultInjector(at_calls={0: "error"})
        kernels = [faulty_kernel(gibbs_sweep(models[1], ["x"]), kernel_injector)] + [None, None]
        initial = posterior_input(models[0], rng, 20)
        with pytest.raises(TranslationError):
            infer_sequence(translators, initial, rng, mcmc_kernels=kernels)


class TestParameterValidation:
    @pytest.fixture
    def untouchable_translator(self):
        class Untouchable:
            source = None
            target = None

            def translate(self, rng, trace):  # pragma: no cover - must not run
                raise AssertionError("translate must not run")

        return Untouchable()

    @pytest.mark.parametrize("threshold", [0.0, -0.5, 1.5, float("nan")])
    def test_bad_ess_threshold_fails_before_translation(self, untouchable_translator, threshold, rng):
        collection = WeightedCollection(["t"], [0.0])
        with pytest.raises(ValueError, match="ess_threshold"):
            infer(untouchable_translator, collection, rng,
                  resample="adaptive", ess_threshold=threshold)

    def test_threshold_of_one_is_allowed(self, burglary_translator, burglary_original, rng):
        collection = posterior_input(burglary_original, rng, 20)
        step = infer(burglary_translator, collection, rng,
                     resample="adaptive", ess_threshold=1.0)
        assert step.stats.num_traces == 20

    def test_bad_scheme_fails_before_translation(self, untouchable_translator, rng):
        collection = WeightedCollection(["t"], [0.0])
        with pytest.raises(ValueError, match="resampling scheme"):
            infer(untouchable_translator, collection, rng, resampling_scheme="bogus")

    def test_infer_sequence_validates_up_front(self, untouchable_translator, rng):
        collection = WeightedCollection(["t"], [0.0])
        with pytest.raises(ValueError, match="ess_threshold"):
            infer_sequence([untouchable_translator], collection, rng, ess_threshold=2.0)
        with pytest.raises(ValueError, match="fault-policy"):
            infer_sequence([untouchable_translator], collection, rng, fault_policy="sometimes")

    def test_fault_policy_validation(self):
        with pytest.raises(ValueError, match="fault-policy"):
            FaultPolicy(mode="sometimes")
        with pytest.raises(ValueError, match="max_retries"):
            FaultPolicy(mode="regenerate", max_retries=-1)
        with pytest.raises(TypeError):
            FaultPolicy.coerce(42)
        assert FaultPolicy.coerce(None).mode == "fail_fast"
        assert FaultPolicy.coerce("drop").mode == "drop"


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        decisions = [
            [FaultInjector(seed=42, error_rate=0.3, nan_rate=0.1).decide() for _ in range(50)]
            for _ in range(2)
        ]
        assert decisions[0] == decisions[1]

    def test_at_calls_override_rates(self):
        injector = FaultInjector(seed=1, error_rate=0.0, at_calls={2: "nan"})
        assert [injector.decide() for _ in range(4)] == [None, None, "nan", None]
        assert injector.injected["nan"] == 1
        assert injector.calls == 4

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(error_rate=0.7, nan_rate=0.7)
        with pytest.raises(ValueError):
            FaultInjector(at_calls={0: "explode"})
