"""Property-based consistency tests for the execution handlers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Model
from repro.core.handlers import log_sum_exp
from repro.distributions import Categorical, Flip, Normal, UniformDiscrete


def mixed_model_fn(t, p, n):
    total = 0
    gate = t.sample(Flip(p), "gate")
    for i in range(n):
        total += t.sample(UniformDiscrete(0, 3), ("u", i))
    if gate:
        t.sample(Normal(total, 1.0), "noise")
    t.observe(Flip(0.5 if gate else 0.25), 1, "obs")
    return total


probabilities = st.floats(min_value=0.05, max_value=0.95)
sizes = st.integers(1, 5)
seeds = st.integers(0, 2**32 - 1)


class TestSimulateScoreConsistency:
    @given(probabilities, sizes, seeds)
    @settings(max_examples=50, deadline=None)
    def test_score_of_simulated_trace_matches(self, p, n, seed):
        rng = np.random.default_rng(seed)
        model = Model(mixed_model_fn, args=(p, n))
        trace = model.simulate(rng)
        rescored = model.score(trace.to_choice_map())
        assert rescored.log_prob == pytest.approx(trace.log_prob)
        assert rescored.return_value == trace.return_value

    @given(probabilities, sizes, seeds)
    @settings(max_examples=50, deadline=None)
    def test_trace_log_prob_is_sum_of_records(self, p, n, seed):
        rng = np.random.default_rng(seed)
        model = Model(mixed_model_fn, args=(p, n))
        trace = model.simulate(rng)
        total = math.fsum(r.log_prob for r in trace.choices()) + math.fsum(
            r.log_prob for r in trace.observations()
        )
        assert trace.log_prob == pytest.approx(total)

    @given(probabilities, sizes, seeds)
    @settings(max_examples=50, deadline=None)
    def test_generate_weight_decomposition(self, p, n, seed):
        """generate's log weight = constrained-choice scores + observations."""
        rng = np.random.default_rng(seed)
        model = Model(mixed_model_fn, args=(p, n))
        reference = model.simulate(rng)
        constraints = {"gate": reference["gate"]}
        trace, log_weight = model.generate(rng, constraints)
        expected = (
            trace.get_record("gate").log_prob + trace.observation_log_prob
        )
        assert log_weight == pytest.approx(expected)


class TestLogSumExp:
    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=1, max_size=20))
    def test_matches_naive(self, values):
        naive = math.log(sum(math.exp(v) for v in values))
        assert log_sum_exp(values) == pytest.approx(naive)

    def test_empty_is_neg_inf(self):
        assert log_sum_exp([]) == float("-inf")

    def test_all_neg_inf(self):
        assert log_sum_exp([float("-inf")] * 3) == float("-inf")

    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=10))
    def test_shift_invariance(self, values):
        shifted = [v + 500.0 for v in values]
        assert log_sum_exp(shifted) == pytest.approx(log_sum_exp(values) + 500.0)
