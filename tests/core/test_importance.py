"""Tests for importance sampling and rejection baselines."""

import math

import numpy as np
import pytest

from repro import Model, exact_choice_marginal, log_normalizer
from repro.core.importance import (
    importance_sampling,
    log_marginal_likelihood,
    rejection_sampling,
    sampling_importance_resampling,
)
from repro.distributions import Flip, Normal


def observed_fn(t):
    x = t.sample(Flip(0.3), "x")
    t.observe(Flip(0.9 if x else 0.1), 1, "o")
    return x


@pytest.fixture
def model():
    return Model(observed_fn)


class TestImportanceSampling:
    def test_estimate_matches_exact(self, model, rng):
        collection = importance_sampling(model, rng, 20000)
        truth = exact_choice_marginal(model, "x")[1]
        estimate = collection.estimate_probability(lambda u: u["x"] == 1)
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_log_z_estimate(self, model, rng):
        estimate = log_marginal_likelihood(model, rng, 20000)
        assert estimate == pytest.approx(log_normalizer(model), abs=0.02)

    def test_continuous_model(self, rng):
        def gaussian_fn(t):
            mu = t.sample(Normal(0.0, 1.0), "mu")
            t.observe(Normal(mu, 1.0), 1.0, "y")
            return mu

        model = Model(gaussian_fn)
        collection = importance_sampling(model, rng, 30000)
        # Conjugate posterior mean: 0.5.
        assert collection.estimate(lambda u: u["mu"]) == pytest.approx(0.5, abs=0.03)

    def test_invalid_size(self, model, rng):
        with pytest.raises(ValueError):
            importance_sampling(model, rng, 0)


class TestSIR:
    def test_resampled_collection_is_unweighted(self, model, rng):
        collection = sampling_importance_resampling(model, rng, 200, oversample=20)
        assert len(collection) == 200
        assert all(w == 0.0 for w in collection.log_weights)

    def test_distribution_approximates_posterior(self, model, rng):
        collection = sampling_importance_resampling(model, rng, 5000, oversample=10)
        truth = exact_choice_marginal(model, "x")[1]
        estimate = collection.estimate_probability(lambda u: u["x"] == 1)
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_invalid_oversample(self, model, rng):
        with pytest.raises(ValueError):
            sampling_importance_resampling(model, rng, 10, oversample=0)


class TestRejection:
    def test_samples_follow_posterior_exactly(self, model, rng):
        traces, _attempts = rejection_sampling(model, rng, 5000)
        truth = exact_choice_marginal(model, "x")[1]
        empirical = np.mean([t["x"] for t in traces])
        assert empirical == pytest.approx(truth, abs=0.02)

    def test_acceptance_rate_matches_normalizer(self, model, rng):
        """Accept probability = Z when the bound is 1 (Section 2's point
        about rejection from the prior being inefficient)."""
        traces, attempts = rejection_sampling(model, rng, 2000)
        z = math.exp(log_normalizer(model))
        assert len(traces) / attempts == pytest.approx(z, abs=0.03)

    def test_max_attempts_guard(self, model, rng):
        with pytest.raises(RuntimeError):
            rejection_sampling(model, rng, 10**6, max_attempts=100)

    def test_invalid_bound_detected(self, model, rng):
        with pytest.raises(ValueError):
            rejection_sampling(model, rng, 10, log_likelihood_bound=-10.0)


class TestNewDistributions:
    def test_poisson_matches_scipy(self):
        from scipy import stats

        from repro.distributions import Poisson

        dist = Poisson(3.5)
        for k in range(10):
            assert dist.log_prob(k) == pytest.approx(stats.poisson.logpmf(k, 3.5))
        assert dist.log_prob(-1) == float("-inf")
        with pytest.raises(ValueError):
            Poisson(0.0)

    def test_exponential_matches_scipy(self):
        from scipy import stats

        from repro.distributions import Exponential

        dist = Exponential(2.0)
        for x in (0.1, 1.0, 4.0):
            assert dist.log_prob(x) == pytest.approx(stats.expon.logpdf(x, scale=0.5))
        assert dist.log_prob(-0.1) == float("-inf")
        with pytest.raises(ValueError):
            Exponential(-1.0)

    def test_poisson_sampling_mean(self, rng):
        from repro.distributions import Poisson

        samples = [Poisson(4.0).sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(4.0, abs=0.05)

    def test_exponential_sampling_mean(self, rng):
        from repro.distributions import Exponential

        samples = [Exponential(2.0).sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(0.5, abs=0.01)
