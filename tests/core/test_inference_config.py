"""InferenceConfig API: validation, shims, and the null-instrumentation identity.

The two contracts the redesign must not break:

* the deprecated per-parameter keywords produce **identical** results to
  the equivalent ``InferenceConfig`` for a fixed seed (the shims change
  the spelling, never the sampled numbers);
* attaching real observability sinks never touches the RNG stream, so
  estimates and ``SMCStats`` are byte-identical with tracing on or off.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    FaultPolicy,
    InferenceConfig,
    Model,
    WeightedCollection,
    infer,
    infer_sequence,
)
from repro.distributions import Flip
from repro.observability import (
    NULL_HOOKS,
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    RecordingHooks,
    Tracer,
)


def original_fn(t):
    burglary = t.sample(Flip(0.02), "burglary")
    alarm = t.sample(Flip(0.9 if burglary else 0.01), "alarm")
    t.observe(Flip(0.8 if alarm else 0.05), 1, "mary_wakes")
    return burglary


def refined_fn(t):
    burglary = t.sample(Flip(0.02), "burglary")
    earthquake = t.sample(Flip(0.005), "earthquake")
    p_alarm = 0.95 if earthquake else (0.9 if burglary else 0.01)
    alarm = t.sample(Flip(p_alarm), "alarm")
    p_wakes = (0.9 if earthquake else 0.8) if alarm else 0.05
    t.observe(Flip(p_wakes), 1, "mary_wakes")
    return burglary


@pytest.fixture
def translator():
    return CorrespondenceTranslator(
        Model(original_fn, name="original"),
        Model(refined_fn, name="refined"),
        Correspondence.identity(["burglary", "alarm"]),
    )


def make_collection(translator, seed=2018, size=30):
    rng = np.random.default_rng(seed)
    return WeightedCollection.uniform(
        [translator.source.simulate(rng) for _ in range(size)]
    )


class TestConfigValidation:
    def test_defaults(self):
        config = InferenceConfig()
        assert config.resample == "never"
        assert config.ess_threshold == 0.5
        assert config.resampling_scheme == "multinomial"
        assert config.use_weights is True
        assert isinstance(config.fault_policy, FaultPolicy)
        assert config.fault_policy.mode == "fail_fast"
        assert config.tracer is NULL_TRACER
        assert config.metrics is NULL_METRICS
        assert config.hooks is NULL_HOOKS
        assert config.observability_enabled is False

    def test_eager_validation(self):
        with pytest.raises(ValueError, match="resample"):
            InferenceConfig(resample="sometimes")
        with pytest.raises(ValueError, match="ess_threshold"):
            InferenceConfig(ess_threshold=2.0)
        with pytest.raises(ValueError, match="scheme"):
            InferenceConfig(resampling_scheme="bogus")
        with pytest.raises(ValueError, match="fault-policy"):
            InferenceConfig(fault_policy="explode")

    def test_fault_policy_coercion(self):
        assert InferenceConfig(fault_policy="drop").fault_policy.mode == "drop"
        assert InferenceConfig(fault_policy=None).fault_policy.mode == "fail_fast"
        policy = FaultPolicy(mode="regenerate", max_retries=5)
        assert InferenceConfig(fault_policy=policy).fault_policy is policy

    def test_frozen(self):
        config = InferenceConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.resample = "always"

    def test_replace_revalidates(self):
        config = InferenceConfig()
        assert config.replace(resample="always").resample == "always"
        with pytest.raises(ValueError):
            config.replace(ess_threshold=-1.0)

    def test_observability_enabled_detects_sinks(self):
        assert InferenceConfig(tracer=Tracer()).observability_enabled
        assert InferenceConfig(metrics=MetricsRegistry()).observability_enabled
        assert InferenceConfig(hooks=RecordingHooks()).observability_enabled

    def test_rng_from_seed_is_deterministic(self):
        config = InferenceConfig(seed=7)
        assert config.rng().random() == config.rng().random()


class TestDeprecationShims:
    def test_legacy_keyword_warns(self, translator):
        collection = make_collection(translator)
        with pytest.warns(DeprecationWarning, match="InferenceConfig"):
            infer(translator, collection, np.random.default_rng(0), resample="always")

    def test_legacy_sequence_keyword_warns(self, translator):
        collection = make_collection(translator)
        with pytest.warns(DeprecationWarning, match="InferenceConfig"):
            infer_sequence(
                [translator],
                collection,
                np.random.default_rng(0),
                ess_threshold=0.25,
            )

    def test_config_path_does_not_warn(self, translator):
        collection = make_collection(translator)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            infer(
                translator,
                collection,
                np.random.default_rng(0),
                config=InferenceConfig(resample="always"),
            )
            infer_sequence(
                [translator],
                collection,
                np.random.default_rng(0),
                config=InferenceConfig(),
            )

    def test_legacy_and_config_together_rejected(self, translator):
        collection = make_collection(translator)
        with pytest.raises(TypeError, match="config"):
            infer(
                translator,
                collection,
                np.random.default_rng(0),
                resample="always",
                config=InferenceConfig(),
            )

    def test_legacy_values_still_validated(self, translator):
        collection = make_collection(translator)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="resample"):
                infer(translator, collection, np.random.default_rng(0), resample="bogus")

    def test_legacy_matches_config_exactly(self, translator):
        collection = make_collection(translator)
        with pytest.warns(DeprecationWarning):
            legacy = infer(
                translator,
                collection,
                np.random.default_rng(42),
                resample="always",
                resampling_scheme="systematic",
            )
        modern = infer(
            translator,
            collection,
            np.random.default_rng(42),
            config=InferenceConfig(resample="always", resampling_scheme="systematic"),
        )
        assert legacy.stats.ess_before_resample == modern.stats.ess_before_resample
        assert legacy.collection.log_weights == modern.collection.log_weights
        assert [t.choices() for t in legacy.collection.items] == [
            t.choices() for t in modern.collection.items
        ]

    def test_rng_falls_back_to_config_seed(self, translator):
        collection = make_collection(translator)
        seeded = infer(translator, collection, config=InferenceConfig(seed=11))
        explicit = infer(
            translator, collection, np.random.default_rng(11), config=InferenceConfig()
        )
        assert seeded.collection.log_weights == explicit.collection.log_weights

    def test_missing_rng_and_seed_is_an_error(self, translator):
        collection = make_collection(translator)
        with pytest.raises(TypeError, match="rng"):
            infer(translator, collection)
        with pytest.raises(TypeError, match="rng"):
            infer_sequence([translator], collection)


class TestNullInstrumentationIdentity:
    def run_once(self, translator, config):
        collection = make_collection(translator)
        return infer(translator, collection, np.random.default_rng(99), config=config)

    def test_tracer_never_perturbs_rng_stream(self, translator):
        plain = self.run_once(translator, InferenceConfig(resample="always"))
        traced = self.run_once(
            translator,
            InferenceConfig(
                resample="always",
                tracer=Tracer(),
                metrics=MetricsRegistry(),
                hooks=RecordingHooks(),
            ),
        )
        # Byte-identical collections: same traces, same weights.
        assert plain.collection.log_weights == traced.collection.log_weights
        assert [t.choices() for t in plain.collection.items] == [
            t.choices() for t in traced.collection.items
        ]

    def test_stats_identical_up_to_timing(self, translator):
        plain = self.run_once(translator, InferenceConfig())
        traced = self.run_once(translator, InferenceConfig(tracer=Tracer()))
        exclude = {"translate_seconds", "mcmc_seconds"}
        plain_fields = {
            k: v for k, v in dataclasses.asdict(plain.stats).items() if k not in exclude
        }
        traced_fields = {
            k: v for k, v in dataclasses.asdict(traced.stats).items() if k not in exclude
        }
        assert plain_fields == traced_fields

    def test_stats_timing_reads_from_tracer_spans(self, translator):
        tracer = Tracer()
        step = self.run_once(translator, InferenceConfig(tracer=tracer))
        assert step.stats.translate_seconds == tracer.durations("smc.translate")[0]
        assert step.stats.mcmc_seconds == tracer.durations("smc.mcmc")[0]

    def test_phase_durations_sum_within_step(self, translator):
        tracer = Tracer()
        # Enough particles that translation dominates the fixed per-step
        # bookkeeping (ESS, weight normalisation) between phases.
        collection = make_collection(translator, size=400)
        infer(
            translator,
            collection,
            np.random.default_rng(99),
            config=InferenceConfig(resample="always", tracer=tracer),
        )
        (step_span,) = tracer.spans("smc.step")
        phase_total = sum(child.duration for child in step_span.children)
        assert phase_total <= step_span.duration
        # Phase spans cover at least 95% of the step (acceptance criterion).
        assert phase_total >= 0.95 * step_span.duration

    def test_per_particle_spans_recorded(self, translator):
        tracer = Tracer()
        step = self.run_once(translator, InferenceConfig(tracer=tracer))
        particles = tracer.spans("translate.particle")
        assert len(particles) == step.stats.num_traces
        # Translator-level sub-spans nest inside each particle span.
        assert [c.name for c in particles[0].children] == [
            "translate.forward",
            "translate.backward",
        ]

    def test_reuse_counters_reported(self, translator):
        tracer = Tracer()
        metrics = MetricsRegistry()
        self.run_once(translator, InferenceConfig(tracer=tracer, metrics=metrics))
        (step_span,) = tracer.spans("smc.step")
        reused = metrics.counter("translate.choices_reused").value
        fresh = metrics.counter("translate.choices_fresh").value
        assert reused == step_span.total("choices.reused")
        assert fresh == step_span.total("choices.fresh")
        # The identity correspondence reuses burglary+alarm; earthquake
        # is always fresh.
        assert reused > 0 and fresh > 0

    def test_metrics_tally_particles(self, translator):
        metrics = MetricsRegistry()
        step = self.run_once(translator, InferenceConfig(metrics=metrics))
        assert metrics.counter("smc.steps").value == 1
        assert (
            metrics.counter("smc.particles_translated").value == step.stats.num_traces
        )
        assert metrics.histogram("smc.ess_before_resample").count == 1
