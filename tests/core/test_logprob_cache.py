"""Tests for the reuse-aware log-prob cache (LogProbCache).

The cache's contract has two halves: it must be *transparent* (a cached
score is bitwise identical to recomputation, so inference results never
change) and it must be *effective* (seeding from the source trace makes
the backward kernel's replay hit, and unchanged forward reuses copy the
record's log_prob without scoring at all).
"""

import numpy as np
import pytest

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    LogProbCache,
    Model,
    WeightedCollection,
    infer,
)
from repro.distributions import Flip, Normal
from repro.distributions.base import Distribution


class CountingFlip(Flip):
    """Flip that counts every real log_prob evaluation."""

    evaluations = 0

    def log_prob(self, value):
        type(self).evaluations += 1
        return super().log_prob(value)


class TestLogProbCache:
    def test_hits_and_misses(self):
        cache = LogProbCache()
        dist = Flip(0.3)
        first = cache.score("x", dist, 1)
        second = cache.score("x", dist, 1)
        assert first == second == dist.log_prob(1)
        assert cache.hits == 1 and cache.misses == 1

    def test_key_includes_address_dist_and_value(self):
        cache = LogProbCache()
        cache.score("x", Flip(0.3), 1)
        cache.score("y", Flip(0.3), 1)  # different address
        cache.score("x", Flip(0.4), 1)  # different params
        cache.score("x", Flip(0.3), 0)  # different value
        assert cache.hits == 0 and cache.misses == 4

    def test_bitwise_identical_to_recomputation(self):
        cache = LogProbCache()
        dist = Normal(0.25, 1.75)
        value = 0.123456789
        cache.score("z", dist, value)
        assert cache.score("z", dist, value).hex() == dist.log_prob(value).hex()

    def test_unhashable_value_scores_directly(self):
        class AnyValueFlip(Flip):
            def log_prob(self, value):
                return -1.25

        cache = LogProbCache()
        dist = AnyValueFlip(0.5)
        # The TypeError guard turns the lookup into a direct call: an
        # unhashable (list) value is scored but never stored.
        for _ in range(2):
            assert cache.score("x", dist, [1, 2]) == -1.25
        assert cache.hits == 0 and cache.misses == 2
        assert cache.cache_info()["entries"] == 0

    def test_seed_trace_populates_without_counting(self):
        model = Model(lambda t: t.sample(Flip(0.6), "x"))
        trace = model.simulate(np.random.default_rng(0))
        cache = LogProbCache()
        cache.seed_trace(trace)
        assert cache.hits == 0 and cache.misses == 0
        (record,) = trace.choices()
        assert cache.score(record.address, record.dist, record.value) == record.log_prob
        assert cache.hits == 1

    def test_overflow_clears_wholesale(self):
        cache = LogProbCache(max_entries=2)
        for value in (0, 1):
            cache.score("x", Flip(0.5), value)
        assert cache.cache_info()["entries"] == 2
        cache.score("y", Flip(0.5), 0)  # triggers the clear, then inserts
        assert cache.cache_info()["entries"] == 1

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LogProbCache(max_entries=0)

    def test_hit_rate_and_info(self):
        cache = LogProbCache()
        assert cache.hit_rate() == 0.0
        cache.score("x", Flip(0.5), 1)
        cache.score("x", Flip(0.5), 1)
        cache.reuse_hits += 2
        assert cache.total_hits == 3
        assert cache.hit_rate() == pytest.approx(3 / 4)
        info = cache.cache_info()
        assert info["hits"] == 1 and info["reuse_hits"] == 2 and info["misses"] == 1


def _flip_translator(**kwargs):
    source = Model(lambda t: t.sample(Flip(0.5), "x"), name="p")
    target = Model(lambda t: t.sample(Flip(0.8), "x"), name="q")
    return CorrespondenceTranslator(
        source, target, Correspondence.identity(["x"]), **kwargs
    )


class TestTranslatorIntegration:
    def test_cache_disabled_by_default(self):
        # BENCH_smc.json: the cache costs more than these densities save
        # (fig8@100: 0.52s/step on vs 0.42s off), so it is opt-in.
        translator = _flip_translator()
        assert translator.cache is None
        assert translator.cache_info() is None

    def test_cache_can_be_enabled(self):
        translator = _flip_translator(log_prob_cache=True)
        assert translator.cache is not None
        assert translator.cache_info()["misses"] == 0

    def test_capacity_is_configurable(self):
        translator = _flip_translator(log_prob_cache=True, cache_max_entries=17)
        assert translator.cache.max_entries == 17

    def test_inverse_propagates_cache_settings(self):
        inverse = _flip_translator(log_prob_cache=True, cache_max_entries=17).inverse()
        assert inverse.cache.max_entries == 17
        assert _flip_translator().inverse().cache is None

    def test_translation_results_identical_with_and_without_cache(self):
        """The acceptance gate: memoization never changes the numbers."""
        fingerprints = []
        for cached in (True, False):
            translator = _flip_translator(log_prob_cache=cached)
            rng = np.random.default_rng(42)
            traces = [translator.source.simulate(rng) for _ in range(50)]
            step = infer(translator, WeightedCollection.uniform(traces), rng)
            fingerprints.append(
                [
                    (tuple(t.choices()), t.log_prob, w.hex())
                    for t, w in zip(step.collection.items, step.collection.log_weights)
                ]
            )
        assert fingerprints[0] == fingerprints[1]

    def test_translate_records_hits(self):
        translator = _flip_translator(log_prob_cache=True)
        rng = np.random.default_rng(3)
        trace = translator.source.simulate(rng)
        translator.translate(rng, trace)
        info = translator.cache_info()
        assert info["hits"] + info["reuse_hits"] > 0

    def test_cache_elides_repeat_evaluations(self):
        CountingFlip.evaluations = 0
        source = Model(lambda t: t.sample(CountingFlip(0.5), "x"), name="p")
        target = Model(lambda t: t.sample(CountingFlip(0.8), "x"), name="q")
        translator = CorrespondenceTranslator(
            source, target, Correspondence.identity(["x"]), log_prob_cache=True
        )
        rng = np.random.default_rng(3)
        trace = source.simulate(rng)
        translator.translate(rng, trace)
        with_cache = CountingFlip.evaluations

        CountingFlip.evaluations = 0
        uncached = CorrespondenceTranslator(
            source, target, Correspondence.identity(["x"]), log_prob_cache=False
        )
        rng = np.random.default_rng(3)
        trace = source.simulate(rng)
        uncached.translate(rng, trace)
        assert with_cache < CountingFlip.evaluations

    def test_non_cacheable_distributions_always_evaluate(self):
        class Stateful(Flip):
            cacheable_log_prob = False
            calls = 0

            def log_prob(self, value):
                type(self).calls += 1
                return super().log_prob(value)

        cache = LogProbCache()
        dist = Stateful(0.5)
        trace = Model(lambda t: t.sample(dist, "x")).simulate(np.random.default_rng(0))
        cache.seed_trace(trace)
        assert cache.cache_info()["entries"] == 0  # seeding skipped it

    def test_distribution_default_is_cacheable(self):
        assert Distribution.cacheable_log_prob is True
        assert Flip(0.5).cacheable_log_prob is True
