"""Section 5.4: correspondence for loop-indexed random choices.

The geometric program of Figure 6 makes an unbounded number of flips,
indexed by iteration; changing the success probability from 1/2 to 1/3
uses the identity correspondence over the loop indices.
"""

import math

import numpy as np
import pytest

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    Model,
    WeightedCollection,
)
from repro.distributions import Flip, Geometric


def geometric_fn(t, p):
    """Figure 6: count flips until the first failure (n starts at 1)."""
    n = 1
    i = 0
    while t.sample(Flip(p), ("flip", i)):
        n += 1
        i += 1
    return n


@pytest.fixture
def rng():
    return np.random.default_rng(55)


class TestGeometricTranslation:
    def test_trace_translates_with_loop_correspondence(self, rng):
        p = Model(geometric_fn, args=(0.5,))
        q = Model(geometric_fn, args=(1 / 3,))
        correspondence = Correspondence.identity_by_predicate(
            lambda address: address[0] == "flip"
        )
        translator = CorrespondenceTranslator(p, q, correspondence)
        # A trace with three successes then a failure: n = 4.
        choices = {("flip", i): 1 for i in range(3)}
        choices[("flip", 3)] = 0
        trace = p.score(choices)
        result = translator.translate(rng, trace)
        assert result.trace.return_value == 4
        # Every flip is reused; weight is the product of density ratios.
        expected = 3 * (math.log(1 / 3) - math.log(1 / 2)) + (
            math.log(2 / 3) - math.log(1 / 2)
        )
        assert result.log_weight == pytest.approx(expected)

    def test_translated_collection_matches_target_distribution(self, rng):
        p = Model(geometric_fn, args=(0.5,))
        q = Model(geometric_fn, args=(1 / 3,))
        correspondence = Correspondence.identity_by_predicate(
            lambda address: address[0] == "flip"
        )
        translator = CorrespondenceTranslator(p, q, correspondence)
        traces, weights = [], []
        for _ in range(30000):
            source_trace = p.simulate(rng)
            result = translator.translate(rng, source_trace)
            traces.append(result.trace)
            weights.append(result.log_weight)
        collection = WeightedCollection(traces, weights)
        # n - 1 ~ Geometric(1/3): check the first few probabilities.
        target = Geometric(1 / 3)
        for n in (1, 2, 3):
            estimate = collection.estimate_probability(
                lambda u, n=n: u.return_value == n
            )
            assert estimate == pytest.approx(math.exp(target.log_prob(n - 1)), abs=0.02)

    def test_mean_weight_is_one(self, rng):
        """No observations: Z_P = Z_Q = 1, so E[ŵ] = 1 (Lemma 6)."""
        p = Model(geometric_fn, args=(0.5,))
        q = Model(geometric_fn, args=(0.4,))
        correspondence = Correspondence.identity_by_predicate(
            lambda address: address[0] == "flip"
        )
        translator = CorrespondenceTranslator(p, q, correspondence)
        weights = [
            math.exp(translator.translate(rng, p.simulate(rng)).log_weight)
            for _ in range(20000)
        ]
        assert np.mean(weights) == pytest.approx(1.0, rel=0.05)
