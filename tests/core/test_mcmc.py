"""Tests for MCMC kernels: posterior invariance and convergence."""

import math

import numpy as np
import pytest

from repro import Model, exact_choice_marginal
from repro.core.mcmc import (
    chain,
    cycle,
    gibbs_site,
    gibbs_sweep,
    independent_mh_site,
    regenerate,
    repeat,
    single_site_mh,
)
from repro.distributions import Flip, Normal, UniformDiscrete


def observed_coin_fn(t):
    x = t.sample(Flip(0.5), "x")
    t.observe(Flip(0.9 if x else 0.2), 1, "o")
    return x


def chain_model_fn(t):
    x = t.sample(Flip(0.5), "x")
    y = t.sample(Flip(0.8 if x else 0.3), "y")
    t.observe(Flip(0.9 if y else 0.1), 1, "o")
    return (x, y)


@pytest.fixture
def observed_coin():
    return Model(observed_coin_fn)


@pytest.fixture
def chain_model():
    return Model(chain_model_fn)


def empirical_marginal(traces, address):
    return np.mean([t[address] for t in traces])


class TestRegenerate:
    def test_reuses_constrained_choices(self, chain_model, rng):
        base = chain_model.score({"x": 1, "y": 0})
        new_trace, fresh, used = regenerate(chain_model, rng, base.to_choice_map())
        assert new_trace["x"] == 1 and new_trace["y"] == 0
        assert fresh == 0.0
        assert used == {("x",), ("y",)}

    def test_samples_missing_choices(self, chain_model, rng):
        from repro import ChoiceMap

        new_trace, fresh, used = regenerate(chain_model, rng, ChoiceMap({"x": 1}))
        assert new_trace["x"] == 1
        assert "y" in new_trace
        assert fresh == pytest.approx(new_trace.get_record("y").log_prob)

    def test_impossible_constraint_gives_neg_inf(self, rng):
        def model_fn(t):
            t.sample(Flip(1.0), "x")

        model = Model(model_fn)
        from repro import ChoiceMap

        trace, _fresh, _used = regenerate(model, rng, ChoiceMap({"x": 0}))
        assert trace.log_prob == float("-inf")


class TestGibbs:
    def test_gibbs_site_matches_exact_conditional(self, observed_coin, rng):
        kernel = gibbs_site(observed_coin, "x")
        # Gibbs on a single-variable model samples the posterior directly.
        truth = exact_choice_marginal(observed_coin, "x")[1]
        trace = observed_coin.simulate(rng)
        samples = []
        for _ in range(4000):
            trace = kernel(rng, trace)
            samples.append(trace["x"])
        assert np.mean(samples) == pytest.approx(truth, abs=0.02)

    def test_gibbs_sweep_converges(self, chain_model, rng):
        kernel = gibbs_sweep(chain_model, ["x", "y"])
        states = chain(chain_model, kernel, rng, iterations=4000, burn_in=200)
        truth_x = exact_choice_marginal(chain_model, "x")[1]
        truth_y = exact_choice_marginal(chain_model, "y")[1]
        assert empirical_marginal(states, "x") == pytest.approx(truth_x, abs=0.03)
        assert empirical_marginal(states, "y") == pytest.approx(truth_y, abs=0.03)

    def test_gibbs_requires_finite_support(self, rng):
        def model_fn(t):
            t.sample(Normal(0, 1), "x")

        model = Model(model_fn)
        kernel = gibbs_site(model, "x")
        with pytest.raises(ValueError):
            kernel(rng, model.simulate(rng))


class TestIndependentMH:
    def test_converges_to_posterior(self, observed_coin, rng):
        kernel = independent_mh_site(observed_coin, "x")
        states = chain(observed_coin, kernel, rng, iterations=8000, burn_in=500)
        truth = exact_choice_marginal(observed_coin, "x")[1]
        assert empirical_marginal(states, "x") == pytest.approx(truth, abs=0.03)

    def test_cycle_of_sites_converges(self, chain_model, rng):
        kernel = cycle(
            [independent_mh_site(chain_model, "x"), independent_mh_site(chain_model, "y")]
        )
        states = chain(chain_model, kernel, rng, iterations=8000, burn_in=500)
        truth_x = exact_choice_marginal(chain_model, "x")[1]
        assert empirical_marginal(states, "x") == pytest.approx(truth_x, abs=0.03)

    def test_continuous_site(self, rng):
        def model_fn(t):
            mu = t.sample(Normal(0.0, 1.0), "mu")
            t.observe(Normal(mu, 0.5), 1.0, "y")

        model = Model(model_fn)
        kernel = repeat(independent_mh_site(model, "mu"), 5)
        states = chain(model, kernel, rng, iterations=4000, burn_in=500)
        # Conjugate posterior: precision 1 + 4, mean = (4*1.0)/5 = 0.8
        values = [t["mu"] for t in states]
        assert np.mean(values) == pytest.approx(0.8, abs=0.05)


class TestSingleSiteMH:
    def test_converges_on_fixed_structure(self, chain_model, rng):
        kernel = repeat(single_site_mh(chain_model), 4)
        states = chain(chain_model, kernel, rng, iterations=8000, burn_in=1000)
        truth_x = exact_choice_marginal(chain_model, "x")[1]
        truth_y = exact_choice_marginal(chain_model, "y")[1]
        assert empirical_marginal(states, "x") == pytest.approx(truth_x, abs=0.03)
        assert empirical_marginal(states, "y") == pytest.approx(truth_y, abs=0.03)

    def test_converges_with_structure_change(self, rng):
        """Model whose address set depends on a branch choice."""

        def branching_fn(t):
            a = t.sample(Flip(0.4), "a")
            if a:
                b = t.sample(Flip(0.9), "b1")
            else:
                b = t.sample(Flip(0.2), "b2")
            t.observe(Flip(0.8 if b else 0.1), 1, "o")
            return a

        model = Model(branching_fn)
        kernel = repeat(single_site_mh(model), 4)
        states = chain(model, kernel, rng, iterations=12000, burn_in=2000)
        truth = exact_choice_marginal(model, "a")[1]
        assert empirical_marginal(states, "a") == pytest.approx(truth, abs=0.04)


class TestCombinators:
    def test_repeat_zero_is_identity(self, observed_coin, rng):
        trace = observed_coin.simulate(rng)
        kernel = repeat(independent_mh_site(observed_coin, "x"), 0)
        assert kernel(rng, trace) is trace

    def test_repeat_negative_raises(self, observed_coin):
        with pytest.raises(ValueError):
            repeat(independent_mh_site(observed_coin, "x"), -1)

    def test_chain_thinning(self, observed_coin, rng):
        kernel = independent_mh_site(observed_coin, "x")
        states = chain(observed_coin, kernel, rng, iterations=100, burn_in=10, thin=10)
        assert len(states) == 9

    def test_chain_invalid_thin(self, observed_coin, rng):
        with pytest.raises(ValueError):
            chain(observed_coin, lambda r, t: t, rng, iterations=10, thin=0)


class TestCustomMH:
    def test_asymmetric_proposal_converges(self, rng):
        """A log-normal multiplicative proposal (asymmetric) still
        targets the correct posterior thanks to the Hastings ratio."""
        from repro.core.mcmc import custom_mh_site
        from repro.distributions import Gamma, LogNormal

        def model_fn(t):
            rate = t.sample(Gamma(2.0, 1.0), "rate")
            t.observe(Normal(rate, 0.5), 2.0, "y")
            return rate

        model = Model(model_fn)

        def propose(rng_, current):
            return float(current * np.exp(0.3 * rng_.standard_normal()))

        def proposal_log_prob(from_value, to_value):
            return LogNormal(np.log(from_value), 0.3).log_prob(to_value)

        kernel = repeat(custom_mh_site(model, "rate", propose, proposal_log_prob), 3)
        states = chain(model, kernel, rng, iterations=8000, burn_in=1000)
        values = [t["rate"] for t in states]

        # Reference: self-normalized importance sampling from the prior.
        reference_rng = np.random.default_rng(1)
        samples, weights = [], []
        for _ in range(60000):
            trace = model.simulate(reference_rng)
            samples.append(trace["rate"])
            weights.append(np.exp(trace.observation_log_prob))
        reference = float(np.average(samples, weights=weights))
        assert np.mean(values) == pytest.approx(reference, abs=0.05)

    def test_rejects_to_same_trace(self, rng):
        from repro.core.mcmc import custom_mh_site

        def model_fn(t):
            t.sample(Normal(0.0, 1.0), "x")

        model = Model(model_fn)
        # A proposal that always jumps to an absurd value is always rejected.
        kernel = custom_mh_site(
            model,
            "x",
            propose=lambda _r, _v: 1e6,
            proposal_log_prob=lambda _f, _t: 0.0,
        )
        trace = model.simulate(rng)
        assert kernel(rng, trace) is trace
