"""Tests for the Model API and execution handlers."""

import math

import pytest

from repro import Model, probabilistic
from repro.core.handlers import ImpossibleConstraintError, MissingChoiceError
from repro.distributions import Flip, Normal, UniformDiscrete


def two_flips(t, p):
    x = t.sample(Flip(p), "x")
    y = t.sample(Flip(0.9 if x else 0.1), "y")
    return x + y


class TestSimulate:
    def test_trace_contains_all_choices(self, rng):
        trace = Model(two_flips, args=(0.5,)).simulate(rng)
        assert set(trace.addresses()) == {("x",), ("y",)}
        assert trace.return_value == trace["x"] + trace["y"]

    def test_log_prob_consistent(self, rng):
        model = Model(two_flips, args=(0.3,))
        trace = model.simulate(rng)
        x, y = trace["x"], trace["y"]
        expected = Flip(0.3).log_prob(x) + Flip(0.9 if x else 0.1).log_prob(y)
        assert trace.log_prob == pytest.approx(expected)

    def test_observed_address_becomes_observation(self, rng):
        model = Model(two_flips, args=(0.5,), observations={"y": 1})
        trace = model.simulate(rng)
        assert "y" not in trace
        assert trace.has_observation("y")
        assert trace.observation_addresses() == [("y",)]

    def test_inline_observe(self, rng, burglary_original):
        trace = burglary_original.simulate(rng)
        assert trace.has_observation("mary_wakes")
        assert trace.get_observation("mary_wakes").value == 1


class TestGenerate:
    def test_constrained_value_is_used(self, rng):
        model = Model(two_flips, args=(0.5,))
        trace, log_weight = model.generate(rng, {"x": 1})
        assert trace["x"] == 1
        assert log_weight == pytest.approx(math.log(0.5))

    def test_weight_includes_observations(self, rng):
        model = Model(two_flips, args=(0.5,), observations={"y": 1})
        trace, log_weight = model.generate(rng, {"x": 1})
        assert log_weight == pytest.approx(math.log(0.5) + math.log(0.9))

    def test_impossible_constraint_raises(self, rng):
        model = Model(two_flips, args=(1.0,))
        with pytest.raises(ImpossibleConstraintError):
            model.generate(rng, {"x": 0})

    def test_unconstrained_generate_has_observation_weight(self, rng, burglary_original):
        trace, log_weight = burglary_original.generate(rng)
        assert log_weight == pytest.approx(trace.observation_log_prob)


class TestScore:
    def test_score_replays_deterministically(self):
        model = Model(two_flips, args=(0.25,))
        trace = model.score({"x": 1, "y": 0})
        assert trace.log_prob == pytest.approx(math.log(0.25) + math.log(0.1))

    def test_missing_choice_raises(self):
        model = Model(two_flips, args=(0.25,))
        with pytest.raises(MissingChoiceError):
            model.score({"x": 1})

    def test_extra_choices_are_ignored(self):
        model = Model(two_flips, args=(0.25,))
        trace = model.score({"x": 0, "y": 1, "unused": 5})
        assert set(trace.addresses()) == {("x",), ("y",)}

    def test_log_prob_shortcut(self):
        model = Model(two_flips, args=(0.25,))
        assert model.log_prob({"x": 1, "y": 1}) == pytest.approx(
            math.log(0.25) + math.log(0.9)
        )


class TestModelDerivation:
    def test_with_args(self, rng):
        base = Model(two_flips, args=(0.5,))
        derived = base.with_args(1.0)
        trace = derived.simulate(rng)
        assert trace["x"] == 1

    def test_condition_merges(self, rng):
        base = Model(two_flips, args=(0.5,), observations={"x": 1})
        derived = base.condition({"y": 0})
        trace = derived.simulate(rng)
        assert trace.has_observation("x") and trace.has_observation("y")
        assert len(trace) == 0

    def test_condition_does_not_mutate_base(self, rng):
        base = Model(two_flips, args=(0.5,))
        base.condition({"y": 0})
        trace = base.simulate(rng)
        assert "y" in trace

    def test_probabilistic_decorator(self, rng):
        @probabilistic
        def coin(t, p):
            return t.sample(Flip(p), "c")

        model = coin(0.5)
        assert isinstance(model, Model)
        assert model.name == "coin"
        trace = model.simulate(rng)
        assert trace["c"] in (0, 1)


class TestDynamicStructure:
    def test_branch_dependent_addresses(self, rng):
        def branching(t):
            a = t.sample(Flip(0.5), "a")
            if a:
                return t.sample(Normal(0, 1), "left")
            return t.sample(UniformDiscrete(0, 9), "right")

        model = Model(branching)
        for _ in range(20):
            trace = model.simulate(rng)
            if trace["a"]:
                assert "left" in trace and "right" not in trace
            else:
                assert "right" in trace and "left" not in trace

    def test_loop_addresses(self, rng):
        def chain_model(t, n):
            values = []
            for i in range(n):
                values.append(t.sample(Flip(0.5), ("x", i)))
            return values

        trace = Model(chain_model, args=(5,)).simulate(rng)
        assert len(trace) == 5
        assert trace.addresses() == [("x", i) for i in range(5)]
