"""Tests for custom proposals on non-corresponding choices.

The paper's conclusion names "exploiting analytically tractable
conditional distributions for non-corresponding choices" as future work;
the translator supports it via ``forward_proposals`` /
``backward_proposals``.  These tests verify that proposals (a) preserve
the unbiasedness of the weight estimate and the convergence of the
self-normalized estimator, and (b) reduce the translator error ε(R) when
they approximate the true conditional.
"""

import math

import numpy as np
import pytest

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    Model,
    WeightedCollection,
    exact_choice_marginal,
    exact_posterior_sampler,
    log_normalizer,
)
from repro.diagnostics import translator_error
from repro.distributions import Flip


def source_fn(t):
    x = t.sample(Flip(0.5), "x")
    t.observe(Flip(0.9 if x else 0.2), 1, "o1")
    return x


def target_fn(t):
    x = t.sample(Flip(0.5), "x")
    y = t.sample(Flip(0.8 if x else 0.3), "y")
    t.observe(Flip(0.9 if x else 0.2), 1, "o1")
    t.observe(Flip(0.7 if y else 0.1), 1, "o2")
    return (x, y)


def optimal_y_proposal(partial_trace, prior):
    """The exact conditional of y given x and the o2 observation."""
    x = partial_trace["x"]
    prior_y1 = 0.8 if x else 0.3
    unnorm1 = prior_y1 * 0.7
    unnorm0 = (1 - prior_y1) * 0.1
    return Flip(unnorm1 / (unnorm1 + unnorm0))


@pytest.fixture
def models():
    return Model(source_fn), Model(target_fn)


@pytest.fixture
def correspondence():
    return Correspondence.identity(["x"])


class TestProposalCorrectness:
    def test_weight_estimate_stays_unbiased(self, models, correspondence, rng):
        """E[ŵ] = Z_Q / Z_P for any covering proposal (Lemma 6)."""
        p, q = models
        translator = CorrespondenceTranslator(
            p, q, correspondence, forward_proposals={"y": optimal_y_proposal}
        )
        sampler = exact_posterior_sampler(p)
        weights = [
            math.exp(translator.translate(rng, sampler(rng)).log_weight)
            for _ in range(20000)
        ]
        ratio = math.exp(log_normalizer(q) - log_normalizer(p))
        assert np.mean(weights) == pytest.approx(ratio, rel=0.05)

    def test_estimates_converge_with_proposal(self, models, correspondence, rng):
        p, q = models
        translator = CorrespondenceTranslator(
            p, q, correspondence, forward_proposals={"y": optimal_y_proposal}
        )
        sampler = exact_posterior_sampler(p)
        traces, weights = [], []
        for _ in range(20000):
            result = translator.translate(rng, sampler(rng))
            traces.append(result.trace)
            weights.append(result.log_weight)
        collection = WeightedCollection(traces, weights)
        truth = exact_choice_marginal(q, "y")[1]
        estimate = collection.estimate_probability(lambda u: u["y"] == 1)
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_proposal_values_follow_proposal(self, models, correspondence, rng):
        p, q = models
        translator = CorrespondenceTranslator(
            p,
            q,
            correspondence,
            forward_proposals={"y": lambda _trace, _prior: Flip(1.0)},
        )
        trace = p.score({"x": 1})
        for _ in range(20):
            assert translator.translate(rng, trace).trace["y"] == 1


class TestProposalQuality:
    def test_optimal_proposal_reduces_error(self, models, correspondence):
        p, q = models
        prior_translator = CorrespondenceTranslator(p, q, correspondence)
        proposal_translator = CorrespondenceTranslator(
            p, q, correspondence, forward_proposals={"y": optimal_y_proposal}
        )
        prior_error = translator_error(prior_translator)
        proposal_error = translator_error(proposal_translator)
        assert proposal_error.total < prior_error.total

    def test_optimal_proposal_leaves_only_semantic_gap(self, models, correspondence):
        """With the exact conditional for y, the remaining error is the
        difference between the two programs' x posteriors."""
        from repro.diagnostics import kl_divergence

        p, q = models
        translator = CorrespondenceTranslator(
            p, q, correspondence, forward_proposals={"y": optimal_y_proposal}
        )
        error = translator_error(translator)
        expected = kl_divergence(
            exact_choice_marginal(q, "x"), exact_choice_marginal(p, "x")
        )
        assert error.total == pytest.approx(expected, abs=1e-9)

    def test_backward_proposal_reduces_error(self, rng):
        """When P has a non-corresponding choice, a backward proposal that
        matches its conditional shrinks the third error term."""

        def p_fn(t):
            x = t.sample(Flip(0.5), "x")
            z = t.sample(Flip(0.6 if x else 0.2), "z")
            t.observe(Flip(0.9 if z else 0.1), 1, "o")
            return x

        def q_fn(t):
            x = t.sample(Flip(0.5), "x")
            t.observe(Flip(0.9), 1, "o")
            return x

        def optimal_z_backward(partial_trace, _prior):
            x = partial_trace["x"]
            prior_z1 = 0.6 if x else 0.2
            unnorm1 = prior_z1 * 0.9
            unnorm0 = (1 - prior_z1) * 0.1
            return Flip(unnorm1 / (unnorm1 + unnorm0))

        p, q = Model(p_fn), Model(q_fn)
        correspondence = Correspondence.identity(["x"])
        without = translator_error(CorrespondenceTranslator(p, q, correspondence))
        with_proposal = translator_error(
            CorrespondenceTranslator(
                p, q, correspondence, backward_proposals={"z": optimal_z_backward}
            )
        )
        assert with_proposal.total < without.total

    def test_inverse_swaps_proposals(self, models, correspondence):
        p, q = models
        translator = CorrespondenceTranslator(
            p, q, correspondence, forward_proposals={"y": optimal_y_proposal}
        )
        inverse = translator.inverse()
        assert inverse.backward_proposals == translator.forward_proposals
        assert inverse.forward_proposals == translator.backward_proposals
