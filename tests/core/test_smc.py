"""Tests for Algorithm 2 (SMC with trace translators) and program sequences."""

import numpy as np
import pytest

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    Model,
    WeightedCollection,
    exact_choice_marginal,
    exact_posterior_sampler,
    infer,
    infer_sequence,
)
from repro.core.mcmc import gibbs_sweep
from repro.distributions import Flip


def make_flip_model(p_x, p_obs_given_x1, p_obs_given_x0):
    def fn(t):
        x = t.sample(Flip(p_x), "x")
        t.observe(Flip(p_obs_given_x1 if x else p_obs_given_x0), 1, "o")
        return x

    return Model(fn, name=f"flip({p_x})")


@pytest.fixture
def source_model():
    return make_flip_model(0.5, 0.9, 0.2)


@pytest.fixture
def target_model():
    return make_flip_model(0.4, 0.85, 0.25)


@pytest.fixture
def translator(source_model, target_model):
    return CorrespondenceTranslator(
        source_model, target_model, Correspondence.identity(["x"])
    )


def posterior_input(model, rng, size):
    sampler = exact_posterior_sampler(model)
    return WeightedCollection.uniform([sampler(rng) for _ in range(size)])


class TestInfer:
    def test_estimate_matches_target_posterior(self, translator, source_model, target_model, rng):
        collection = posterior_input(source_model, rng, 8000)
        step = infer(translator, collection, rng)
        truth = exact_choice_marginal(target_model, "x")[1]
        estimate = step.collection.estimate_probability(lambda u: u["x"] == 1)
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_no_weights_converges_to_source_posterior(
        self, translator, source_model, rng
    ):
        """The paper's "Incremental (no weights)" ablation converges to η
        (here: P's posterior pushed through reuse), not Q's posterior."""
        collection = posterior_input(source_model, rng, 8000)
        step = infer(translator, collection, rng, use_weights=False)
        truth_p = exact_choice_marginal(source_model, "x")[1]
        estimate = step.collection.estimate_probability(lambda u: u["x"] == 1)
        assert estimate == pytest.approx(truth_p, abs=0.02)

    def test_resample_always(self, translator, source_model, rng):
        collection = posterior_input(source_model, rng, 500)
        step = infer(translator, collection, rng, resample="always")
        assert step.stats.resampled
        assert all(w == 0.0 for w in step.collection.log_weights)

    def test_resample_adaptive_triggers_on_low_ess(self, source_model, rng):
        # An extreme prior change degrades the ESS, triggering adaptive resampling.
        target = make_flip_model(0.01, 0.9, 0.2)
        translator = CorrespondenceTranslator(
            source_model, target, Correspondence.identity(["x"])
        )
        collection = posterior_input(source_model, rng, 400)
        step = infer(translator, collection, rng, resample="adaptive", ess_threshold=0.9)
        assert step.stats.resampled

    def test_invalid_resample_policy(self, translator, source_model, rng):
        collection = posterior_input(source_model, rng, 10)
        with pytest.raises(ValueError):
            infer(translator, collection, rng, resample="sometimes")

    def test_mcmc_rejuvenation_improves_no_correspondence(self, source_model, target_model, rng):
        """With an empty correspondence and Gibbs rejuvenation, the output
        still matches the target posterior (MCMC leaves it invariant)."""
        translator = CorrespondenceTranslator(
            source_model, target_model, Correspondence.empty()
        )
        collection = posterior_input(source_model, rng, 4000)
        kernel = gibbs_sweep(target_model, ["x"])
        step = infer(translator, collection, rng, mcmc_kernel=kernel, resample="always")
        truth = exact_choice_marginal(target_model, "x")[1]
        estimate = step.collection.estimate_probability(lambda u: u["x"] == 1)
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_stats_fields(self, translator, source_model, rng):
        collection = posterior_input(source_model, rng, 100)
        step = infer(translator, collection, rng)
        stats = step.stats
        assert stats.num_traces == 100
        assert 1.0 <= stats.ess_before_resample <= 100.0
        assert stats.translate_seconds >= 0.0
        assert "SMC step" in str(stats)


class TestInferSequence:
    def test_three_step_sequence(self, rng):
        """Iterate Algorithm 2 across a drifting sequence of programs."""
        params = [(0.5, 0.9, 0.2), (0.45, 0.85, 0.25), (0.4, 0.8, 0.3), (0.35, 0.8, 0.3)]
        models = [make_flip_model(*p) for p in params]
        translators = [
            CorrespondenceTranslator(models[i], models[i + 1], Correspondence.identity(["x"]))
            for i in range(len(models) - 1)
        ]
        initial = posterior_input(models[0], rng, 6000)
        steps = infer_sequence(translators, initial, rng, resample="adaptive")
        assert len(steps) == 3
        final = steps[-1].collection
        truth = exact_choice_marginal(models[-1], "x")[1]
        estimate = final.estimate_probability(lambda u: u["x"] == 1)
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_kernel_count_mismatch_raises(self, translator, source_model, rng):
        initial = posterior_input(source_model, rng, 10)
        with pytest.raises(ValueError):
            infer_sequence([translator], initial, rng, mcmc_kernels=[None, None])
