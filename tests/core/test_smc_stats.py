"""Edge-case tests for SMC statistics and the evidence increment."""

import math

import numpy as np
import pytest

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    Model,
    WeightedCollection,
    infer,
    log_normalizer,
)
from repro.distributions import Flip


def make_model(p_obs):
    def fn(t):
        x = t.sample(Flip(0.5), "x")
        t.observe(Flip(p_obs if x else 1 - p_obs), 1, "o")
        return x

    return Model(fn)


@pytest.fixture
def translator():
    return CorrespondenceTranslator(
        make_model(0.7), make_model(0.8), Correspondence.identity(["x"])
    )


class TestEvidenceIncrement:
    def test_weighted_input_uses_normalized_weights(self, translator, rng):
        """The increment is Σ_j W_j ŵ_j over the input's normalized
        weights; with a degenerate input it equals the surviving
        particle's own weight estimate."""
        source = translator.source
        trace1 = source.score({"x": 1})
        trace0 = source.score({"x": 0})
        collection = WeightedCollection([trace1, trace0], [0.0, -300.0])
        step = infer(translator, collection, rng)
        # The x=1 particle dominates: its increment is
        # P̃r_Q(x=1) / P̃r_P(x=1) = (0.5·0.8)/(0.5·0.7).
        assert step.stats.log_mean_weight_increment == pytest.approx(
            math.log(0.8 / 0.7)
        )

    def test_uniform_input_recovers_z_ratio_statistically(self, translator, rng):
        from repro import exact_posterior_sampler

        sampler = exact_posterior_sampler(translator.source)
        estimates = []
        for _ in range(50):
            collection = WeightedCollection.uniform([sampler(rng) for _ in range(200)])
            step = infer(translator, collection, rng)
            estimates.append(step.stats.log_mean_weight_increment)
        truth = log_normalizer(translator.target) - log_normalizer(translator.source)
        assert np.mean(estimates) == pytest.approx(truth, abs=0.01)

    def test_no_weights_still_reports_increment(self, translator, rng):
        source = translator.source
        collection = WeightedCollection.uniform([source.score({"x": 1})] * 5)
        step = infer(translator, collection, rng, use_weights=False)
        # Output weights unchanged, but the diagnostic is still computed.
        assert all(w == 0.0 for w in step.collection.log_weights)
        assert math.isfinite(step.stats.log_mean_weight_increment)


class TestStatsShape:
    def test_timing_fields_nonnegative(self, translator, rng):
        source = translator.source
        collection = WeightedCollection.uniform([source.score({"x": 1})] * 10)
        step = infer(translator, collection, rng)
        assert step.stats.translate_seconds >= 0.0
        assert step.stats.mcmc_seconds >= 0.0
        assert step.stats.ess_after == pytest.approx(
            step.collection.effective_sample_size()
        )

    def test_resampled_flag_consistency(self, translator, rng):
        source = translator.source
        collection = WeightedCollection.uniform([source.score({"x": 1})] * 10)
        never = infer(translator, collection, rng, resample="never")
        always = infer(translator, collection, rng, resample="always")
        assert not never.stats.resampled
        assert always.stats.resampled
