"""Unit tests for traces, choice maps, and addresses."""

import math

import pytest

from repro import ChoiceMap, Trace, addr
from repro.core.trace import ChoiceRecord, ObservationRecord
from repro.distributions import Flip, Normal


def make_record(address, dist, value):
    return ChoiceRecord(address, dist, value, dist.log_prob(value))


class TestAddr:
    def test_single_component(self):
        assert addr("slope") == ("slope",)

    def test_multi_component(self):
        assert addr("y", 3) == ("y", 3)

    def test_flattens_nested(self):
        assert addr(addr("hidden", 2), "obs") == ("hidden", 2, "obs")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            addr()


class TestChoiceMap:
    def test_string_and_tuple_addresses_are_equivalent(self):
        cmap = ChoiceMap({"x": 1})
        assert "x" in cmap
        assert ("x",) in cmap
        assert cmap[("x",)] == 1

    def test_set_returns_copy(self):
        original = ChoiceMap({"x": 1})
        updated = original.set("x", 2)
        assert original["x"] == 1
        assert updated["x"] == 2

    def test_get_default(self):
        assert ChoiceMap().get("missing", 7) == 7

    def test_len_and_iter(self):
        cmap = ChoiceMap({"x": 1, ("y", 0): 2})
        assert len(cmap) == 2
        assert set(cmap) == {("x",), ("y", 0)}


class TestTrace:
    def test_log_prob_is_sum_of_choices_and_observations(self):
        trace = Trace()
        trace.add_choice(make_record(("a",), Flip(0.25), 1))
        trace.add_choice(make_record(("b",), Normal(0.0, 1.0), 0.5))
        trace.add_observation(
            ObservationRecord(("o",), Flip(0.8), 1, Flip(0.8).log_prob(1))
        )
        expected = math.log(0.25) + Normal(0.0, 1.0).log_prob(0.5) + math.log(0.8)
        assert trace.log_prob == pytest.approx(expected)
        assert trace.choice_log_prob == pytest.approx(
            math.log(0.25) + Normal(0.0, 1.0).log_prob(0.5)
        )
        assert trace.observation_log_prob == pytest.approx(math.log(0.8))

    def test_duplicate_choice_raises(self):
        trace = Trace()
        trace.add_choice(make_record(("a",), Flip(0.5), 1))
        with pytest.raises(ValueError):
            trace.add_choice(make_record(("a",), Flip(0.5), 0))

    def test_duplicate_observation_raises(self):
        trace = Trace()
        trace.add_observation(ObservationRecord(("o",), Flip(0.5), 1, math.log(0.5)))
        with pytest.raises(ValueError):
            trace.add_observation(ObservationRecord(("o",), Flip(0.5), 0, math.log(0.5)))

    def test_addresses_preserve_execution_order(self):
        trace = Trace()
        for name in ["c", "a", "b"]:
            trace.add_choice(make_record((name,), Flip(0.5), 1))
        assert trace.addresses() == [("c",), ("a",), ("b",)]

    def test_getitem_and_contains(self):
        trace = Trace()
        trace.add_choice(make_record(("x",), Flip(0.5), 1))
        assert "x" in trace
        assert trace["x"] == 1
        assert "y" not in trace

    def test_to_choice_map(self):
        trace = Trace()
        trace.add_choice(make_record(("x",), Flip(0.5), 1))
        trace.add_choice(make_record(("y",), Flip(0.5), 0))
        cmap = trace.to_choice_map()
        assert cmap["x"] == 1 and cmap["y"] == 0
        assert len(cmap) == 2

    def test_copy_is_independent(self):
        trace = Trace()
        trace.add_choice(make_record(("x",), Flip(0.5), 1))
        duplicate = trace.copy()
        duplicate.add_choice(make_record(("y",), Flip(0.5), 0))
        assert "y" not in trace
        assert "y" in duplicate

    def test_with_value_rescores(self):
        record = make_record(("x",), Flip(0.25), 1)
        flipped = record.with_value(0)
        assert flipped.log_prob == pytest.approx(math.log(0.75))
