"""Tests for weighted collections, ESS, and resampling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DegeneracyError, NumericalError, WeightedCollection, effective_sample_size
from repro.core.weighted import RESAMPLING_SCHEMES

NEG_INF = float("-inf")


class TestEffectiveSampleSize:
    def test_uniform_weights_give_full_ess(self):
        assert effective_sample_size([0.0] * 50) == pytest.approx(50.0)

    def test_single_dominant_weight(self):
        log_weights = [0.0] + [-100.0] * 9
        assert effective_sample_size(log_weights) == pytest.approx(1.0, abs=1e-6)

    def test_invariant_to_shift(self):
        log_weights = [0.1, -0.7, 2.3, 0.0]
        shifted = [w + 123.0 for w in log_weights]
        assert effective_sample_size(log_weights) == pytest.approx(
            effective_sample_size(shifted)
        )

    def test_all_zero_weights_raise(self):
        with pytest.raises(ValueError):
            effective_sample_size([float("-inf")] * 4)


class TestEstimate:
    def test_weighted_mean(self):
        collection = WeightedCollection([1.0, 3.0], [math.log(1.0), math.log(3.0)])
        # E = (1*1 + 3*3)/(1+3) = 2.5
        assert collection.estimate(lambda x: x) == pytest.approx(2.5)

    def test_probability_estimate(self):
        collection = WeightedCollection([0, 1, 1, 0], [0.0, 0.0, 0.0, 0.0])
        assert collection.estimate_probability(lambda x: x == 1) == pytest.approx(0.5)

    def test_log_mean_weight(self):
        collection = WeightedCollection(["a", "b"], [math.log(2.0), math.log(4.0)])
        assert collection.log_mean_weight() == pytest.approx(math.log(3.0))

    def test_scaled_updates_weights(self):
        collection = WeightedCollection(["a", "b"], [0.0, 0.0])
        scaled = collection.scaled([math.log(2.0), 0.0])
        assert scaled.estimate_probability(lambda x: x == "a") == pytest.approx(2 / 3)

    def test_scaled_wrong_length_raises(self):
        collection = WeightedCollection(["a", "b"])
        with pytest.raises(ValueError):
            collection.scaled([0.0])

    def test_empty_collection_raises(self):
        with pytest.raises(ValueError):
            WeightedCollection([])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            WeightedCollection(["a"], [0.0, 0.0])


class TestResampling:
    @pytest.mark.parametrize("scheme", sorted(RESAMPLING_SCHEMES))
    def test_resampled_weights_are_uniform(self, scheme):
        rng = np.random.default_rng(7)
        collection = WeightedCollection(list(range(10)), list(np.linspace(-2, 2, 10)))
        resampled = collection.resample(rng, scheme=scheme)
        assert len(resampled) == 10
        assert all(w == 0.0 for w in resampled.log_weights)

    @pytest.mark.parametrize("scheme", sorted(RESAMPLING_SCHEMES))
    def test_resampling_preserves_expectation(self, scheme):
        """Resampling is unbiased: E over resamples of the post-resample
        estimator equals the pre-resample estimator."""
        rng = np.random.default_rng(11)
        items = [0.0, 1.0, 2.0, 5.0]
        log_weights = [math.log(w) for w in [0.1, 0.4, 0.3, 0.2]]
        collection = WeightedCollection(items, log_weights)
        before = collection.estimate(lambda x: x)
        estimates = [
            collection.resample(rng, scheme=scheme).estimate(lambda x: x)
            for _ in range(4000)
        ]
        assert np.mean(estimates) == pytest.approx(before, abs=0.05)

    def test_resample_size_override(self):
        rng = np.random.default_rng(3)
        collection = WeightedCollection(list(range(4)))
        assert len(collection.resample(rng, size=100)) == 100

    def test_degenerate_weights_pick_the_survivor(self):
        rng = np.random.default_rng(5)
        collection = WeightedCollection(["dead", "alive"], [float("-inf"), 0.0])
        resampled = collection.resample(rng)
        assert all(item == "alive" for item in resampled.items)

    def test_unknown_scheme_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            WeightedCollection([1]).resample(rng, scheme="bogus")

    def test_systematic_low_variance(self):
        """Systematic resampling keeps counts within one of expectation."""
        rng = np.random.default_rng(13)
        weights = [0.25, 0.25, 0.25, 0.25]
        collection = WeightedCollection(list(range(4)), [math.log(w) for w in weights])
        resampled = collection.resample(rng, scheme="systematic", size=400)
        counts = np.bincount(resampled.items, minlength=4)
        assert all(abs(c - 100) <= 1 for c in counts)


class TestExtremeWeightVectors:
    """Every resampling scheme against the weight vectors that break
    naive implementations: one dominant particle, many dead (``-inf``)
    particles, and near-uniform weights."""

    EXTREMES = {
        "one_dominant": [0.0] + [-80.0] * 15,
        "many_neg_inf": [NEG_INF] * 12 + [0.0, math.log(2.0), NEG_INF, -1.0],
        "near_uniform": [1e-12 * i for i in range(16)],
    }

    @pytest.mark.parametrize("scheme", sorted(RESAMPLING_SCHEMES))
    @pytest.mark.parametrize("vector", sorted(EXTREMES))
    def test_resampling_stays_well_formed(self, scheme, vector):
        log_weights = self.EXTREMES[vector]
        rng = np.random.default_rng(29)
        collection = WeightedCollection(list(range(len(log_weights))), log_weights)
        resampled = collection.resample(rng, scheme=scheme)
        assert len(resampled) == len(collection)
        assert all(w == 0.0 for w in resampled.log_weights)
        assert set(resampled.items) <= set(collection.items)

    @pytest.mark.parametrize("scheme", sorted(RESAMPLING_SCHEMES))
    def test_dead_particles_never_survive_resampling(self, scheme):
        log_weights = self.EXTREMES["many_neg_inf"]
        alive = {i for i, w in enumerate(log_weights) if w > NEG_INF}
        rng = np.random.default_rng(31)
        collection = WeightedCollection(list(range(len(log_weights))), log_weights)
        resampled = collection.resample(rng, scheme=scheme, size=200)
        assert set(resampled.items) <= alive

    @pytest.mark.parametrize("scheme", sorted(RESAMPLING_SCHEMES))
    def test_one_dominant_particle_takes_over(self, scheme):
        rng = np.random.default_rng(37)
        collection = WeightedCollection(
            list(range(16)), self.EXTREMES["one_dominant"]
        )
        resampled = collection.resample(rng, scheme=scheme, size=100)
        counts = np.bincount(resampled.items, minlength=16)
        assert counts[0] == 100

    @pytest.mark.parametrize("vector", sorted(EXTREMES))
    def test_normalization_is_exact(self, vector):
        log_weights = self.EXTREMES[vector]
        collection = WeightedCollection(list(range(len(log_weights))), log_weights)
        weights = collection.normalized_weights()
        assert float(np.sum(weights)) == pytest.approx(1.0)
        assert not np.isnan(weights).any()


class TestNumericalGuardrails:
    def test_mixed_neg_inf_estimate_is_nan_free(self):
        collection = WeightedCollection([1.0, 2.0, 10.0], [0.0, 0.0, NEG_INF])
        assert collection.estimate(lambda x: x) == pytest.approx(1.5)

    def test_estimate_never_evaluates_dead_particles(self):
        """A dropped particle may hold a trace ``phi`` cannot process
        (it still belongs to the source program); estimate must not
        touch it."""

        def phi(x):
            if x == "dead":
                raise AssertionError("phi evaluated a zero-weight particle")
            return 1.0 if x == "hit" else 0.0

        collection = WeightedCollection(["hit", "miss", "dead"], [0.0, 0.0, NEG_INF])
        assert collection.estimate(phi) == pytest.approx(0.5)

    def test_log_mean_weight_with_neg_inf_entries(self):
        collection = WeightedCollection(
            ["a", "b", "c", "d"],
            [math.log(2.0), NEG_INF, math.log(4.0), NEG_INF],
        )
        # mean weight = (2 + 0 + 4 + 0) / 4
        assert collection.log_mean_weight() == pytest.approx(math.log(6.0 / 4.0))
        assert not math.isnan(collection.log_mean_weight())

    def test_all_neg_inf_raises_degeneracy_error(self):
        collection = WeightedCollection(["a", "b"], [NEG_INF, NEG_INF])
        with pytest.raises(DegeneracyError) as excinfo:
            collection.normalized_weights()
        assert isinstance(excinfo.value, ValueError)
        assert excinfo.value.num_particles == 2

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_nan_and_posinf_weights_raise_numerical_error(self, bad):
        collection = WeightedCollection(["a", "b", "c"], [0.0, bad, 0.0])
        with pytest.raises(NumericalError, match="1"):
            collection.normalized_weights()

    def test_numerical_error_is_a_value_error(self):
        collection = WeightedCollection(["a"], [float("nan")])
        with pytest.raises(ValueError):
            collection.normalized_weights()


class TestProperties:
    @given(
        st.lists(st.floats(min_value=-20, max_value=20), min_size=1, max_size=30)
    )
    def test_normalized_weights_sum_to_one(self, log_weights):
        collection = WeightedCollection(list(range(len(log_weights))), log_weights)
        assert float(np.sum(collection.normalized_weights())) == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=-20, max_value=20), min_size=1, max_size=30)
    )
    def test_ess_bounds(self, log_weights):
        ess = effective_sample_size(log_weights)
        assert 1.0 - 1e-9 <= ess <= len(log_weights) + 1e-9

    @given(
        st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=20),
        st.sampled_from(sorted(RESAMPLING_SCHEMES)),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40)
    def test_resample_only_returns_existing_items(self, log_weights, scheme, seed):
        rng = np.random.default_rng(seed)
        items = list(range(len(log_weights)))
        resampled = WeightedCollection(items, log_weights).resample(rng, scheme=scheme)
        assert set(resampled.items) <= set(items)
        assert len(resampled) == len(items)


class TestMetadata:
    def make(self):
        return WeightedCollection(
            ["a", "b", "c"],
            [0.0, 0.5, -0.5],
            metadata=[{"origin": 0}, None, {"origin": 2, "tags": ["x"]}],
        )

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            WeightedCollection(["a", "b"], [0.0, 0.0], metadata=[{}])

    def test_copy_deep_copies_metadata(self):
        """A resumed checkpoint and a live run must never share
        per-particle metadata dicts."""
        original = self.make()
        clone = original.copy()
        clone.metadata[0]["origin"] = 99
        clone.metadata[2]["tags"].append("y")
        assert original.metadata[0]["origin"] == 0
        assert original.metadata[2]["tags"] == ["x"]

    def test_resample_deep_copies_metadata(self):
        original = self.make()
        resampled = original.resample(np.random.default_rng(0))
        assert resampled.metadata is not None
        for entry in resampled.metadata:
            if entry is not None:
                entry["mutated"] = True
        assert all(
            entry is None or "mutated" not in entry
            for entry in original.metadata
        )

    def test_resample_duplicates_do_not_alias_each_other(self):
        original = WeightedCollection(
            ["only"], [0.0], metadata=[{"count": 0}]
        )
        resampled = original.resample(np.random.default_rng(0), size=4)
        resampled.metadata[0]["count"] = 7
        assert all(m["count"] == 0 for m in resampled.metadata[1:])
