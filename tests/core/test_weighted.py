"""Tests for weighted collections, ESS, and resampling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import WeightedCollection, effective_sample_size
from repro.core.weighted import RESAMPLING_SCHEMES


class TestEffectiveSampleSize:
    def test_uniform_weights_give_full_ess(self):
        assert effective_sample_size([0.0] * 50) == pytest.approx(50.0)

    def test_single_dominant_weight(self):
        log_weights = [0.0] + [-100.0] * 9
        assert effective_sample_size(log_weights) == pytest.approx(1.0, abs=1e-6)

    def test_invariant_to_shift(self):
        log_weights = [0.1, -0.7, 2.3, 0.0]
        shifted = [w + 123.0 for w in log_weights]
        assert effective_sample_size(log_weights) == pytest.approx(
            effective_sample_size(shifted)
        )

    def test_all_zero_weights_raise(self):
        with pytest.raises(ValueError):
            effective_sample_size([float("-inf")] * 4)


class TestEstimate:
    def test_weighted_mean(self):
        collection = WeightedCollection([1.0, 3.0], [math.log(1.0), math.log(3.0)])
        # E = (1*1 + 3*3)/(1+3) = 2.5
        assert collection.estimate(lambda x: x) == pytest.approx(2.5)

    def test_probability_estimate(self):
        collection = WeightedCollection([0, 1, 1, 0], [0.0, 0.0, 0.0, 0.0])
        assert collection.estimate_probability(lambda x: x == 1) == pytest.approx(0.5)

    def test_log_mean_weight(self):
        collection = WeightedCollection(["a", "b"], [math.log(2.0), math.log(4.0)])
        assert collection.log_mean_weight() == pytest.approx(math.log(3.0))

    def test_scaled_updates_weights(self):
        collection = WeightedCollection(["a", "b"], [0.0, 0.0])
        scaled = collection.scaled([math.log(2.0), 0.0])
        assert scaled.estimate_probability(lambda x: x == "a") == pytest.approx(2 / 3)

    def test_scaled_wrong_length_raises(self):
        collection = WeightedCollection(["a", "b"])
        with pytest.raises(ValueError):
            collection.scaled([0.0])

    def test_empty_collection_raises(self):
        with pytest.raises(ValueError):
            WeightedCollection([])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            WeightedCollection(["a"], [0.0, 0.0])


class TestResampling:
    @pytest.mark.parametrize("scheme", sorted(RESAMPLING_SCHEMES))
    def test_resampled_weights_are_uniform(self, scheme):
        rng = np.random.default_rng(7)
        collection = WeightedCollection(list(range(10)), list(np.linspace(-2, 2, 10)))
        resampled = collection.resample(rng, scheme=scheme)
        assert len(resampled) == 10
        assert all(w == 0.0 for w in resampled.log_weights)

    @pytest.mark.parametrize("scheme", sorted(RESAMPLING_SCHEMES))
    def test_resampling_preserves_expectation(self, scheme):
        """Resampling is unbiased: E over resamples of the post-resample
        estimator equals the pre-resample estimator."""
        rng = np.random.default_rng(11)
        items = [0.0, 1.0, 2.0, 5.0]
        log_weights = [math.log(w) for w in [0.1, 0.4, 0.3, 0.2]]
        collection = WeightedCollection(items, log_weights)
        before = collection.estimate(lambda x: x)
        estimates = [
            collection.resample(rng, scheme=scheme).estimate(lambda x: x)
            for _ in range(4000)
        ]
        assert np.mean(estimates) == pytest.approx(before, abs=0.05)

    def test_resample_size_override(self):
        rng = np.random.default_rng(3)
        collection = WeightedCollection(list(range(4)))
        assert len(collection.resample(rng, size=100)) == 100

    def test_degenerate_weights_pick_the_survivor(self):
        rng = np.random.default_rng(5)
        collection = WeightedCollection(["dead", "alive"], [float("-inf"), 0.0])
        resampled = collection.resample(rng)
        assert all(item == "alive" for item in resampled.items)

    def test_unknown_scheme_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            WeightedCollection([1]).resample(rng, scheme="bogus")

    def test_systematic_low_variance(self):
        """Systematic resampling keeps counts within one of expectation."""
        rng = np.random.default_rng(13)
        weights = [0.25, 0.25, 0.25, 0.25]
        collection = WeightedCollection(list(range(4)), [math.log(w) for w in weights])
        resampled = collection.resample(rng, scheme="systematic", size=400)
        counts = np.bincount(resampled.items, minlength=4)
        assert all(abs(c - 100) <= 1 for c in counts)


class TestProperties:
    @given(
        st.lists(st.floats(min_value=-20, max_value=20), min_size=1, max_size=30)
    )
    def test_normalized_weights_sum_to_one(self, log_weights):
        collection = WeightedCollection(list(range(len(log_weights))), log_weights)
        assert float(np.sum(collection.normalized_weights())) == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=-20, max_value=20), min_size=1, max_size=30)
    )
    def test_ess_bounds(self, log_weights):
        ess = effective_sample_size(log_weights)
        assert 1.0 - 1e-9 <= ess <= len(log_weights) + 1e-9

    @given(
        st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=20),
        st.sampled_from(sorted(RESAMPLING_SCHEMES)),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40)
    def test_resample_only_returns_existing_items(self, log_weights, scheme, seed):
        rng = np.random.default_rng(seed)
        items = list(range(len(log_weights)))
        resampled = WeightedCollection(items, log_weights).resample(rng, scheme=scheme)
        assert set(resampled.items) <= set(items)
        assert len(resampled) == len(items)
