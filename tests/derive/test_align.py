"""Tests for the address-space aligner (repro.derive.align)."""

import pickle

import numpy as np
import pytest

from repro import Model
from repro.derive import derive_correspondence, derive_label_map
from repro.distributions import Categorical, Flip, Normal
from repro.parallel import find_unpicklable


def chain_model(head, length, name):
    """``length`` Normal choices addressed ``(head, i)``."""

    def fn(t):
        value = 0.0
        for i in range(length):
            value = t.sample(Normal(value, 1.0), (head, i))
        return value

    return Model(fn, name=name)


def flat_model(dists, name):
    """One choice per ``(address, distribution)`` pair, in order."""

    def fn(t):
        out = None
        for address, dist in dists:
            out = t.sample(dist, address)
        return out

    return Model(fn, name=name)


class TestExactMatch:
    def test_identical_models_match_exactly(self):
        old = chain_model("h", 3, "old")
        new = chain_model("h", 3, "new")
        d = derive_correspondence(old, new)
        assert d.correspondence.forward(("h", 1)) == ("h", 1)
        assert d.report.num_matched == 3
        assert d.report.fresh == [] and d.report.dropped == []
        assert all(m.kind == "exact" for m in d.report.matches)
        assert d.report.confidence() == 1.0

    def test_reordered_statements_still_match(self):
        old = flat_model([(("a",), Flip(0.5)), (("b",), Normal(0, 1))], "old")
        new = flat_model([(("b",), Normal(0, 1)), (("a",), Flip(0.5))], "new")
        d = derive_correspondence(old, new)
        assert d.correspondence.forward(("a",)) == ("a",)
        assert d.correspondence.forward(("b",)) == ("b",)
        assert d.report.num_matched == 2

    def test_changed_parameters_keep_the_match(self):
        # Normal's support is the real line regardless of parameters, so
        # a sigma edit keeps the exact match at full confidence.
        old = flat_model([(("x",), Normal(0, 2))], "old")
        new = flat_model([(("x",), Normal(0, 3))], "new")
        d = derive_correspondence(old, new)
        assert d.correspondence.forward(("x",)) == ("x",)
        assert d.report.matches[0].confidence == 1.0

    def test_type_overlap_only_lowers_confidence(self):
        # Same support *type* (IntegerRange) but never the same range:
        # the match survives at reduced confidence.
        old = flat_model([(("k",), Categorical((0.5, 0.3, 0.2)))], "old")
        new = flat_model([(("k",), Categorical((0.4, 0.3, 0.2, 0.1)))], "new")
        d = derive_correspondence(old, new)
        match = d.report.match_for(("k",))
        assert match is not None and match.kind == "exact"
        assert match.confidence == 0.75

    def test_support_incompatible_same_address_is_not_matched(self):
        # flip -> gauss at the same address: no value could ever be
        # reused, so the aligner must refuse the match.
        old = flat_model([(("x",), Flip(0.5))], "old")
        new = flat_model([(("x",), Normal(0, 1))], "new")
        d = derive_correspondence(old, new)
        assert d.correspondence.forward(("x",)) is None
        assert d.report.fresh == [("x",)]
        assert d.report.dropped == [("x",)]
        assert any("type-incompatible" in note for note in d.report.notes)


class TestFamilyRules:
    def test_window_growth_is_covered_by_the_open_rule(self):
        # Profiles only see indices 0..2, but the rule extends the map
        # to any index, like a hand-written predicate correspondence.
        old = chain_model("h", 3, "old")
        new = chain_model("h", 3, "new")
        d = derive_correspondence(old, new)
        assert d.report.family_rules == {"h": "h"}
        assert d.correspondence.forward(("h", 7)) == ("h", 7)
        assert d.correspondence.backward(("h", 7)) == ("h", 7)

    def test_grown_family_marks_unseen_indices_fresh(self):
        old = chain_model("h", 3, "old")
        new = chain_model("h", 5, "new")
        d = derive_correspondence(old, new)
        # Indices 3 and 4 map into the old space but were never observed
        # there, so translation samples them fresh — and the report says so.
        assert d.correspondence.forward(("h", 4)) == ("h", 4)
        assert set(d.report.fresh) == {("h", 3), ("h", 4)}
        assert d.report.dropped == []

    def test_shrunk_family_drops_the_tail(self):
        old = chain_model("h", 5, "old")
        new = chain_model("h", 3, "new")
        d = derive_correspondence(old, new)
        assert d.report.num_matched == 3
        assert set(d.report.dropped) == {("h", 3), ("h", 4)}

    def test_bare_heads_get_no_family_rule(self):
        old = flat_model([(("x",), Normal(0, 1))], "old")
        new = flat_model([(("x",), Normal(0, 1))], "new")
        d = derive_correspondence(old, new)
        assert d.report.family_rules == {}
        # The rule must not invent pairs for indexed addresses.
        assert d.correspondence.forward(("x", 0)) is None


class TestRenameAlignment:
    def test_renamed_family_aligns_with_tails_preserved(self):
        old = chain_model("hidden", 4, "old")
        new = chain_model("state", 4, "new")
        d = derive_correspondence(old, new)
        for i in range(4):
            assert d.correspondence.forward(("state", i)) == ("hidden", i)
            assert d.correspondence.backward(("hidden", i)) == ("state", i)
        assert d.report.family_rules == {"state": "hidden"}
        assert all(m.kind == "rename" for m in d.report.matches)
        # Renames never reach exact-match confidence.
        assert d.report.confidence() == 0.6

    def test_rename_extends_to_unseen_indices(self):
        old = chain_model("hidden", 3, "old")
        new = chain_model("state", 3, "new")
        d = derive_correspondence(old, new)
        assert d.correspondence.forward(("state", 9)) == ("hidden", 9)

    def test_support_incompatible_rename_is_rejected(self):
        # A flip family cannot align to a gauss family, even though the
        # shapes agree perfectly.
        old = flat_model([(("coin", i), Flip(0.5)) for i in range(3)], "old")
        new = flat_model([(("level", i), Normal(0, 1)) for i in range(3)], "new")
        d = derive_correspondence(old, new)
        assert d.report.num_matched == 0
        assert len(d.report.fresh) == 3 and len(d.report.dropped) == 3
        assert any("rejected" in note for note in d.report.notes)

    def test_duplicated_families_stay_injective(self):
        # Two same-support, same-shape families on each side: whatever
        # the tie-break picks, each old family is consumed exactly once.
        old = flat_model(
            [(("a", i), Normal(0, 1)) for i in range(2)]
            + [(("b", i), Normal(0, 1)) for i in range(2)],
            "old",
        )
        new = flat_model(
            [(("c", i), Normal(0, 1)) for i in range(2)]
            + [(("d", i), Normal(0, 1)) for i in range(2)],
            "new",
        )
        d = derive_correspondence(old, new)
        sources = [m.source for m in d.report.matches]
        assert len(sources) == len(set(sources)) == 4
        heads = {m.target[0]: m.source[0] for m in d.report.matches}
        assert set(heads) == {"c", "d"}
        assert set(heads.values()) == {"a", "b"}

    def test_nested_loop_families_align_by_arity(self):
        def nested(head, name):
            def fn(t):
                total = 0.0
                for i in range(2):
                    for j in range(2):
                        total += t.sample(Normal(0, 1), (head, i, j))
                return total

            return Model(fn, name=name)

        old = nested("w", "old")
        new = nested("v", "new")
        d = derive_correspondence(old, new)
        assert d.correspondence.forward(("v", 1, 0)) == ("w", 1, 0)
        assert d.report.family_rules == {"v": "w"}

    def test_arity_mismatch_blocks_the_rename(self):
        old = flat_model([(("x", 0, 0), Normal(0, 1))], "old")
        new = flat_model([(("y", 0), Normal(0, 1))], "new")
        d = derive_correspondence(old, new)
        assert d.report.num_matched == 0

    def test_deterministic_across_runs(self):
        old = chain_model("hidden", 4, "old")
        new = chain_model("state", 4, "new")
        first = derive_correspondence(old, new)
        second = derive_correspondence(old, new)
        assert first.report.to_dict() == second.report.to_dict()


class TestDerivedMapMechanics:
    def test_correspondence_is_picklable(self):
        d = derive_correspondence(chain_model("h", 3, "a"), chain_model("s", 3, "b"))
        assert find_unpicklable(d.correspondence) is None
        clone = pickle.loads(pickle.dumps(d.correspondence))
        assert clone.forward(("s", 1)) == ("h", 1)

    def test_observations_condition_the_new_model(self):
        def fn(t):
            x = t.sample(Normal(0, 1), ("x",))
            t.sample(Normal(x, 1), ("y",))
            return x

        old = Model(fn, name="old")
        new = Model(fn, name="new")
        d = derive_correspondence(old, new, observations={("y",): 0.5})
        # The observed address is a constraint, not a latent choice, so
        # it never enters the correspondence.
        assert d.correspondence.forward(("y",)) is None
        assert d.correspondence.forward(("x",)) == ("x",)

    def test_derive_label_map_projects_string_heads(self):
        old = chain_model("hidden", 3, "old")
        new = chain_model("state", 3, "new")
        labels = derive_label_map(derive_correspondence(old, new))
        assert labels == {"state": "hidden"}


class TestValidatorCleanliness:
    @pytest.mark.parametrize(
        "old,new",
        [
            (chain_model("h", 3, "old"), chain_model("h", 3, "new")),
            (chain_model("hidden", 4, "old"), chain_model("state", 4, "new")),
        ],
    )
    def test_derived_maps_validate_without_errors(self, old, new):
        from repro.analysis import validate_correspondence

        d = derive_correspondence(old, new)
        diagnostics = validate_correspondence(
            old, new, d.correspondence, rng=np.random.default_rng(0)
        )
        assert not [x for x in diagnostics if x.severity == "error"]
