"""Derived maps replace every bundled hand-written correspondence.

The subsystem's acceptance bar: each bundled target (HMM order swap,
fig. 8 regression, GMM sigma edit) runs end to end on a *derived*
correspondence, the derived map validates with zero errors, and it
agrees with the hand-written reference on every profiled address — so
inference behaves identically, byte for byte, under the same seed.
"""

import numpy as np
import pytest

from repro import infer_sequence
from repro.core.importance import importance_sampling
from repro.derive import (
    bundled_derivations,
    check_derivation,
    derive_correspondence,
    derive_label_map,
    derive_sequence_translators,
)
from repro.derive.gate import BUNDLED_PAIRS
from repro.hmm.model import FirstOrderParams
from repro.hmm.programs import first_order_model, hidden_state_correspondence
from repro.core.corr_translator import CorrespondenceTranslator


def errors(diagnostics):
    return [d for d in diagnostics if d.severity == "error"]


class TestBundledGate:
    @pytest.mark.parametrize("name", sorted(BUNDLED_PAIRS))
    def test_derived_map_matches_the_handwritten_one(self, name):
        source, target, reference = BUNDLED_PAIRS[name]()
        diagnostics = check_derivation(source, target, reference)
        assert errors(diagnostics) == []

    def test_bundled_derivations_cover_every_pair(self):
        derivations = bundled_derivations()
        assert set(derivations) == set(BUNDLED_PAIRS)
        for derivation in derivations.values():
            assert derivation.report.num_matched > 0

    def test_gmm_label_map_is_validator_clean(self):
        from repro.analysis import validate_label_map
        from repro.gmm.model import gmm_edit_setup

        source, target, _ = BUNDLED_PAIRS["gmm"]()
        labels = derive_label_map(derive_correspondence(source, target))
        setup = gmm_edit_setup(6, k=3)
        assert validate_label_map(setup.source_program, setup.target_program, labels) == []

    def test_registry_exposes_the_gate(self):
        from repro.analysis import bundled_targets

        registry = bundled_targets()
        for name in ("derive:hmm", "derive:regression", "derive:gmm"):
            assert name in registry


def hmm_window_models(windows=(4, 7, 10)):
    params = FirstOrderParams(
        log_initial=np.log([0.5, 0.5]),
        log_transition=np.log([[0.7, 0.3], [0.3, 0.7]]),
        log_observation=np.log([[0.8, 0.2], [0.2, 0.8]]),
    )
    observations = (0, 1, 0, 1, 0, 0, 1, 0, 1, 1)
    return [first_order_model(params, observations[:w]) for w in windows]


class TestSequenceThreading:
    def test_infer_sequence_with_derive_matches_handwritten(self):
        models = hmm_window_models()

        def run(derive):
            rng = np.random.default_rng(11)
            initial = importance_sampling(models[0], rng, 50).resample(rng)
            if derive:
                steps = infer_sequence(models, initial, rng, correspondence="derive")
            else:
                translators = [
                    CorrespondenceTranslator(
                        models[i], models[i + 1], hidden_state_correspondence()
                    )
                    for i in range(len(models) - 1)
                ]
                steps = infer_sequence(translators, initial, rng)
            return steps[-1].collection

        hand, derived = run(False), run(True)
        assert list(hand.log_weights) == list(derived.log_weights)
        phi = lambda u: u[("hidden", 9)] == 1
        assert hand.estimate_probability(phi) == derived.estimate_probability(phi)

    def test_infer_sequence_rejects_unknown_mode(self):
        models = hmm_window_models((4, 7))
        rng = np.random.default_rng(0)
        initial = importance_sampling(models[0], rng, 10)
        with pytest.raises(ValueError, match="derive"):
            infer_sequence(models, initial, rng, correspondence="magic")

    def test_derive_sequence_translators_carry_reports(self):
        translators = derive_sequence_translators(hmm_window_models())
        assert len(translators) == 2
        for translator in translators:
            assert translator.derivation_report is not None
            assert translator.derivation_report.num_matched > 0

    def test_derive_sequence_translators_rejects_translators(self):
        models = hmm_window_models((4, 7))
        translator = CorrespondenceTranslator(
            models[0], models[1], hidden_state_correspondence()
        )
        with pytest.raises(TypeError, match="pass models"):
            derive_sequence_translators([translator, translator])

    def test_from_derived_sets_the_report(self):
        models = hmm_window_models((4, 7))
        translator = CorrespondenceTranslator.from_derived(models[0], models[1])
        assert translator.derivation_report is not None
        plain = CorrespondenceTranslator(
            models[0], models[1], hidden_state_correspondence()
        )
        assert plain.derivation_report is None


class TestSessionSequence:
    def test_session_sequence_applies_every_edit(self):
        from repro.store.session import InferenceSession

        models = hmm_window_models()
        rng = np.random.default_rng(3)
        initial = importance_sampling(models[0], rng, 40).resample(rng)
        session = InferenceSession("derive-e2e", initial, rng)
        steps = session.sequence(models)
        assert len(steps) == 2
        assert session.num_edits == 2
        estimate = session.estimate(lambda u: u[("hidden", 9)] == 1)
        assert 0.0 <= estimate <= 1.0

    def test_session_sequence_rejects_other_modes(self):
        from repro.store.session import InferenceSession

        models = hmm_window_models((4, 7))
        rng = np.random.default_rng(3)
        initial = importance_sampling(models[0], rng, 10)
        session = InferenceSession("derive-e2e2", initial, rng)
        with pytest.raises(ValueError, match="derive"):
            session.sequence(models, correspondence="diff")

    def test_session_sequence_kernel_count_mismatch(self):
        from repro.store.session import InferenceSession

        models = hmm_window_models((4, 7, 10))
        rng = np.random.default_rng(3)
        initial = importance_sampling(models[0], rng, 10)
        session = InferenceSession("derive-e2e3", initial, rng)
        with pytest.raises(ValueError, match="kernel"):
            session.sequence(models, mcmc_kernels=[None])
