"""Tests for derivation reports and their codec round-trip."""

import json

from repro.derive import AddressMatch, DerivationReport
from repro.store.codec import deserialize, dumps, loads, serialize


def sample_report():
    return DerivationReport(
        source_name="old",
        target_name="new",
        matches=[
            AddressMatch(
                target=("state", 0),
                source=("hidden", 0),
                kind="rename",
                confidence=0.6,
                evidence="family 'state' aligned to 'hidden'",
            ),
            AddressMatch(
                target=("slope",),
                source=("slope",),
                kind="exact",
                confidence=1.0,
                evidence="same address in both programs",
            ),
        ],
        fresh=[("outlier", 2)],
        dropped=[("legacy",)],
        family_rules={"state": "hidden"},
        notes=["candidate rename 'a' -> 'b' rejected: support types disjoint"],
        source_complete=True,
        target_complete=False,
    )


class TestReportQueries:
    def test_match_for_finds_by_target(self):
        report = sample_report()
        assert report.match_for(("slope",)).kind == "exact"
        assert report.match_for(("missing",)) is None

    def test_confidence_is_the_minimum(self):
        report = sample_report()
        assert report.confidence() == 0.6
        assert DerivationReport("a", "b").confidence() == 1.0

    def test_summary_is_one_line(self):
        summary = sample_report().summary()
        assert "\n" not in summary
        assert "2 matched / 1 fresh / 1 dropped" in summary
        assert "0.60" in summary

    def test_to_dict_is_strict_json(self):
        document = sample_report().to_dict()
        encoded = json.dumps(document)
        assert "hidden" in encoded
        assert document["min_confidence"] == 0.6
        assert document["family_rules"] == [
            {"target_head": "state", "source_head": "hidden"}
        ]


class TestCodecRoundTrip:
    def test_json_document_round_trips(self):
        report = sample_report()
        document = serialize(report)
        json.dumps(document)  # strict JSON, no repr leakage
        assert deserialize(document) == report

    def test_binary_round_trips(self):
        report = sample_report()
        assert loads(dumps(report, format="binary")) == report

    def test_empty_report_round_trips(self):
        report = DerivationReport(source_name="p", target_name="q")
        assert deserialize(serialize(report)) == report

    def test_addresses_stay_tuples(self):
        decoded = deserialize(serialize(sample_report()))
        assert decoded.matches[0].target == ("state", 0)
        assert isinstance(decoded.matches[0].target, tuple)
        assert decoded.fresh == [("outlier", 2)]
