"""The static fast path of :func:`derive_correspondence`.

Acceptance bar for the static profiler: on every bundled target the
derivation run on static profiles is *byte-identical* (pickled
:class:`Correspondence`) to the derivation run on sampled profiles, and
the static run consumes **zero** RNG draws — proven with a poisoned
generator that raises on any attribute access.
"""

import pickle

import numpy as np
import pytest

from repro.analysis import profile_model
from repro.derive import derive_correspondence
from repro.derive.gate import BUNDLED_PAIRS


class PoisonedRNG:
    """Raises on any use: passes for an rng only if never touched."""

    def __getattr__(self, name):
        raise AssertionError(f"static derivation touched the RNG ({name})")


def _burglary_pair():
    from repro.experiments.burglary import burglary_original, burglary_refined

    return burglary_original(), burglary_refined(), None


_PAIRS = dict(BUNDLED_PAIRS)
_PAIRS["burglary"] = _burglary_pair


class TestStaticFastPath:
    @pytest.mark.parametrize("name", sorted(_PAIRS))
    def test_static_profiles_close_every_bundled_model(self, name):
        source, target, _ = _PAIRS[name]()
        for model in (source, target):
            profile = profile_model(model, method="static")
            assert profile.complete
            assert profile.method == "static"

    @pytest.mark.parametrize("name", sorted(_PAIRS))
    def test_static_derivation_is_byte_identical_to_sampled(self, name):
        source, target, _ = _PAIRS[name]()
        static = derive_correspondence(
            source, target, rng=PoisonedRNG(), profile_method="static"
        )
        sampled = derive_correspondence(
            source, target, rng=np.random.default_rng(0), profile_method="runtime"
        )
        assert pickle.dumps(static.correspondence) == pickle.dumps(
            sampled.correspondence
        )

    @pytest.mark.parametrize("name", sorted(_PAIRS))
    def test_auto_uses_the_static_path_without_randomness(self, name):
        source, target, _ = _PAIRS[name]()
        derivation = derive_correspondence(source, target, rng=PoisonedRNG())
        assert any(
            "source=static" in note and "target=static" in note
            for note in derivation.report.notes
        )
        assert derivation.report.source_complete
        assert derivation.report.target_complete

    def test_static_method_raises_on_unclosable_models(self):
        from repro.core.model import Model
        from repro.distributions import Normal

        def geometric_ish(h):
            x = h.sample(Normal(0.0, 1.0), "x")
            n = 0
            while x > 0:
                x = h.sample(Normal(0.0, 1.0), ("x", n))
                n = n + 1
            return n

        with pytest.raises(ValueError, match="incomplete"):
            profile_model(Model(geometric_ish), method="static")
