"""Tests for divergence metrics and the exact translator error ε(R)."""

import math

import numpy as np
import pytest

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    Model,
    WeightedCollection,
    exact_choice_marginal,
    exact_posterior_sampler,
)
from repro.diagnostics import (
    TranslatorError,
    absolute_error,
    empirical_distribution,
    kl_divergence,
    log_marginal_likelihood,
    output_distribution,
    total_variation,
    translator_error,
)
from repro.distributions import Flip


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestMetrics:
    def test_kl_zero_for_identical(self):
        p = {0: 0.3, 1: 0.7}
        assert kl_divergence(p, dict(p)) == pytest.approx(0.0)

    def test_kl_positive(self):
        assert kl_divergence({0: 0.5, 1: 0.5}, {0: 0.9, 1: 0.1}) > 0

    def test_kl_infinite_on_support_mismatch(self):
        assert kl_divergence({0: 0.5, 1: 0.5}, {0: 1.0}) == float("inf")

    def test_kl_known_value(self):
        p = {0: 0.5, 1: 0.5}
        q = {0: 0.25, 1: 0.75}
        expected = 0.5 * math.log(2.0) + 0.5 * math.log(0.5 / 0.75)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_total_variation(self):
        assert total_variation({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)
        assert total_variation({0: 0.6, 1: 0.4}, {0: 0.4, 1: 0.6}) == pytest.approx(0.2)

    def test_empirical_distribution(self):
        collection = WeightedCollection(["a", "b", "a"], [0.0, 0.0, 0.0])
        dist = empirical_distribution(collection, lambda x: x)
        assert dist["a"] == pytest.approx(2 / 3)

    def test_log_marginal_likelihood(self):
        collection = WeightedCollection([1, 2], [math.log(0.5), math.log(1.5)])
        assert log_marginal_likelihood(collection) == pytest.approx(0.0)

    def test_absolute_error(self):
        assert absolute_error([1.0, 3.0], 2.0) == pytest.approx(1.0)


def flip_pair(p_source, p_target, obs_source=0.8, obs_target=0.8):
    def source_fn(t):
        x = t.sample(Flip(p_source), "x")
        t.observe(Flip(obs_source if x else 0.1), 1, "o")
        return x

    def target_fn(t):
        x = t.sample(Flip(p_target), "x")
        t.observe(Flip(obs_target if x else 0.1), 1, "o")
        return x

    return Model(source_fn), Model(target_fn)


class TestOutputDistribution:
    def test_identical_programs_give_posterior(self):
        p, q = flip_pair(0.5, 0.5)
        translator = CorrespondenceTranslator(p, q, Correspondence.identity(["x"]))
        eta = output_distribution(translator)
        posterior = exact_choice_marginal(q, "x")
        for key, probability in eta.items():
            value = dict(key)[("x",)]
            assert probability == pytest.approx(posterior[value])

    def test_sums_to_one(self):
        p, q = flip_pair(0.5, 0.3)
        translator = CorrespondenceTranslator(p, q, Correspondence.identity(["x"]))
        eta = output_distribution(translator)
        assert sum(eta.values()) == pytest.approx(1.0)

    def test_empty_correspondence_gives_prior_reweighted(self):
        """With nothing reused, η is Q's forward (prior) distribution over
        latents — observations don't affect the forward kernel."""
        p, q = flip_pair(0.5, 0.3)
        translator = CorrespondenceTranslator(p, q, Correspondence.empty())
        eta = output_distribution(translator)
        for key, probability in eta.items():
            value = dict(key)[("x",)]
            assert probability == pytest.approx(0.3 if value == 1 else 0.7)


class TestTranslatorError:
    def test_perfect_translator_has_zero_error(self):
        p, q = flip_pair(0.5, 0.5)
        translator = CorrespondenceTranslator(p, q, Correspondence.identity(["x"]))
        error = translator_error(translator)
        assert error.total == pytest.approx(0.0, abs=1e-12)

    def test_error_grows_with_program_distance(self):
        p, q_near = flip_pair(0.5, 0.45)
        _p2, q_far = flip_pair(0.5, 0.1)
        near = translator_error(
            CorrespondenceTranslator(p, q_near, Correspondence.identity(["x"]))
        )
        far = translator_error(
            CorrespondenceTranslator(p, q_far, Correspondence.identity(["x"]))
        )
        assert near.total < far.total

    def test_identity_beats_empty_correspondence(self):
        """A good correspondence strictly reduces ε(R) (Section 5.3)."""
        p, q = flip_pair(0.5, 0.45)
        with_corr = translator_error(
            CorrespondenceTranslator(p, q, Correspondence.identity(["x"]))
        )
        without = translator_error(
            CorrespondenceTranslator(p, q, Correspondence.empty())
        )
        assert with_corr.total < without.total

    def test_fully_corresponding_error_is_kl_of_semantics(self):
        """When every choice corresponds, ε(R) reduces to
        D_KL(Q^(f) || P^(f)) (Section 5.3, final remark)."""
        p, q = flip_pair(0.5, 0.3, obs_source=0.8, obs_target=0.8)
        translator = CorrespondenceTranslator(p, q, Correspondence.identity(["x"]))
        error = translator_error(translator)
        posterior_q = exact_choice_marginal(q, "x")
        posterior_p = exact_choice_marginal(p, "x")
        expected = kl_divergence(posterior_q, posterior_p)
        assert error.total == pytest.approx(expected)
        assert error.backward_divergence == pytest.approx(0.0, abs=1e-12)

    def test_error_predicts_required_sample_size(self, rng):
        """Higher ε(R) needs more traces for the same estimate accuracy —
        the Appendix B scaling, checked qualitatively."""
        p, q_near = flip_pair(0.5, 0.45)
        _p, q_far = flip_pair(0.5, 0.05)

        def estimate_error(q, num_traces):
            translator = CorrespondenceTranslator(p, q, Correspondence.identity(["x"]))
            sampler = exact_posterior_sampler(p)
            truth = exact_choice_marginal(q, "x")[1]
            errors = []
            for _ in range(40):
                traces, weights = [], []
                for _ in range(num_traces):
                    result = translator.translate(rng, sampler(rng))
                    traces.append(result.trace)
                    weights.append(result.log_weight)
                collection = WeightedCollection(traces, weights)
                errors.append(abs(collection.estimate_probability(lambda u: u["x"] == 1) - truth))
            return float(np.mean(errors))

        assert estimate_error(q_near, 40) < estimate_error(q_far, 40)
