"""Bitwise contract of the batched Distribution API.

``log_prob_batch(values)[i]`` must be bitwise identical to
``log_prob(values[i])`` for every concrete distribution — including
out-of-support values (-inf), edge-case parameters, and per-element
array parameters (compared against a scalar distribution built from that
element's parameters).  ``sample_batch`` promises determinism for a
fixed generator state, not stream-equality with sequential ``sample``.
"""

import math

import numpy as np
import pytest

from repro.distributions import (
    Beta,
    Categorical,
    Delta,
    Exponential,
    Flip,
    Gamma,
    Geometric,
    LogCategorical,
    LogNormal,
    Normal,
    Poisson,
    TwoNormals,
    Uniform,
    UniformDiscrete,
)
from repro.distributions.base import Distribution, RealLine
from repro.distributions import batch as bmath

NEG_INF = float("-inf")


def assert_bitwise(dist, values):
    """log_prob_batch == per-element log_prob, bit for bit."""
    batched = dist.log_prob_batch(np.asarray(values, dtype=np.float64))
    assert batched.dtype == np.float64
    for i, value in enumerate(values):
        scalar = dist.log_prob(value)
        got = float(batched[i])
        if math.isinf(scalar) or math.isinf(got):
            assert scalar == got, (dist, value, scalar, got)
        else:
            assert scalar.hex() == got.hex(), (dist, value, scalar, got)


CONTINUOUS_CASES = [
    (Normal(0.3, 1.7), [-2.5, 0.0, 0.3, 4.1, 100.0]),
    (Uniform(-1.0, 2.0), [-1.5, -1.0, 0.25, 2.0, 2.5]),
    (TwoNormals(0.5, 0.1, 0.4, 3.0), [-5.0, 0.0, 0.5, 2.0]),
    (TwoNormals(0.5, 0.0, 0.4, 3.0), [0.0, 0.5]),  # p=0 shortcut
    (TwoNormals(0.5, 1.0, 0.4, 3.0), [0.0, 0.5]),  # p=1 shortcut
    (Gamma(2.0, 1.5), [-1.0, 0.0, 0.25, 3.7]),
    (Beta(2.0, 5.0), [-0.1, 0.0, 0.3, 1.0, 1.5]),
    (LogNormal(0.1, 0.9), [-1.0, 0.0, 0.5, 2.0]),
    (Exponential(1.3), [-0.5, 0.0, 0.7, 10.0]),
]

DISCRETE_CASES = [
    (Flip(0.3), [0, 1, 2, -1]),
    (Flip(0.0), [0, 1]),
    (Flip(1.0), [0, 1]),
    (UniformDiscrete(2, 7), [1, 2, 5, 7, 8, 3.5]),
    (Categorical([0.2, 0.0, 0.8]), [-1, 0, 1, 2, 3, 0.5]),
    (LogCategorical([-1.0, NEG_INF, -0.5]), [-1, 0, 1, 2, 3]),
    (Delta(3), [2, 3, 4]),
    (Geometric(0.4), [-1, 0, 3, 2.5]),
    (Geometric(0.0), [0, 1]),
    (Poisson(2.5), [-1, 0, 4, 1.5]),
]


@pytest.mark.parametrize(
    "dist,values", CONTINUOUS_CASES + DISCRETE_CASES, ids=lambda c: repr(c)[:50]
)
def test_log_prob_batch_bitwise(dist, values):
    assert_bitwise(dist, values)


def test_array_parameterized_normal_matches_per_element_scalars():
    rng = np.random.default_rng(0)
    n = 257
    means = rng.normal(size=n)
    stds = np.abs(rng.normal(size=n)) + 0.1
    values = rng.normal(size=n)
    batched = Normal(means, stds).log_prob_batch(values)
    for i in range(n):
        assert batched[i].hex() == Normal(means[i], stds[i]).log_prob(values[i]).hex()


def test_array_parameterized_twonormals_matches_per_element_scalars():
    rng = np.random.default_rng(1)
    n = 100
    stds = np.abs(rng.normal(size=n)) + 0.2
    values = rng.normal(size=n)
    dist = TwoNormals(0.5, 0.1, 0.4, stds)
    batched = dist.log_prob_batch(values)
    for i in range(n):
        scalar = TwoNormals(0.5, 0.1, 0.4, stds[i]).log_prob(values[i])
        assert batched[i].hex() == scalar.hex()


def test_array_parameterized_gamma_respects_mask_and_elements():
    shapes = np.array([1.5, 2.0, 3.0])
    dist = Gamma(shapes, 1.2)
    values = np.array([-1.0, 0.5, 2.0])
    batched = dist.log_prob_batch(values)
    assert batched[0] == NEG_INF
    for i in (1, 2):
        assert batched[i].hex() == Gamma(shapes[i], 1.2).log_prob(values[i]).hex()


def test_array_parameter_validation_still_raises():
    with pytest.raises(ValueError):
        Normal(0.0, np.array([1.0, -1.0]))
    with pytest.raises(ValueError):
        Gamma(np.array([1.0, 0.0]), 1.0)


class _LoopOnly(Distribution):
    """Exercises the base-class fallbacks (third-party subclass shape)."""

    def sample(self, rng):
        return float(rng.normal())

    def log_prob(self, value):
        return -abs(float(value))

    def support(self):
        return RealLine()


def test_base_class_fallback_loops_over_scalar_methods():
    dist = _LoopOnly()
    values = np.array([-2.0, 0.0, 1.5])
    batched = dist.log_prob_batch(values)
    assert batched.tolist() == [dist.log_prob(v) for v in values.tolist()]
    rng = np.random.default_rng(7)
    draws = dist.sample_batch(rng, 5)
    rng2 = np.random.default_rng(7)
    assert draws.tolist() == [dist.sample(rng2) for _ in range(5)]


@pytest.mark.parametrize(
    "dist",
    [case[0] for case in CONTINUOUS_CASES + DISCRETE_CASES],
    ids=lambda d: repr(d)[:50],
)
def test_sample_batch_deterministic_and_in_support(dist):
    draws_a = dist.sample_batch(np.random.default_rng(11), 64)
    draws_b = dist.sample_batch(np.random.default_rng(11), 64)
    assert np.array_equal(np.asarray(draws_a), np.asarray(draws_b))
    support = dist.support()
    for value in np.asarray(draws_a).tolist()[:16]:
        assert support.contains(value)
    batched = dist.log_prob_batch(np.asarray(draws_a, dtype=np.float64))
    assert not np.isnan(batched).any()
    assert (batched > NEG_INF).all()


def test_scalar_log_prob_unchanged_by_batch_presence():
    # The scalar path must not route through the batched code.
    assert Normal(0.0, 1.0).log_prob(0.5) == -0.5 * 0.25 - math.log(1.0) - 0.5 * math.log(2 * math.pi)


class TestBmathHelpers:
    def test_exact_unary_matches_math_per_element(self):
        xs = np.abs(np.random.default_rng(3).normal(size=301)) + 1e-6
        for array_fn, scalar_fn in [
            (bmath.log, math.log),
            (bmath.exp, math.exp),
            (bmath.log1p, math.log1p),
            (bmath.lgamma, math.lgamma),
            (bmath.sqrt, math.sqrt),
        ]:
            out = array_fn(xs)
            for i, x in enumerate(xs.tolist()):
                assert out[i].hex() == scalar_fn(x).hex(), (array_fn, x)

    def test_scalar_passthrough(self):
        assert bmath.log(2.0) == math.log(2.0)
        assert bmath.sqrt(2.0) == math.sqrt(2.0)

    def test_shape_preserved(self):
        xs = np.arange(1.0, 7.0).reshape(2, 3)
        assert bmath.log(xs).shape == (2, 3)
