"""Unit tests for continuous distributions."""

import math

import numpy as np
import pytest
from scipy import integrate, stats

from repro.distributions import (
    NEG_INF,
    Beta,
    Gamma,
    LogNormal,
    Normal,
    TwoNormals,
    Uniform,
)


@pytest.fixture
def rng():
    return np.random.default_rng(321)


class TestNormal:
    def test_matches_scipy(self):
        dist = Normal(1.5, 2.0)
        for value in [-3.0, 0.0, 1.5, 10.0]:
            assert dist.log_prob(value) == pytest.approx(
                stats.norm.logpdf(value, 1.5, 2.0)
            )

    def test_invalid_std(self):
        with pytest.raises(ValueError):
            Normal(0.0, 0.0)
        with pytest.raises(ValueError):
            Normal(0.0, -1.0)

    def test_sample_moments(self, rng):
        dist = Normal(-2.0, 0.5)
        samples = np.array([dist.sample(rng) for _ in range(20000)])
        assert samples.mean() == pytest.approx(-2.0, abs=0.02)
        assert samples.std() == pytest.approx(0.5, abs=0.02)

    def test_support_is_real_line(self):
        assert Normal(0, 1).support() == Normal(5, 2).support()


class TestUniform:
    def test_density(self):
        dist = Uniform(2.0, 4.0)
        assert dist.log_prob(3.0) == pytest.approx(math.log(0.5))
        assert dist.log_prob(1.9) == NEG_INF
        assert dist.log_prob(4.1) == NEG_INF

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Uniform(1.0, 1.0)

    def test_support_inequality(self):
        assert Uniform(0, 1).support() != Uniform(0, 2).support()


class TestTwoNormals:
    def test_is_mixture_density(self):
        dist = TwoNormals(mean=1.0, prob_outlier=0.2, inlier_std=0.5, outlier_std=5.0)
        for value in [-5.0, 0.0, 1.0, 4.0]:
            expected = 0.8 * stats.norm.pdf(value, 1.0, 0.5) + 0.2 * stats.norm.pdf(
                value, 1.0, 5.0
            )
            assert math.exp(dist.log_prob(value)) == pytest.approx(expected)

    def test_integrates_to_one(self):
        dist = TwoNormals(mean=0.0, prob_outlier=0.3, inlier_std=1.0, outlier_std=4.0)
        total, _err = integrate.quad(lambda x: math.exp(dist.log_prob(x)), -50, 50)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_degenerate_mixture_weights(self):
        inlier_only = TwoNormals(0.0, 0.0, 1.0, 9.0)
        assert inlier_only.log_prob(0.5) == pytest.approx(stats.norm.logpdf(0.5, 0, 1))
        outlier_only = TwoNormals(0.0, 1.0, 1.0, 9.0)
        assert outlier_only.log_prob(0.5) == pytest.approx(stats.norm.logpdf(0.5, 0, 9))

    def test_sample_std_between_components(self, rng):
        dist = TwoNormals(mean=0.0, prob_outlier=0.5, inlier_std=1.0, outlier_std=3.0)
        samples = np.array([dist.sample(rng) for _ in range(20000)])
        assert 1.0 < samples.std() < 3.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TwoNormals(0.0, 1.5, 1.0, 2.0)
        with pytest.raises(ValueError):
            TwoNormals(0.0, 0.5, 0.0, 2.0)


class TestGamma:
    def test_matches_scipy(self):
        dist = Gamma(shape=2.5, scale=1.5)
        for value in [0.1, 1.0, 5.0]:
            assert dist.log_prob(value) == pytest.approx(
                stats.gamma.logpdf(value, a=2.5, scale=1.5)
            )

    def test_outside_support(self):
        assert Gamma(1.0, 1.0).log_prob(0.0) == NEG_INF
        assert Gamma(1.0, 1.0).log_prob(-1.0) == NEG_INF


class TestBeta:
    def test_matches_scipy(self):
        dist = Beta(2.0, 5.0)
        for value in [0.1, 0.5, 0.9]:
            assert dist.log_prob(value) == pytest.approx(stats.beta.logpdf(value, 2, 5))

    def test_outside_support(self):
        assert Beta(2.0, 2.0).log_prob(0.0) == NEG_INF
        assert Beta(2.0, 2.0).log_prob(1.0) == NEG_INF


class TestLogNormal:
    def test_matches_scipy(self):
        dist = LogNormal(mu=0.5, sigma=0.75)
        for value in [0.1, 1.0, 3.0]:
            assert dist.log_prob(value) == pytest.approx(
                stats.lognorm.logpdf(value, s=0.75, scale=math.exp(0.5))
            )

    def test_outside_support(self):
        assert LogNormal(0.0, 1.0).log_prob(-0.1) == NEG_INF

    def test_sample_positive(self, rng):
        dist = LogNormal(0.0, 1.0)
        assert all(dist.sample(rng) > 0 for _ in range(100))
