"""Unit tests for discrete distributions."""

import math

import numpy as np
import pytest

from repro.distributions import (
    NEG_INF,
    Categorical,
    Delta,
    Flip,
    Geometric,
    IntegerRange,
    LogCategorical,
    UniformDiscrete,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


class TestFlip:
    def test_log_prob_values(self):
        dist = Flip(0.25)
        assert dist.log_prob(1) == pytest.approx(math.log(0.25))
        assert dist.log_prob(0) == pytest.approx(math.log(0.75))

    def test_log_prob_outside_support(self):
        assert Flip(0.5).log_prob(2) == NEG_INF
        assert Flip(0.5).log_prob(0.5) == NEG_INF

    def test_degenerate_probabilities(self):
        assert Flip(0.0).log_prob(1) == NEG_INF
        assert Flip(0.0).log_prob(0) == 0.0
        assert Flip(1.0).log_prob(0) == NEG_INF
        assert Flip(1.0).log_prob(1) == 0.0

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            Flip(1.5)
        with pytest.raises(ValueError):
            Flip(-0.1)

    def test_sample_frequency(self, rng):
        dist = Flip(0.3)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(0.3, abs=0.02)

    def test_support_equality(self):
        assert Flip(0.3).support() == Flip(0.9).support()

    def test_enumerate_support(self):
        assert list(Flip(0.5).enumerate_support()) == [0, 1]

    def test_value_equality(self):
        assert Flip(0.3) == Flip(0.3)
        assert Flip(0.3) != Flip(0.4)


class TestUniformDiscrete:
    def test_log_prob_uniform(self):
        dist = UniformDiscrete(1, 6)
        for value in range(1, 7):
            assert dist.log_prob(value) == pytest.approx(-math.log(6))

    def test_log_prob_outside(self):
        dist = UniformDiscrete(1, 6)
        assert dist.log_prob(0) == NEG_INF
        assert dist.log_prob(7) == NEG_INF
        assert dist.log_prob(2.5) == NEG_INF

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            UniformDiscrete(5, 2)

    def test_singleton_range(self):
        dist = UniformDiscrete(3, 3)
        assert dist.log_prob(3) == pytest.approx(0.0)

    def test_samples_in_range(self, rng):
        dist = UniformDiscrete(-2, 4)
        samples = [dist.sample(rng) for _ in range(1000)]
        assert min(samples) >= -2 and max(samples) <= 4
        assert set(samples) == set(range(-2, 5))

    def test_support_mismatch_detected(self):
        # The translator uses support inequality to refuse reuse; the
        # paper's Example 3 rejects matching uniform(1,6) with uniform(6,10).
        assert UniformDiscrete(1, 6).support() != UniformDiscrete(6, 10).support()
        assert UniformDiscrete(1, 6).support() == IntegerRange(1, 6)


class TestCategorical:
    def test_normalizes(self):
        dist = Categorical([2.0, 2.0])
        assert dist.log_prob(0) == pytest.approx(math.log(0.5))

    def test_zero_probability_category(self):
        dist = Categorical([0.5, 0.0, 0.5])
        assert dist.log_prob(1) == NEG_INF

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Categorical([])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            Categorical([0.5, -0.5, 1.0])

    def test_sample_distribution(self, rng):
        dist = Categorical([0.2, 0.5, 0.3])
        samples = [dist.sample(rng) for _ in range(20000)]
        counts = np.bincount(samples, minlength=3) / len(samples)
        assert counts == pytest.approx([0.2, 0.5, 0.3], abs=0.02)


class TestLogCategorical:
    def test_matches_categorical(self):
        probs = [0.2, 0.5, 0.3]
        log_dist = LogCategorical([math.log(p) for p in probs])
        dist = Categorical(probs)
        for value in range(3):
            assert log_dist.log_prob(value) == pytest.approx(dist.log_prob(value))

    def test_unnormalized_input(self):
        log_dist = LogCategorical([0.0, 0.0])
        assert log_dist.log_prob(0) == pytest.approx(math.log(0.5))

    def test_neg_inf_entry(self):
        log_dist = LogCategorical([0.0, NEG_INF])
        assert log_dist.log_prob(0) == pytest.approx(0.0)
        assert log_dist.log_prob(1) == NEG_INF

    def test_all_neg_inf_raises(self):
        with pytest.raises(ValueError):
            LogCategorical([NEG_INF, NEG_INF])

    def test_sampling_respects_weights(self, rng):
        log_dist = LogCategorical([math.log(0.9), math.log(0.1)])
        samples = [log_dist.sample(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(0.1, abs=0.02)


class TestDelta:
    def test_point_mass(self):
        dist = Delta(42)
        assert dist.log_prob(42) == 0.0
        assert dist.log_prob(41) == NEG_INF

    def test_sample_returns_value(self, rng):
        assert Delta("x").sample(rng) == "x"


class TestGeometric:
    def test_log_prob(self):
        dist = Geometric(0.5)
        # P(count = k) = p^k (1 - p)
        for count in range(5):
            assert dist.log_prob(count) == pytest.approx(
                count * math.log(0.5) + math.log(0.5)
            )

    def test_sums_to_one(self):
        dist = Geometric(0.3)
        total = sum(math.exp(dist.log_prob(k)) for k in range(200))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_negative_outside_support(self):
        assert Geometric(0.3).log_prob(-1) == NEG_INF

    def test_p_zero(self):
        dist = Geometric(0.0)
        assert dist.log_prob(0) == pytest.approx(0.0)
        assert dist.log_prob(1) == NEG_INF

    def test_sample_mean(self, rng):
        dist = Geometric(0.5)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(1.0, abs=0.05)
