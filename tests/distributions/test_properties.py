"""Property-based tests for distribution invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Categorical,
    Flip,
    Normal,
    TwoNormals,
    Uniform,
    UniformDiscrete,
)

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
open_probabilities = st.floats(min_value=0.01, max_value=0.99)
means = st.floats(min_value=-100, max_value=100, allow_nan=False)
stds = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)


@given(probabilities)
def test_flip_mass_sums_to_one(p):
    dist = Flip(p)
    total = math.exp(dist.log_prob(0)) + math.exp(dist.log_prob(1))
    assert math.isclose(total, 1.0, rel_tol=1e-12)


@given(st.integers(-50, 50), st.integers(0, 100))
def test_uniform_discrete_mass_sums_to_one(low, width):
    dist = UniformDiscrete(low, low + width)
    total = sum(math.exp(dist.log_prob(v)) for v in range(low, low + width + 1))
    assert math.isclose(total, 1.0, rel_tol=1e-9)


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=10))
def test_categorical_normalizes(weights):
    if sum(weights) <= 0:
        return
    dist = Categorical(weights)
    total = sum(math.exp(dist.log_prob(i)) for i in range(len(weights)))
    assert math.isclose(total, 1.0, rel_tol=1e-9)


@given(means, stds)
def test_normal_log_prob_peaks_at_mean(mean, std):
    dist = Normal(mean, std)
    at_mean = dist.log_prob(mean)
    assert dist.log_prob(mean + std) < at_mean
    assert dist.log_prob(mean - std) < at_mean


@given(means, open_probabilities, stds, stds)
def test_two_normals_between_components(mean, p_out, std_a, std_b):
    inlier_std, outlier_std = min(std_a, std_b), max(std_a, std_b)
    mixture = TwoNormals(mean, p_out, inlier_std, outlier_std)
    inlier = Normal(mean, inlier_std)
    outlier = Normal(mean, outlier_std)
    value = mean + inlier_std / 2
    lo = min(inlier.log_prob(value), outlier.log_prob(value))
    hi = max(inlier.log_prob(value), outlier.log_prob(value))
    assert lo - 1e-9 <= mixture.log_prob(value) <= hi + 1e-9


@given(means, stds, st.randoms(use_true_random=False))
@settings(max_examples=25)
def test_samples_land_in_support(mean, std, pyrandom):
    rng = np.random.default_rng(pyrandom.randint(0, 2**32 - 1))
    for dist in (Normal(mean, std), Uniform(mean, mean + std), Flip(0.5)):
        value = dist.sample(rng)
        assert dist.support().contains(value)
        assert dist.log_prob(value) > float("-inf")
