"""Tests for the ablation studies (small configurations)."""

import pytest

from repro.experiments.ablations import AblationConfig, run_ablations


@pytest.fixture(scope="module")
def result():
    config = AblationConfig(
        num_particles=150, sequence_length=5, repetitions=8, fixed_traces=120
    )
    return run_ablations(config, quiet=True)


class TestResamplingAblation:
    def test_all_schemes_present(self, result):
        assert {row.series for row in result.resampling} == {
            "multinomial",
            "systematic",
            "stratified",
            "residual",
        }

    def test_all_schemes_converge(self, result):
        for row in result.resampling:
            assert row["avg_error"] < 0.12


class TestCorrespondenceAblation:
    def test_error_monotone_in_correspondence(self, result):
        by_name = {row.series: row for row in result.correspondence}
        full = by_name["identity {burglary, alarm}"]
        partial = by_name["partial {burglary}"]
        empty = by_name["empty"]
        # ε(R) strictly increases as the correspondence shrinks.
        assert full["translator_error"] < partial["translator_error"] < empty["translator_error"]
        # And the estimate error follows at least at the extremes.
        assert full["avg_error"] < empty["avg_error"]


class TestProposalAblation:
    def test_conditional_proposal_improves_error_and_ess(self, result):
        by_name = {row.series: row for row in result.proposal}
        prior = by_name["prior (paper default)"]
        conditional = by_name["exact conditional (future work)"]
        assert conditional["translator_error"] < prior["translator_error"]
        assert conditional["avg_ess"] > prior["avg_ess"]
