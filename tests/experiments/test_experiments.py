"""Integration tests for the figure runners (small configurations).

Each test runs the real experiment code with reduced sizes and checks
the qualitative claims of the corresponding figure — who wins, in which
direction, by roughly what kind of margin.
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    Fig8Config,
    Fig9Config,
    Fig10Config,
    figure1_rows,
    run_fig8,
    run_fig9,
    run_fig10,
)


class TestFigure1:
    def test_exact_numbers_match_paper(self):
        result = figure1_rows(num_traces=4000, seed=7)
        values = {row.series: row["burglary=1"] for row in result.rows}
        assert values["original/posterior (exact)"] == pytest.approx(0.205, abs=0.001)
        assert values["refined/posterior (exact)"] == pytest.approx(0.194, abs=0.001)
        assert values["original/prior"] == pytest.approx(0.02)

    def test_worked_example_weight(self):
        result = figure1_rows(num_traces=100, seed=7)
        assert result.example_weight == pytest.approx(1.1875)

    def test_incremental_estimate_near_exact(self):
        result = figure1_rows(num_traces=20000, seed=7)
        values = {row.series: row["burglary=1"] for row in result.rows}
        assert values["refined/posterior (incremental)"] == pytest.approx(
            values["refined/posterior (exact)"], abs=0.04
        )


@pytest.mark.slow
class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        config = Fig8Config(
            repetitions=3,
            trace_counts=(10, 200),
            mcmc_iterations=(20, 120),
            gold_iterations=10000,
        )
        return run_fig8(config, quiet=True)

    def test_gold_slope_is_plausible(self, result):
        # True slope -0.8 with mild contamination.
        assert -1.1 < result.gold_slope < -0.5

    def test_incremental_beats_mcmc_at_comparable_runtime(self, result):
        by_series = {}
        for row in result.rows:
            by_series.setdefault(row.series, []).append(row)
        best_incremental = min(r["avg_error"] for r in by_series["Incremental"])
        best_mcmc = min(r["avg_error"] for r in by_series["MCMC"])
        # Incremental reaches lower error than prior-proposal MCMC at
        # these budgets (Figure 8's headline).
        assert best_incremental < best_mcmc

    def test_weights_reduce_error(self, result):
        by_series = {}
        for row in result.rows:
            by_series.setdefault(row.series, []).append(row)
        weighted = {r["param"]: r["avg_error"] for r in by_series["Incremental"]}
        unweighted = {
            r["param"]: r["avg_error"] for r in by_series["Incremental (no weights)"]
        }
        largest = max(weighted)
        assert weighted[largest] < unweighted[largest]


@pytest.mark.slow
class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        config = Fig9Config(
            num_train_words=2500,
            num_test_words=6,
            trace_counts=(5, 20),
            gibbs_sweeps=(1, 3),
            gibbs_chains=3,
            seed=3,
        )
        return run_fig9(config, quiet=True)

    def test_incremental_beats_gibbs(self, result):
        by_series = {}
        for row in result.rows:
            by_series.setdefault(row.series, []).append(row)
        best_incremental = max(
            r["avg_truth_probability"] for r in by_series["Incremental"]
        )
        best_gibbs = max(r["avg_truth_probability"] for r in by_series["Gibbs"])
        assert best_incremental > best_gibbs

    def test_incremental_is_faster_than_gibbs(self, result):
        by_series = {}
        for row in result.rows:
            by_series.setdefault(row.series, []).append(row)
        slowest_incremental = max(
            r["median_runtime_s"] for r in by_series["Incremental"]
        )
        fastest_gibbs = min(r["median_runtime_s"] for r in by_series["Gibbs"])
        assert slowest_incremental < fastest_gibbs

    def test_metric_is_log_probability(self, result):
        for row in result.rows:
            assert row["log_truth_probability"] == pytest.approx(
                math.log(row["avg_truth_probability"])
            )


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(
            Fig10Config(num_points=(5, 50, 500), repetitions=3, seed=3), quiet=True
        )

    def test_baseline_grows_with_n(self, result):
        baseline = {r["n"]: r["translation_time_s"] for r in result.rows if r.series == "Baseline"}
        assert baseline[500] > 5 * baseline[5]

    def test_optimized_work_is_constant(self, result):
        visited = {
            r["n"]: r["visited_statements"]
            for r in result.rows
            if r.series == "Optimized"
        }
        assert visited[5] == visited[50] == visited[500]

    def test_optimized_wins_at_large_n(self, result):
        times = {}
        for row in result.rows:
            times.setdefault(row.series, {})[row["n"]] = row["translation_time_s"]
        assert times["Optimized"][500] < times["Baseline"][500] / 5


class TestHarness:
    def test_rows_to_json_round_trip(self, tmp_path):
        import json

        from repro.experiments.harness import Row, rows_to_json, save_rows

        rows = [
            Row("a", {"x": 1, "y": 2.5}),
            Row("b", {"x": 2, "y": -0.5}),
        ]
        decoded = json.loads(rows_to_json(rows))
        assert decoded == [
            {"series": "a", "x": 1, "y": 2.5},
            {"series": "b", "x": 2, "y": -0.5},
        ]
        path = tmp_path / "rows.json"
        save_rows(rows, str(path))
        assert json.loads(path.read_text()) == decoded

    def test_non_finite_floats_emit_strict_json(self, tmp_path):
        """NaN/±Inf in experiment rows (degenerate ESS, -inf log weights)
        must serialize to strict JSON, not Python's bare NaN tokens."""
        import json

        import numpy as np

        from repro.experiments.harness import Row, rows_to_json, save_rows

        rows = [
            Row("degenerate", {
                "ess": float("nan"),
                "log_weight": float("-inf"),
                "bound": float("inf"),
                "count": np.int64(3),
                "score": np.float64(0.5),
                "weights": [0.5, float("nan")],
                "nested": {"logZ": float("-inf")},
            }),
        ]
        text = rows_to_json(rows)
        # Bare (unquoted) non-finite tokens are not JSON.
        for token in ("NaN", "Infinity", "-Infinity"):
            assert f": {token}" not in text
        decoded = json.loads(text)  # strict parse: bare tokens would fail
        record = decoded[0]
        assert record["ess"] is None
        assert record["log_weight"] == "-Infinity"
        assert record["bound"] == "Infinity"
        assert record["count"] == 3
        assert record["score"] == 0.5
        assert record["weights"] == [0.5, None]
        assert record["nested"] == {"logZ": "-Infinity"}
        path = tmp_path / "rows.json"
        save_rows(rows, str(path))
        assert json.loads(path.read_text()) == decoded

    def test_print_table_formats(self, capsys):
        from repro.experiments.harness import Row, print_table

        rows = [Row("method", {"value": 0.123456, "tiny": 1e-7})]
        print_table(rows, title="demo")
        output = capsys.readouterr().out
        assert "demo" in output
        assert "0.1235" in output
        assert "1.000e-07" in output

    def test_median_time_positive(self):
        from repro.experiments.harness import median_time

        assert median_time(lambda: sum(range(100)), repetitions=3) >= 0.0
