"""Tests for the GMM substrate (Section 7.4)."""

import numpy as np
import pytest

from repro.gmm import gmm_conditioned_source, gmm_edit_setup, gmm_generative_source
from repro.graph import GraphTranslator, run_initial, subtree_at, assignment_path
from repro.lang import lang_model, parse_program


@pytest.fixture
def rng():
    return np.random.default_rng(10)


class TestGenerativeGMM:
    def test_trace_size(self, rng):
        setup = gmm_edit_setup(n=25, k=10)
        trace = run_initial(setup.source_program, rng, setup.env)
        # K centers + N cluster picks + N data draws.
        assert len(trace) == 10 + 25 * 2

    def test_returns_data_array(self, rng):
        setup = gmm_edit_setup(n=7, k=3)
        trace = run_initial(setup.source_program, rng, setup.env)
        assert len(trace.return_value) == 7

    def test_edit_changes_only_sigma(self):
        setup = gmm_edit_setup(n=5, k=4, sigma_old=2, sigma_new=5)
        source_sigma = subtree_at(
            setup.source_program, assignment_path(setup.source_program, "sigma") + ("expr",)
        )
        target_sigma = subtree_at(
            setup.target_program, assignment_path(setup.target_program, "sigma") + ("expr",)
        )
        assert source_sigma.value == 2
        assert target_sigma.value == 5

    def test_data_follows_mixture(self, rng):
        """Generated data are centered on sampled cluster centers."""
        setup = gmm_edit_setup(n=2000, k=2, sigma_old=20)
        trace = run_initial(setup.source_program, rng, setup.env)
        centers = sorted(
            record.value
            for address, record in trace.choices().items()
            if address[0].startswith("gauss") and len(address) == 2
        )
        data = np.asarray(trace.return_value)
        # Every data point lies within a few stds of some center.
        distances = np.min(np.abs(data[:, None] - np.array(centers)[None, :]), axis=1)
        assert np.quantile(distances, 0.99) < 4.0


class TestTranslationScaling:
    def test_visited_statements_are_k_plus_constant(self, rng):
        visited = {}
        for k in (2, 8):
            setup = gmm_edit_setup(n=50, k=k)
            translator = GraphTranslator(
                setup.source_program, setup.target_program, source_env=setup.env
            )
            trace = translator.initial_trace(rng)
            result = translator.translate(rng, trace)
            visited[k] = result.components["visited_statements"]
        # Spine statements (a constant) + the centers loop's K
        # index-assignments: visited(k) - k is constant.
        assert visited[8] - visited[2] == 6
        assert visited[2] <= 2 + 10  # small constant overhead only

    def test_translation_weight_depends_only_on_centers(self, rng):
        from repro.distributions import Normal

        setup = gmm_edit_setup(n=40, k=6, sigma_old=2, sigma_new=4)
        translator = GraphTranslator(
            setup.source_program, setup.target_program, source_env=setup.env
        )
        trace = translator.initial_trace(rng)
        result = translator.translate(rng, trace)
        centers = [
            record.value
            for address, record in trace.choices().items()
            if address[0].startswith("gauss") and len(address) == 2
            and record.dist.std == 2.0
        ]
        expected = sum(
            Normal(0, 4).log_prob(c) - Normal(0, 2).log_prob(c) for c in centers
        )
        assert result.log_weight == pytest.approx(expected)


class TestConditionedGMM:
    def test_observed_points_enter_likelihood(self, rng):
        program = parse_program(gmm_conditioned_source(k=2, sigma=3))
        ys = [0.5, -1.0, 2.5]
        model = lang_model(program, env={"n": len(ys), "ys": ys})
        trace = model.simulate(rng)
        # 2 centers + 3 assignments latent; 3 observations.
        assert len(trace) == 5
        assert len(trace.observation_addresses()) == 3

    def test_posterior_centers_track_data(self, rng):
        """With one cluster, the posterior center concentrates on the
        data mean (checked with importance sampling)."""
        program = parse_program(gmm_conditioned_source(k=1, sigma=5))
        ys = [2.0, 2.2, 1.8, 2.1, 1.9, 2.0, 2.0, 2.1]
        model = lang_model(program, env={"n": len(ys), "ys": ys})
        traces, weights = [], []
        for _ in range(4000):
            trace, log_weight = model.generate(rng)
            traces.append(trace)
            weights.append(log_weight)
        from repro import WeightedCollection

        collection = WeightedCollection(traces, weights)
        estimate = collection.estimate(lambda t: t.return_value[0])
        # Conjugate posterior mean: (sum y / 1) / (n + 1/25)
        expected = sum(ys) / (len(ys) + 1 / 25)
        assert estimate == pytest.approx(expected, abs=0.15)

    def test_source_k_matches_parameter(self):
        assert "k = 7;" in gmm_generative_source(k=7)
        assert "sigma = 4;" in gmm_generative_source(sigma=4)
