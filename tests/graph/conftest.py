"""Shared fixtures and the Equation-2 reference weight for graph tests."""

import numpy as np
import pytest

from repro.core.corr_translator import _BackwardKernelScorer
from repro.core.trace import ChoiceMap


@pytest.fixture
def rng():
    return np.random.default_rng(77)


def eq2_log_weight(p_model, q_model, correspondence, t_choices, u_choices):
    """Reference weight: Equation 2 evaluated term by term.

    ``P̃r[u ~ Q] * l(t; u) / (P̃r[t ~ P] * k(u; t))`` with both kernels
    scored deterministically by replay.  Independent of the incremental
    engine, so it cross-checks the propagation-based weight.
    """
    t_choices = ChoiceMap(dict(t_choices))
    u_choices = ChoiceMap(dict(u_choices))
    t_trace = p_model.score(t_choices)
    u_trace = q_model.score(u_choices)

    # k(u; t): probability that the forward translator produces u from t.
    forward_scorer = _BackwardKernelScorer(
        u_choices, q_model.observations, correspondence.inverse(), t_trace
    )
    q_model.run(forward_scorer)
    forward_log = forward_scorer.backward_log_prob

    # l(t; u): probability that the backward translator reproduces t.
    backward_scorer = _BackwardKernelScorer(
        t_choices, p_model.observations, correspondence, u_trace
    )
    p_model.run(backward_scorer)
    backward_log = backward_scorer.backward_log_prob

    return u_trace.log_prob + backward_log - t_trace.log_prob - forward_log
