"""Chained incremental runs: traces produced by ``propagate`` are valid
inputs to further propagation (the iterative-editing workflow of
Section 4.2 on the graph runtime)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import propagate, replace_constant, run_initial
from repro.lang import lang_model, parse_program

SOURCE = """
a = 2;
x = gauss(0, a);
b = 1;
y = gauss(x, b);
observe(gauss(y, 1) == 0.5);
return y;
"""


@pytest.fixture
def rng():
    return np.random.default_rng(21)


class TestChainedPropagation:
    def test_two_edits_in_sequence(self, rng):
        p0 = parse_program(SOURCE)
        p1 = replace_constant(p0, "a", 3)
        p2 = replace_constant(p1, "b", 2)

        trace0 = run_initial(p0, rng)
        step1 = propagate(p1, trace0, rng)
        step2 = propagate(p2, step1.trace, rng)

        # The final trace scores correctly under the final program.
        model = lang_model(p2)
        choices = {a: r.value for a, r in step2.trace.choices().items()}
        assert step2.trace.log_prob == pytest.approx(model.log_prob(choices))

        # Values survive both translations (all supports are unchanged).
        assert step2.trace.choices().keys() == trace0.choices().keys()
        for address, record in trace0.choices().items():
            assert step2.trace[address] == record.value

    def test_chained_weights_compose(self, rng):
        """The product of stepwise weights equals the weight of the
        direct translation (both edits at once), since every choice is
        reused at each step."""
        p0 = parse_program(SOURCE)
        p1 = replace_constant(p0, "a", 3)
        p2 = replace_constant(p1, "b", 2)

        trace0 = run_initial(p0, rng)
        step1 = propagate(p1, trace0, rng)
        step2 = propagate(p2, step1.trace, rng)
        direct = propagate(p2, trace0, rng)
        assert step1.log_weight + step2.log_weight == pytest.approx(direct.log_weight)

    def test_second_edit_does_not_revisit_first_region(self, rng):
        source = parse_program(
            """
            a = 2;
            xs = array(8, 0);
            for i in [0 .. 8) { xs[i] = gauss(0, a); }
            b = 1;
            ys = array(8, 0);
            for i in [0 .. 8) { ys[i] = gauss(xs[i], b); }
            """
        )
        edited_a = replace_constant(source, "a", 3)
        edited_ab = replace_constant(edited_a, "b", 2)
        trace0 = run_initial(source, rng)
        step1 = propagate(edited_a, trace0, rng)
        step2 = propagate(edited_ab, step1.trace, rng)
        # The second propagation skips the xs loop entirely: its For
        # record is shared by reference with step1's trace.
        def nth_statement_record(trace, index):
            record = trace.root
            for _ in range(index):
                record = record.children["second"]
            return record.children["first"]

        xs_loop_index = 2  # a; xs = array(...); for ...
        assert nth_statement_record(step2.trace, xs_loop_index) is nth_statement_record(
            step1.trace, xs_loop_index
        )
        # Visits are bounded by the ys region plus the sequence spine.
        assert step2.visited_statements < trace0.visited_statements
        assert step2.skipped_statements >= 2

    @given(
        st.lists(st.sampled_from([1.5, 2.0, 2.5, 3.0]), min_size=1, max_size=4),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_edit_chains_stay_consistent(self, sigmas, seed):
        rng = np.random.default_rng(seed)
        base = parse_program(SOURCE)
        trace = run_initial(base, rng)
        program = base
        for sigma in sigmas:
            program = replace_constant(program, "a", sigma)
            result = propagate(program, trace, rng)
            trace = result.trace
        model = lang_model(program)
        choices = {a: r.value for a, r in trace.choices().items()}
        assert trace.log_prob == pytest.approx(model.log_prob(choices))
