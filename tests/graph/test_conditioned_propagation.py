"""Incremental propagation on *conditioned* programs (observe at scale).

The conditioned GMM has one observation per data point; an edit to the
center-prior hyper-parameter must not revisit them (their likelihood
factors cancel), while an edit that changes the likelihood must add
``p_Q(obs) / p_P(obs)`` factors for every data point.
"""

import numpy as np
import pytest

from repro.distributions import Normal
from repro.graph import propagate, replace_constant, run_initial
from repro.gmm import gmm_conditioned_source
from repro.lang import lang_model, parse_program

from .conftest import eq2_log_weight
from repro.graph.diff import diff_correspondence


@pytest.fixture
def rng():
    return np.random.default_rng(14)


@pytest.fixture
def data():
    gen = np.random.default_rng(2)
    return [float(v) for v in gen.normal(0.0, 2.0, size=30)]


class TestConditionedGMM:
    def test_hyperparameter_edit_skips_observations(self, data, rng):
        program = parse_program(gmm_conditioned_source(k=3, sigma=2))
        edited = replace_constant(program, "sigma", 4)
        env = {"n": len(data), "ys": data}
        old = run_initial(program, rng, env)
        result = propagate(edited, old, rng)

        # Weight = center-prior density ratios only; every observation
        # cancels because the reused centers leave likelihoods unchanged.
        centers = [
            record.value
            for address, record in old.choices().items()
            if address[0].startswith("gauss")
        ]
        expected = sum(
            Normal(0, 4).log_prob(c) - Normal(0, 2).log_prob(c) for c in centers
        )
        assert result.log_weight == pytest.approx(expected)
        # The observation loop is skipped entirely.
        assert result.skipped_statements >= 1
        assert result.visited_statements < old.visited_statements / 2

    def test_likelihood_edit_reweights_every_observation(self, data, rng):
        """Changing the observation noise std re-scores all data points."""
        source_text = gmm_conditioned_source(k=2, sigma=2).replace(
            "observe(gauss(centers[z], 1) == ys[i]);",
            "observe(gauss(centers[z], w) == ys[i]);",
        )
        program = parse_program("w = 1;\n" + source_text)
        edited = replace_constant(program, "w", 2)
        env = {"n": len(data), "ys": data}
        old = run_initial(program, rng, env)
        result = propagate(edited, old, rng)

        expected = 0.0
        choices = old.choices()
        centers = {
            address[-1]: record.value
            for address, record in choices.items()
            if address[0].startswith("gauss")
        }
        # Reconstruct per-point assignments from the trace.
        assignments = {
            address[-1]: record.value
            for address, record in choices.items()
            if address[0].startswith("uniform")
        }
        for i, y in enumerate(data):
            center = centers[assignments[i]] if len(centers) > 1 else list(centers.values())[0]
            expected += Normal(center, 2).log_prob(y) - Normal(center, 1).log_prob(y)
        assert result.log_weight == pytest.approx(expected)

    def test_weight_matches_eq2_reference(self, data, rng):
        program = parse_program(gmm_conditioned_source(k=3, sigma=2))
        edited = replace_constant(program, "sigma", 3)
        env = {"n": len(data), "ys": data}
        old = run_initial(program, rng, env)
        result = propagate(edited, old, rng)
        expected = eq2_log_weight(
            lang_model(program, env=env),
            lang_model(edited, env=env),
            diff_correspondence(program, edited),
            {a: r.value for a, r in old.choices().items()},
            {a: r.value for a, r in result.trace.choices().items()},
        )
        assert result.log_weight == pytest.approx(expected)

    def test_data_edit_via_environment(self, data, rng):
        """Changing one observed data point re-executes only what reads it.

        The ys array is an environment parameter, so a new array value
        gives it a fresh version; the observation loop re-runs and the
        weight is the likelihood ratio of the changed points.
        """
        program = parse_program(gmm_conditioned_source(k=2, sigma=2))
        env_old = {"n": len(data), "ys": data}
        old = run_initial(program, rng, env_old)
        new_data = list(data)
        new_data[7] += 1.5
        result = propagate(program, old, rng, env={"n": len(data), "ys": new_data})

        choices = old.choices()
        centers = {
            address[-1]: record.value
            for address, record in choices.items()
            if address[0].startswith("gauss")
        }
        assignments = {
            address[-1]: record.value
            for address, record in choices.items()
            if address[0].startswith("uniform")
        }
        center = centers[assignments[7]]
        expected = Normal(center, 1).log_prob(new_data[7]) - Normal(center, 1).log_prob(
            data[7]
        )
        assert result.log_weight == pytest.approx(expected)
        # Centers are untouched: their loop skips.
        assert result.skipped_statements >= 1
