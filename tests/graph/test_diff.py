"""Tests for the tree-diff correspondence (Section 6 heuristic)."""

import pytest

from repro.graph import align_labels, diff_correspondence, label_correspondence
from repro.lang import parse_program, random_labels
from repro.lang.programs import (
    BURGLARY_ORIGINAL,
    BURGLARY_REFINED,
    FIGURE5_P,
    FIGURE5_Q,
)


def label_by_prefix(program, prefix, occurrence=0):
    labels = [l for l in random_labels(program) if l.startswith(prefix)]
    return labels[occurrence]


class TestAlignLabels:
    def test_identical_programs_full_match(self):
        p = parse_program(FIGURE5_P)
        q = parse_program(FIGURE5_P)
        mapping = align_labels(p, q)
        assert sorted(mapping.keys()) == sorted(random_labels(q))
        assert sorted(mapping.values()) == sorted(random_labels(p))

    def test_burglary_pair(self):
        """The Figure 1 correspondence {α -> α', β -> β'} is recovered:
        burglary and alarm match; earthquake is new; the changed
        observation flips are aligned as edits of each other."""
        p = parse_program(BURGLARY_ORIGINAL)
        q = parse_program(BURGLARY_REFINED)
        mapping = align_labels(p, q)
        p_burglary = label_by_prefix(p, "flip", 0)
        q_burglary = label_by_prefix(q, "flip", 0)
        assert mapping[q_burglary] == p_burglary
        # Earthquake (the second flip of Q) must not map to anything.
        q_earthquake = label_by_prefix(q, "flip", 1)
        assert q_earthquake not in mapping or mapping[q_earthquake] != label_by_prefix(p, "flip", 1)

    def test_figure5_pair(self):
        """Example 3's correspondence: a, b match; c and d do not match
        across kinds (flip vs uniform statements differ structurally)."""
        p = parse_program(FIGURE5_P)
        q = parse_program(FIGURE5_Q)
        mapping = align_labels(p, q)
        # The if statement is identical modulo labels: its three random
        # expressions (branch uniform and flip) pair up.
        p_uniform = label_by_prefix(p, "uniform", 0)
        q_uniform = label_by_prefix(q, "uniform", 0)
        assert mapping[q_uniform] == p_uniform

    def test_constant_edit_alignment(self):
        p = parse_program("x = flip(0.5); y = flip(0.9);")
        q = parse_program("x = flip(0.6); y = flip(0.9);")
        mapping = align_labels(p, q)
        # Both statements align: the first as an edit, the second exactly.
        assert len(mapping) == 2

    def test_insertion_preserves_other_matches(self):
        p = parse_program("x = flip(0.5); y = flip(0.9);")
        q = parse_program("x = flip(0.5); z = uniform(0, 3); y = flip(0.9);")
        mapping = align_labels(p, q)
        p_labels = random_labels(p)
        q_labels = random_labels(q)
        assert mapping[q_labels[0]] == p_labels[0]
        assert mapping[q_labels[2]] == p_labels[1]
        assert q_labels[1] not in mapping

    def test_deletion(self):
        p = parse_program("x = flip(0.5); z = uniform(0, 3); y = flip(0.9);")
        q = parse_program("x = flip(0.5); y = flip(0.9);")
        mapping = align_labels(p, q)
        assert len(mapping) == 2


class TestLabelCorrespondence:
    def test_addresses_preserve_loop_indices(self):
        corr = label_correspondence({"new_label": "old_label"})
        assert corr.forward(("new_label", 3)) == ("old_label", 3)
        assert corr.backward(("old_label", 3)) == ("new_label", 3)
        assert corr.forward(("other", 3)) is None

    def test_non_injective_raises(self):
        with pytest.raises(ValueError):
            label_correspondence({"a": "shared", "b": "shared"})

    def test_diff_correspondence_end_to_end(self):
        p = parse_program("x = flip(0.5);")
        q = parse_program("x = flip(0.7);")
        corr = diff_correspondence(p, q)
        p_label = random_labels(p)[0]
        q_label = random_labels(q)[0]
        assert corr.forward((q_label,)) == (p_label,)
