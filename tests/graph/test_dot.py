"""Tests for the DOT export of dependency-record traces."""

import numpy as np
import pytest

from repro.graph import propagate, replace_constant, run_initial, to_dot
from repro.lang import parse_program
from repro.lang.programs import FIGURE7


@pytest.fixture
def rng():
    return np.random.default_rng(9)


class TestToDot:
    def test_valid_digraph_structure(self, rng):
        trace = run_initial(parse_program(FIGURE7), rng)
        dot = to_dot(trace)
        assert dot.startswith("digraph trace {")
        assert dot.endswith("}")
        assert dot.count("[label=") >= 8  # one node per statement record

    def test_choices_annotated(self, rng):
        trace = run_initial(parse_program("x = flip(0.5);"), rng)
        dot = to_dot(trace)
        assert "flip:1:5 ->" in dot

    def test_observations_annotated(self, rng):
        trace = run_initial(parse_program("observe(flip(0.8) == 1);"), rng)
        dot = to_dot(trace)
        assert "obs observe" in dot or "obs flip" in dot

    def test_dataflow_edges_present(self, rng):
        trace = run_initial(parse_program(FIGURE7), rng)
        dot = to_dot(trace)
        # The read of `a` by `b = flip(a/3)` is a dotted edge labelled a.
        assert 'style=dotted, label="a"' in dot

    def test_shared_records_dashed(self, rng):
        p = parse_program(FIGURE7)
        q = replace_constant(p, "a", 2)
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        dot = to_dot(result.trace, old=old)
        # d = flip(b/2) was skipped, so exactly its node is dashed.
        assert dot.count("style=dashed") == 1

    def test_fresh_trace_has_no_dashed_nodes(self, rng):
        trace = run_initial(parse_program(FIGURE7), rng)
        assert "dashed" not in to_dot(trace)

    def test_labels_are_escaped(self, rng):
        trace = run_initial(parse_program('x = 1; // "quoted" comment\n'), rng)
        dot = to_dot(trace)
        # No raw double quotes inside labels beyond the delimiters.
        for line in dot.splitlines():
            if "label=" in line:
                payload = line.split('label="', 1)[1].rsplit('"', 1)[0]
                assert '"' not in payload.replace('\\"', "")
