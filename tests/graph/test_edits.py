"""Tests for structured edits and subtree sharing."""

import pytest

from repro.graph import (
    Edit,
    apply_edit,
    assignment_path,
    replace_constant,
    statement_path,
    statements,
    subtree_at,
)
from repro.lang import parse_program
from repro.lang.ast import Assign, Const, If, Observe
from repro.lang.programs import FIGURE7


@pytest.fixture
def program():
    return parse_program(FIGURE7)


class TestPaths:
    def test_statement_enumeration(self, program):
        stmts = list(statements(program))
        assert len(stmts) == 4
        assert isinstance(stmts[0][1], Assign)
        assert isinstance(stmts[2][1], If)

    def test_statement_path_roundtrip(self, program):
        for index, (path, stmt) in enumerate(statements(program)):
            assert statement_path(program, index) == path
            assert subtree_at(program, path) is stmt

    def test_statement_path_out_of_range(self, program):
        with pytest.raises(IndexError):
            statement_path(program, 99)

    def test_assignment_path(self, program):
        path = assignment_path(program, "b")
        stmt = subtree_at(program, path)
        assert isinstance(stmt, Assign) and stmt.name == "b"

    def test_assignment_path_missing(self, program):
        with pytest.raises(KeyError):
            assignment_path(program, "zzz")

    def test_bad_path_component(self, program):
        with pytest.raises(KeyError):
            subtree_at(program, ("nonexistent",))


class TestApplyEdit:
    def test_replace_constant(self, program):
        edited = replace_constant(program, "a", 2)
        stmt = subtree_at(edited, assignment_path(edited, "a"))
        assert stmt.expr == Const(2)

    def test_unchanged_subtrees_are_shared(self, program):
        edited = replace_constant(program, "a", 2)
        # Everything off the edit path is the same object.
        original_stmts = dict(enumerate(s for _p, s in statements(program)))
        edited_stmts = dict(enumerate(s for _p, s in statements(edited)))
        assert edited_stmts[1] is original_stmts[1]  # b = flip(a/3)
        assert edited_stmts[2] is original_stmts[2]  # the if statement
        assert edited_stmts[3] is original_stmts[3]  # d = flip(b/2)
        assert edited_stmts[0] is not original_stmts[0]

    def test_edit_object(self, program):
        path = assignment_path(program, "a") + ("expr",)
        edit = Edit(path, Const(5))
        edited = edit.apply(program)
        assert subtree_at(edited, path) == Const(5)

    def test_empty_path_replaces_root(self, program):
        replacement = parse_program("x = 1;")
        assert apply_edit(program, (), replacement) is replacement

    def test_labels_survive_edits(self, program):
        from repro.lang import random_labels

        edited = replace_constant(program, "a", 2)
        assert random_labels(edited) == random_labels(program)
