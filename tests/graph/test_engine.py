"""Tests for the incremental execution engine (Section 6)."""

import math

import numpy as np
import pytest

from repro.graph import propagate, replace_constant, run_initial
from repro.graph.diff import diff_correspondence
from repro.graph.edits import apply_edit, assignment_path
from repro.lang import lang_model, parse_program
from repro.lang.ast import Const
from repro.lang.programs import FIGURE7, gmm_source

from .conftest import eq2_log_weight


class TestInitialRun:
    def test_records_all_choices(self, rng):
        trace = run_initial(parse_program(FIGURE7), rng)
        assert len(trace) == 3
        assert trace.visited_statements == 8  # 3 seqs + 4 statements + branch body

    def test_log_prob_matches_model_score(self, rng):
        program = parse_program(FIGURE7)
        trace = run_initial(program, rng)
        model = lang_model(program)
        choices = {address: record.value for address, record in trace.choices().items()}
        assert trace.log_prob == pytest.approx(model.log_prob(choices))

    def test_return_value(self, rng):
        trace = run_initial(parse_program("x = 2; return x * 3;"), rng)
        assert trace.return_value == 6

    def test_env_parameters(self, rng):
        trace = run_initial(parse_program("y = n + 1; return y;"), rng, env={"n": 4})
        assert trace.return_value == 5

    def test_observations_recorded(self, rng):
        program = parse_program("x = flip(0.5); observe(flip(0.8) == x);")
        trace = run_initial(program, rng)
        observations = trace.observations()
        assert len(observations) == 1
        x = trace.return_value["x"]
        expected = math.log(0.8) if x == 1 else math.log(0.2)
        assert trace.observation_log_prob == pytest.approx(expected)


class TestFigure7:
    """The paper's worked propagation example: edit a = 1 -> a = 2."""

    @pytest.fixture
    def programs(self):
        p = parse_program(FIGURE7)
        return p, replace_constant(p, "a", 2)

    def test_b_is_reused_and_d_skipped(self, programs, rng):
        p, q = programs
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        new_choices = result.trace.choices()
        old_choices = old.choices()
        # b = flip(a/3) is reused; the change stops there so d is skipped.
        assert new_choices[("flip:3:5",)].value == old_choices[("flip:3:5",)].value
        assert new_choices[("flip:9:5",)] is old_choices[("flip:9:5",)]
        assert result.skipped_statements >= 1

    def test_branch_flip_resamples_c(self, programs, rng):
        p, q = programs
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        # a = 2 takes the else branch: uniform(6, 10).
        values = {a[0]: r.value for a, r in result.trace.choices().items()}
        assert "uniform:7:9" in values
        assert 6 <= values["uniform:7:9"] <= 10

    def test_weight_is_b_density_ratio(self, programs, rng):
        p, q = programs
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        b = old.choices()[("flip:3:5",)].value
        p_b_old = 1 / 3 if b == 1 else 2 / 3
        p_b_new = 2 / 3 if b == 1 else 1 / 3
        assert result.log_weight == pytest.approx(math.log(p_b_new) - math.log(p_b_old))

    def test_weight_matches_equation2(self, programs, rng):
        p, q = programs
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        expected = eq2_log_weight(
            lang_model(p),
            lang_model(q),
            diff_correspondence(p, q),
            {a: r.value for a, r in old.choices().items()},
            {a: r.value for a, r in result.trace.choices().items()},
        )
        assert result.log_weight == pytest.approx(expected)

    def test_new_trace_scores_correctly(self, programs, rng):
        p, q = programs
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        model = lang_model(q)
        choices = {a: r.value for a, r in result.trace.choices().items()}
        assert result.trace.log_prob == pytest.approx(model.log_prob(choices))


class TestNoOpPropagation:
    def test_identical_program_skips_everything(self, rng):
        program = parse_program(FIGURE7)
        old = run_initial(program, rng)
        result = propagate(program, old)
        assert result.visited_statements == 0
        assert result.log_weight == 0.0
        assert result.trace.root is old.root

    def test_unchanged_env_skips(self, rng):
        program = parse_program("x = gauss(mu, 1); return x;")
        old = run_initial(program, rng, env={"mu": 2.0})
        result = propagate(program, old, env={"mu": 2.0})
        assert result.visited_statements == 0


class TestEnvironmentEdits:
    def test_changed_parameter_propagates(self, rng):
        program = parse_program("x = gauss(mu, 1); y = gauss(x, 1); return y;")
        old = run_initial(program, rng, env={"mu": 0.0})
        result = propagate(program, old, env={"mu": 5.0})
        # x is reused (same support), reweighted; y's input x is unchanged,
        # so y is skipped.
        x = old.choices()[("gauss:1:5",)].value
        from repro.distributions import Normal

        expected = Normal(5.0, 1.0).log_prob(x) - Normal(0.0, 1.0).log_prob(x)
        assert result.log_weight == pytest.approx(expected)
        assert result.skipped_statements >= 1


class TestObservationEdits:
    def test_observation_param_change(self, rng):
        p = parse_program("b = 0.8; x = flip(0.5); observe(flip(b) == x);")
        q = replace_constant(p, "b", 0.6)
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        x = old.choices()[("flip:1:16",)].value if ("flip:1:16",) in old.choices() else None
        x = old.return_value["x"]
        old_obs = 0.8 if x == 1 else 0.2
        new_obs = 0.6 if x == 1 else 0.4
        assert result.log_weight == pytest.approx(math.log(new_obs) - math.log(old_obs))

    def test_added_observation(self, rng):
        p = parse_program("x = flip(0.5);")
        q = parse_program("x = flip(0.5); observe(flip(0.8) == x);")
        # Share the first statement so the choice is reused: rebuild q
        # from p via an edit (append an observe to the sequence).
        from repro.lang.ast import Seq

        observe_stmt = q.second if isinstance(q, Seq) else None
        q_shared = Seq(p, observe_stmt)
        old = run_initial(p, rng)
        result = propagate(q_shared, old, rng)
        x = old.return_value["x"]
        expected = math.log(0.8) if x == 1 else math.log(0.2)
        assert result.log_weight == pytest.approx(expected)

    def test_removed_observation(self, rng):
        from repro.lang.ast import Seq

        p_body = parse_program("x = flip(0.5);")
        observe_stmt = parse_program("x = flip(0.5); observe(flip(0.8) == x);").second
        p = Seq(p_body, observe_stmt)
        q = p_body
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        x = old.return_value["x"]
        expected = -(math.log(0.8) if x == 1 else math.log(0.2))
        assert result.log_weight == pytest.approx(expected)


class TestLoopEdits:
    def test_loop_bound_growth_samples_new_iterations(self, rng):
        p = parse_program("m = 3; total = 0; for i in [0 .. m) { total = total + flip(0.5); }")
        q = replace_constant(p, "m", 5)
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        assert len(result.trace) == 5
        old_choices = old.choices()
        new_choices = result.trace.choices()
        for address, record in old_choices.items():
            assert new_choices[address].value == record.value
        # New iterations are fresh samples: no weight contribution.
        assert result.log_weight == pytest.approx(0.0)

    def test_loop_bound_shrink_drops_choices(self, rng):
        p = parse_program("m = 5; total = 0; for i in [0 .. m) { total = total + flip(0.5); }")
        q = replace_constant(p, "m", 2)
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        assert len(result.trace) == 2
        # Dropped choices cancel against the backward kernel: weight 1.
        assert result.log_weight == pytest.approx(0.0)

    def test_unchanged_iterations_skip(self, rng):
        source = """
        m = 4;
        xs = array(m, 0);
        for i in [0 .. m) { xs[i] = gauss(0, 1); }
        s = 2;
        ys = array(m, 0);
        for i in [0 .. m) { ys[i] = gauss(xs[i], s); }
        """
        p = parse_program(source)
        q = replace_constant(p, "s", 3)
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        # The xs loop is untouched; only the ys loop re-executes.
        assert result.skipped_statements >= 3
        from repro.distributions import Normal

        expected = 0.0
        xs = old.return_value["xs"]
        ys = old.return_value["ys"]
        for x, y in zip(xs, ys):
            expected += Normal(x, 3.0).log_prob(y) - Normal(x, 2.0).log_prob(y)
        assert result.log_weight == pytest.approx(expected)

    def test_while_loop_reuse(self, rng):
        p = parse_program("p = 0.7; n = 1; while flip(p) { n = n + 1; } return n;")
        q = replace_constant(p, "p", 0.6)
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        assert result.trace.return_value == old.return_value
        n = old.return_value
        expected = (n - 1) * (math.log(0.6) - math.log(0.7)) + (
            math.log(0.4) - math.log(0.3)
        )
        assert result.log_weight == pytest.approx(expected)


class TestGMMScaling:
    def test_visited_statements_independent_of_n(self, rng):
        visited = {}
        for n in (10, 200, 2000):
            p = parse_program("sigma = 2;\n" + gmm_source(10))
            q = replace_constant(p, "sigma", 3)
            old = run_initial(p, rng, env={"n": n})
            result = propagate(q, old, rng)
            visited[n] = result.visited_statements
        assert visited[10] == visited[200] == visited[2000]

    def test_weight_is_center_density_ratio(self, rng):
        from repro.distributions import Normal

        p = parse_program("sigma = 2;\n" + gmm_source(10))
        q = replace_constant(p, "sigma", 3)
        old = run_initial(p, rng, env={"n": 50})
        result = propagate(q, old, rng)
        centers = [
            record.value
            for address, record in old.choices().items()
            if address[0].startswith("gauss") and len(address) == 2
            and record.dist.std == 2.0
        ]
        assert len(centers) == 10
        expected = sum(
            Normal(0, 3).log_prob(c) - Normal(0, 2).log_prob(c) for c in centers
        )
        assert result.log_weight == pytest.approx(expected)

    def test_weight_matches_baseline_translator(self, rng):
        p = parse_program("sigma = 2;\n" + gmm_source(5))
        q = replace_constant(p, "sigma", 3)
        old = run_initial(p, rng, env={"n": 20})
        result = propagate(q, old, rng)
        expected = eq2_log_weight(
            lang_model(p, env={"n": 20}),
            lang_model(q, env={"n": 20}),
            diff_correspondence(p, q),
            {a: r.value for a, r in old.choices().items()},
            {a: r.value for a, r in result.trace.choices().items()},
        )
        assert result.log_weight == pytest.approx(expected)


class TestStructuralEdits:
    def test_replacing_random_expression_kind(self, rng):
        """flip -> uniform: supports differ, so the choice is resampled."""
        p = parse_program("x = flip(0.5); y = flip(0.9); return x + y;")
        path = assignment_path(p, "x") + ("expr",)
        q = apply_edit(p, path, parse_program("z = uniform(0, 3);").expr)
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        values = {a[0]: r.value for a, r in result.trace.choices().items()}
        assert any(label.startswith("uniform") for label in values)
        # y is untouched and reused with no weight factor.
        assert result.log_weight == pytest.approx(0.0)

    def test_weight_matches_eq2_on_structural_edit(self, rng):
        p = parse_program(FIGURE7)
        # Edit the flip probability expression itself: a/3 -> a/4.
        path = assignment_path(p, "b") + ("expr", "prob")
        q = apply_edit(p, path, parse_program("x = a / 4;").expr)
        old = run_initial(p, rng)
        result = propagate(q, old, rng)
        expected = eq2_log_weight(
            lang_model(p),
            lang_model(q),
            diff_correspondence(p, q),
            {a: r.value for a, r in old.choices().items()},
            {a: r.value for a, r in result.trace.choices().items()},
        )
        assert result.log_weight == pytest.approx(expected)
