"""Algorithm 2 over dependency-graph traces.

The SMC step (`repro.core.smc.infer`) is generic in the trace type, so
the Section 6 GraphTranslator drops in directly: a collection of graph
traces of the old program is translated, reweighted, resampled, and the
weighted estimates converge to the new program's posterior (checked
against exact enumeration on discrete lang programs).
"""

import numpy as np
import pytest

from repro import WeightedCollection, infer, infer_sequence
from repro.graph import GraphTranslator, replace_constant, run_initial
from repro.lang import lang_model, parse_program
from repro.core.enumerate import exact_choice_marginal


SOURCE = """
p = 0.3;
x = flip(p);
y = flip(x ? 0.8 : 0.2);
observe(flip(y ? 0.9 : 0.1) == 1);
return x;
"""


@pytest.fixture
def programs():
    source = parse_program(SOURCE)
    target = replace_constant(source, "p", 0.5)
    return source, target


def graph_posterior_input(program, rng, size):
    """Approximate posterior graph traces via sampling-importance-resampling."""
    traces = [run_initial(program, rng) for _ in range(size * 8)]
    collection = WeightedCollection(traces, [t.observation_log_prob for t in traces])
    return collection.resample(rng, size=size)


class TestGraphSMC:
    def test_infer_converges_to_target_posterior(self, programs, rng):
        source, target = programs
        translator = GraphTranslator(source, target)
        collection = graph_posterior_input(source, rng, 4000)
        step = infer(translator, collection, rng)
        x_label = [a for a in step.collection.items[0].choices() if a[0].startswith("flip:3")]
        truth = exact_choice_marginal(lang_model(target), x_label[0])[1]
        estimate = step.collection.estimate_probability(
            lambda u, a=x_label[0]: u[a] == 1
        )
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_resampling_over_graph_traces(self, programs, rng):
        source, target = programs
        translator = GraphTranslator(source, target)
        collection = graph_posterior_input(source, rng, 500)
        step = infer(translator, collection, rng, resample="always")
        assert step.stats.resampled
        assert all(w == 0.0 for w in step.collection.log_weights)

    def test_sequence_of_edits(self, rng):
        """Iterated Algorithm 2 across a chain of constant edits."""
        base = parse_program(SOURCE)
        values = [0.3, 0.4, 0.5, 0.6]
        programs = [base] + [replace_constant(base, "p", v) for v in values[1:]]
        translators = [
            GraphTranslator(programs[i], programs[i + 1])
            for i in range(len(programs) - 1)
        ]
        collection = graph_posterior_input(programs[0], rng, 4000)
        steps = infer_sequence(translators, collection, rng, resample="adaptive")
        final = steps[-1].collection
        x_label = [a for a in final.items[0].choices() if a[0].startswith("flip:3")][0]
        truth = exact_choice_marginal(lang_model(programs[-1]), x_label)[1]
        estimate = final.estimate_probability(lambda u, a=x_label: u[a] == 1)
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_regenerate_is_properly_weighted(self, programs, rng):
        """GraphTranslator.regenerate importance-samples the target
        posterior: self-normalized estimates over regenerated traces
        match exact enumeration."""
        source, target = programs
        translator = GraphTranslator(source, target)
        traces, weights = [], []
        for _ in range(4000):
            trace, log_weight = translator.regenerate(rng)
            traces.append(trace)
            weights.append(log_weight)
        collection = WeightedCollection(traces, weights)
        x_label = [a for a in traces[0].choices() if a[0].startswith("flip:3")][0]
        truth = exact_choice_marginal(lang_model(target), x_label)[1]
        estimate = collection.estimate_probability(lambda u, a=x_label: u[a] == 1)
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_regenerate_fault_policy_over_graph_traces(self, programs, rng):
        """The regenerate policy composes with the graph engine: faults
        injected into graph translation are absorbed without bias."""
        from repro.testing import FaultInjector, FaultyTranslator

        source, target = programs
        injector = FaultInjector(seed=41, error_rate=0.2)
        translator = FaultyTranslator(GraphTranslator(source, target), injector)
        collection = graph_posterior_input(source, rng, 4000)
        step = infer(translator, collection, rng, fault_policy="regenerate")
        assert step.stats.failed > 0
        x_label = [a for a in step.collection.items[0].choices() if a[0].startswith("flip:3")][0]
        truth = exact_choice_marginal(lang_model(target), x_label)[1]
        estimate = step.collection.estimate_probability(lambda u, a=x_label: u[a] == 1)
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_translated_graph_traces_share_unchanged_records(self, programs, rng):
        source, target = programs
        translator = GraphTranslator(source, target)
        trace = run_initial(source, rng)
        result = translator.translate(rng, trace)
        # The observe statement's record is shared when y is unchanged.
        new_children = result.trace.root.children
        old_children = trace.root.children
        assert result.trace is not trace
        # Unchanged final statement (return x) record is reused by reference.
        def last_record(record):
            while "second" in record.children:
                record = record.children["second"]
            return record

        assert last_record(result.trace.root) is last_record(trace.root)
