"""Unit tests for GraphTrace and StmtRecord APIs."""

import numpy as np
import pytest

from repro.graph import run_initial
from repro.graph.records import StmtRecord
from repro.lang import parse_program
from repro.lang.ast import Skip


@pytest.fixture
def rng():
    return np.random.default_rng(6)


@pytest.fixture
def trace(rng):
    program = parse_program(
        "x = flip(0.5); y = gauss(0, 1); observe(flip(0.8) == x); return y;"
    )
    return run_initial(program, rng)


class TestGraphTrace:
    def test_len_counts_choices(self, trace):
        assert len(trace) == 2

    def test_contains_and_getitem(self, trace):
        choices = trace.choices()
        address = next(iter(choices))
        assert address in trace
        assert trace[address] == choices[address].value

    def test_missing_address_raises(self, trace):
        with pytest.raises(KeyError):
            trace[("nope",)]
        assert ("nope",) not in trace

    def test_log_prob_decomposition(self, trace):
        assert trace.log_prob == pytest.approx(
            trace.choice_log_prob + trace.observation_log_prob
        )

    def test_observations_map(self, trace):
        observations = trace.observations()
        assert len(observations) == 1

    def test_return_value(self, trace):
        y_address = [a for a in trace.choices() if a[0].startswith("gauss")][0]
        assert trace.return_value == trace[y_address]

    def test_return_value_defaults_to_env(self, rng):
        trace = run_initial(parse_program("x = 1; y = 2;"), rng)
        assert trace.return_value == {"x": 1, "y": 2}

    def test_repr_mentions_counts(self, trace):
        text = repr(trace)
        assert "choices=2" in text
        assert "visited=" in text


class TestStmtRecord:
    def test_finalize_aggregates_children(self):
        parent = StmtRecord(stmt=Skip())
        child = StmtRecord(stmt=Skip())
        child.subtree_choice_log_prob = -1.5
        child.subtree_obs_log_prob = -0.5
        child.subtree_num_choices = 3
        parent.children["first"] = child
        parent.finalize()
        assert parent.subtree_choice_log_prob == pytest.approx(-1.5)
        assert parent.subtree_obs_log_prob == pytest.approx(-0.5)
        assert parent.subtree_num_choices == 3

    def test_find_choice_searches_subtree(self, trace):
        for address, record in trace.choices().items():
            assert trace.root.find_choice(address) is record
        assert trace.root.find_choice(("missing",)) is None

    def test_iterators_cover_subtree(self, trace):
        assert len(list(trace.root.iter_choices())) == 2
        assert len(list(trace.root.iter_observations())) == 1
