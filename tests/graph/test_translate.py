"""Tests for the GraphTranslator and baseline equivalence, including
property-based checks over randomized programs and edits."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    GraphTranslator,
    baseline_lang_translator,
    graph_trace_to_choice_map,
    replace_constant,
    run_initial,
)
from repro.graph.diff import diff_correspondence
from repro.lang import lang_model, parse_program
from repro.lang.programs import gmm_source

from .conftest import eq2_log_weight


class TestGraphTranslator:
    @pytest.fixture
    def pair(self):
        p = parse_program("sigma = 2;\n" + gmm_source(4))
        q = replace_constant(p, "sigma", 3)
        return p, q

    def test_translate_interface(self, pair, rng):
        p, q = pair
        translator = GraphTranslator(p, q, source_env={"n": 12})
        trace = translator.initial_trace(rng)
        result = translator.translate(rng, trace)
        assert result.trace.log_prob < 0
        assert "visited_statements" in result.components
        assert translator.last_result is not None

    def test_matches_baseline_weight(self, pair, rng):
        p, q = pair
        graph_translator = GraphTranslator(p, q, source_env={"n": 12})
        trace = graph_translator.initial_trace(rng)
        graph_result = graph_translator.translate(rng, trace)

        # The edit changes only a parameter, so translation is
        # deterministic: the baseline must produce the identical trace
        # and weight.
        baseline = baseline_lang_translator(p, q, source_env={"n": 12})
        source_trace = baseline.source.score(graph_trace_to_choice_map(trace))
        baseline_result = baseline.translate(rng, source_trace)
        assert graph_result.log_weight == pytest.approx(baseline_result.log_weight)
        graph_values = {a: r.value for a, r in graph_result.trace.choices().items()}
        for address in baseline_result.trace.addresses():
            assert baseline_result.trace[address] == pytest.approx(graph_values[address])

    def test_visited_constant_in_n(self, pair, rng):
        p_small = parse_program("sigma = 2;\n" + gmm_source(4))
        q_small = replace_constant(p_small, "sigma", 3)
        counts = []
        for n in (5, 500):
            translator = GraphTranslator(p_small, q_small, source_env={"n": n})
            trace = translator.initial_trace(rng)
            result = translator.translate(rng, trace)
            counts.append(result.components["visited_statements"])
        assert counts[0] == counts[1]


# -- randomized program/edit property tests -------------------------------------

TEMPLATE = """
p0 = {p0};
x = flip(p0);
s = {s};
m = {m};
total = 0;
for i in [0 .. m) {{
    total = total + flip(x ? 0.8 : s);
}}
if total > 1 {{
    y = gauss(total, {std});
}} else {{
    y = gauss(0 - total, 1);
}}
observe(flip({obs}) == x);
return total;
"""


def build_program(p0, s, m, std, obs):
    return parse_program(TEMPLATE.format(p0=p0, s=s, m=m, std=std, obs=obs))


params = st.fixed_dictionaries(
    {
        "p0": st.sampled_from([0.2, 0.5, 0.8]),
        "s": st.sampled_from([0.3, 0.4, 0.6]),
        "m": st.integers(1, 6),
        "std": st.sampled_from([1, 2]),
        "obs": st.sampled_from([0.1, 0.5, 0.9]),
    }
)


class TestPropagationEquivalence:
    """For random programs and edits, incremental propagation produces a
    correctly scored trace and the Equation-2 weight."""

    @given(params, params, st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_weight_and_score_match_reference(self, old_params, new_params, seed):
        rng = np.random.default_rng(seed)
        p = build_program(**old_params)
        q = build_program(**new_params)
        old = run_initial(p, rng)
        from repro.graph import propagate

        result = propagate(q, old, rng)

        q_model = lang_model(q)
        u_choices = {a: r.value for a, r in result.trace.choices().items()}
        # 1. The incremental trace scores identically to a full replay.
        assert result.trace.log_prob == pytest.approx(q_model.log_prob(u_choices))

        # 2. The weight matches Equation 2 for the diff correspondence.
        p_model = lang_model(p)
        t_choices = {a: r.value for a, r in old.choices().items()}
        expected = eq2_log_weight(
            p_model, q_model, diff_correspondence(p, q), t_choices, u_choices
        )
        assert result.log_weight == pytest.approx(expected)

    @given(params, st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_noop_propagation_is_free(self, program_params, seed):
        rng = np.random.default_rng(seed)
        p = build_program(**program_params)
        old = run_initial(p, rng)
        from repro.graph import propagate

        result = propagate(p, old)
        assert result.visited_statements == 0
        assert result.log_weight == 0.0
