"""Tests for exact HMM inference: forward, FFBS, and second-order DP."""

import math

import numpy as np
import pytest

from repro import Model, exact_choice_marginal, log_normalizer
from repro.hmm import (
    FirstOrderParams,
    SecondOrderParams,
    ffbs_sample,
    first_order_model,
    forward_filter,
    log_likelihood,
    posterior_marginals,
    second_order_log_likelihood,
    second_order_model,
    second_order_posterior_marginals,
)


@pytest.fixture
def rng():
    return np.random.default_rng(17)


@pytest.fixture
def tiny_first_order():
    """A 2-state, 2-symbol HMM with asymmetric dynamics."""
    return FirstOrderParams(
        log_initial=np.log([0.6, 0.4]),
        log_transition=np.log([[0.7, 0.3], [0.2, 0.8]]),
        log_observation=np.log([[0.9, 0.1], [0.3, 0.7]]),
    )


@pytest.fixture
def tiny_second_order():
    rng = np.random.default_rng(5)

    def random_rows(shape):
        raw = rng.random(shape) + 0.1
        return np.log(raw / raw.sum(axis=-1, keepdims=True))

    return SecondOrderParams(
        log_initial=random_rows((3,)),
        log_first_transition=random_rows((3, 3)),
        log_transition=random_rows((3, 3, 3)),
        log_observation=random_rows((3, 3)),
    )


class TestFirstOrderExact:
    def test_likelihood_matches_enumeration(self, tiny_first_order):
        observations = [0, 1, 1, 0]
        model = first_order_model(tiny_first_order, observations)
        assert log_likelihood(tiny_first_order, observations) == pytest.approx(
            log_normalizer(model)
        )

    def test_marginals_match_enumeration(self, tiny_first_order):
        observations = [1, 0, 1]
        model = first_order_model(tiny_first_order, observations)
        marginals = posterior_marginals(tiny_first_order, observations)
        for i in range(len(observations)):
            exact = exact_choice_marginal(model, ("hidden", i))
            for state in range(2):
                assert marginals[i, state] == pytest.approx(exact.get(state, 0.0))

    def test_marginals_rows_normalized(self, tiny_first_order):
        marginals = posterior_marginals(tiny_first_order, [0, 0, 1, 1, 0])
        assert np.allclose(marginals.sum(axis=1), 1.0)

    def test_ffbs_matches_marginals(self, tiny_first_order, rng):
        observations = [0, 1, 0]
        marginals = posterior_marginals(tiny_first_order, observations)
        samples = np.array(
            [ffbs_sample(tiny_first_order, observations, rng) for _ in range(8000)]
        )
        empirical = (samples == 1).mean(axis=0)
        assert empirical == pytest.approx(marginals[:, 1], abs=0.02)

    def test_ffbs_joint_distribution(self, tiny_first_order, rng):
        """FFBS samples the joint posterior, not just the marginals."""
        observations = [0, 1]
        model = first_order_model(tiny_first_order, observations)
        from repro.core import enumerate_traces
        from repro.core.handlers import log_sum_exp

        joint = {}
        traces = list(enumerate_traces(model))
        log_z = log_sum_exp(t.log_prob for t in traces)
        for trace in traces:
            key = (trace[("hidden", 0)], trace[("hidden", 1)])
            joint[key] = joint.get(key, 0.0) + math.exp(trace.log_prob - log_z)
        samples = [tuple(ffbs_sample(tiny_first_order, observations, rng)) for _ in range(8000)]
        for key, probability in joint.items():
            empirical = sum(1 for s in samples if s == key) / len(samples)
            assert empirical == pytest.approx(probability, abs=0.02)

    def test_empty_observations_raise(self, tiny_first_order):
        with pytest.raises(ValueError):
            forward_filter(tiny_first_order, [])

    def test_single_step_sequence(self, tiny_first_order):
        # L = 1: posterior proportional to initial * emission.
        marginals = posterior_marginals(tiny_first_order, [1])
        unnorm = np.exp(tiny_first_order.log_initial) * np.exp(
            tiny_first_order.log_observation[:, 1]
        )
        assert marginals[0] == pytest.approx(unnorm / unnorm.sum())


class TestSecondOrderExact:
    def test_likelihood_matches_enumeration(self, tiny_second_order):
        observations = [0, 2, 1, 0]
        model = second_order_model(tiny_second_order, observations)
        assert second_order_log_likelihood(
            tiny_second_order, observations
        ) == pytest.approx(log_normalizer(model))

    def test_marginals_match_enumeration(self, tiny_second_order):
        observations = [2, 0, 1]
        model = second_order_model(tiny_second_order, observations)
        marginals = second_order_posterior_marginals(tiny_second_order, observations)
        for i in range(len(observations)):
            exact = exact_choice_marginal(model, ("hidden", i))
            for state in range(3):
                assert marginals[i, state] == pytest.approx(exact.get(state, 0.0))

    def test_length_one_sequence(self, tiny_second_order):
        marginals = second_order_posterior_marginals(tiny_second_order, [1])
        unnorm = np.exp(tiny_second_order.log_initial) * np.exp(
            tiny_second_order.log_observation[:, 1]
        )
        assert marginals[0] == pytest.approx(unnorm / unnorm.sum())

    def test_length_two_sequence(self, tiny_second_order):
        observations = [0, 1]
        model = second_order_model(tiny_second_order, observations)
        marginals = second_order_posterior_marginals(tiny_second_order, observations)
        for i in range(2):
            exact = exact_choice_marginal(model, ("hidden", i))
            for state in range(3):
                assert marginals[i, state] == pytest.approx(exact.get(state, 0.0))


class TestParamValidation:
    def test_unnormalized_rows_rejected(self):
        with pytest.raises(ValueError):
            FirstOrderParams(
                log_initial=np.log([0.5, 0.4]),  # sums to 0.9
                log_transition=np.log([[0.5, 0.5], [0.5, 0.5]]),
                log_observation=np.log([[0.5, 0.5], [0.5, 0.5]]),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FirstOrderParams(
                log_initial=np.log([0.5, 0.5]),
                log_transition=np.log(np.full((3, 3), 1 / 3)),
                log_observation=np.log([[0.5, 0.5], [0.5, 0.5]]),
            )


class TestSecondOrderFFBS:
    def test_marginals_match(self, tiny_second_order, rng):
        from repro.hmm import second_order_ffbs_sample

        observations = [0, 2, 1, 0]
        marginals = second_order_posterior_marginals(tiny_second_order, observations)
        samples = np.array(
            [
                second_order_ffbs_sample(tiny_second_order, observations, rng)
                for _ in range(8000)
            ]
        )
        for i in range(len(observations)):
            for state in range(3):
                empirical = (samples[:, i] == state).mean()
                assert empirical == pytest.approx(marginals[i, state], abs=0.02)

    def test_joint_matches_enumeration(self, tiny_second_order, rng):
        from repro.core import enumerate_traces
        from repro.core.handlers import log_sum_exp
        from repro.hmm import second_order_ffbs_sample

        observations = [1, 0]
        model = second_order_model(tiny_second_order, observations)
        joint = {}
        traces = list(enumerate_traces(model))
        log_z = log_sum_exp(t.log_prob for t in traces)
        for trace in traces:
            key = (trace[("hidden", 0)], trace[("hidden", 1)])
            joint[key] = joint.get(key, 0.0) + math.exp(trace.log_prob - log_z)
        samples = [
            tuple(second_order_ffbs_sample(tiny_second_order, observations, rng))
            for _ in range(8000)
        ]
        for key, probability in joint.items():
            empirical = sum(1 for s in samples if s == key) / len(samples)
            assert empirical == pytest.approx(probability, abs=0.02)

    def test_single_character(self, tiny_second_order, rng):
        from repro.hmm import second_order_ffbs_sample

        marginals = second_order_posterior_marginals(tiny_second_order, [2])
        samples = [
            second_order_ffbs_sample(tiny_second_order, [2], rng)[0]
            for _ in range(6000)
        ]
        for state in range(3):
            empirical = np.mean([s == state for s in samples])
            assert empirical == pytest.approx(marginals[0, state], abs=0.02)
