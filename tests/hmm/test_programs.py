"""Tests for the HMM probabilistic programs and incremental translation."""

import math

import numpy as np
import pytest

from repro import CorrespondenceTranslator, WeightedCollection, infer
from repro.core.mcmc import gibbs_sweep, chain
from repro.hmm import (
    FirstOrderParams,
    SecondOrderParams,
    exact_first_order_trace,
    first_order_model,
    ground_truth_posterior_probability,
    hidden_sequence,
    hidden_state_correspondence,
    log_ground_truth_probability,
    log_likelihood,
    second_order_model,
    second_order_posterior_marginals,
)


@pytest.fixture
def rng():
    return np.random.default_rng(31)


@pytest.fixture
def first_params():
    return FirstOrderParams(
        log_initial=np.log([0.5, 0.3, 0.2]),
        log_transition=np.log(
            [[0.6, 0.3, 0.1], [0.2, 0.5, 0.3], [0.3, 0.3, 0.4]]
        ),
        log_observation=np.log(
            [[0.8, 0.1, 0.1], [0.1, 0.8, 0.1], [0.15, 0.15, 0.7]]
        ),
    )


@pytest.fixture
def second_params():
    gen = np.random.default_rng(8)

    def rows(shape):
        raw = gen.random(shape) + 0.2
        return np.log(raw / raw.sum(axis=-1, keepdims=True))

    return SecondOrderParams(
        log_initial=np.log([0.5, 0.3, 0.2]),
        log_first_transition=rows((3, 3)),
        log_transition=rows((3, 3, 3)),
        log_observation=np.log(
            [[0.8, 0.1, 0.1], [0.1, 0.8, 0.1], [0.15, 0.15, 0.7]]
        ),
    )


OBSERVATIONS = [0, 2, 1, 1]


class TestPrograms:
    def test_first_order_trace_structure(self, first_params, rng):
        model = first_order_model(first_params, OBSERVATIONS)
        trace = model.simulate(rng)
        assert len(trace) == 4  # only hidden states are latent
        assert len(trace.observation_addresses()) == 4

    def test_first_order_log_prob(self, first_params):
        model = first_order_model(first_params, [0, 1])
        trace = model.score({("hidden", 0): 0, ("hidden", 1): 2})
        expected = (
            first_params.log_initial[0]
            + first_params.log_transition[0, 2]
            + first_params.log_observation[0, 0]
            + first_params.log_observation[2, 1]
        )
        assert trace.log_prob == pytest.approx(expected)

    def test_second_order_log_prob(self, second_params):
        model = second_order_model(second_params, [0, 1, 2])
        states = {("hidden", 0): 1, ("hidden", 1): 0, ("hidden", 2): 2}
        trace = model.score(states)
        expected = (
            second_params.log_initial[1]
            + second_params.log_first_transition[1, 0]
            + second_params.log_transition[1, 0, 2]
            + second_params.log_observation[1, 0]
            + second_params.log_observation[0, 1]
            + second_params.log_observation[2, 2]
        )
        assert trace.log_prob == pytest.approx(expected)

    def test_hidden_sequence_helper(self, first_params, rng):
        model = first_order_model(first_params, OBSERVATIONS)
        trace = model.simulate(rng)
        assert hidden_sequence(trace) == [trace[("hidden", i)] for i in range(4)]

    def test_exact_trace_log_prob_finite(self, first_params, rng):
        trace = exact_first_order_trace(first_params, OBSERVATIONS, rng)
        assert math.isfinite(trace.log_prob)


class TestIncrementalHMM:
    """Trace translation from the first- to the second-order model
    converges to the exact second-order posterior (Section 7.3)."""

    def test_translated_marginals_match_exact(self, first_params, second_params, rng):
        p = first_order_model(first_params, OBSERVATIONS)
        q = second_order_model(second_params, OBSERVATIONS)
        traces = [
            exact_first_order_trace(first_params, OBSERVATIONS, rng, p)
            for _ in range(4000)
        ]
        translator = CorrespondenceTranslator(p, q, hidden_state_correspondence())
        step = infer(translator, WeightedCollection.uniform(traces), rng)
        exact = second_order_posterior_marginals(second_params, OBSERVATIONS)
        for i in range(len(OBSERVATIONS)):
            for state in range(3):
                estimate = step.collection.estimate_probability(
                    lambda u, i=i, state=state: u[("hidden", i)] == state
                )
                assert estimate == pytest.approx(exact[i, state], abs=0.04)

    def test_no_weights_converges_to_first_order(self, first_params, second_params, rng):
        from repro.hmm import posterior_marginals

        p = first_order_model(first_params, OBSERVATIONS)
        q = second_order_model(second_params, OBSERVATIONS)
        traces = [
            exact_first_order_trace(first_params, OBSERVATIONS, rng, p)
            for _ in range(4000)
        ]
        translator = CorrespondenceTranslator(p, q, hidden_state_correspondence())
        step = infer(translator, WeightedCollection.uniform(traces), rng, use_weights=False)
        first_marginals = posterior_marginals(first_params, OBSERVATIONS)
        for i in range(len(OBSERVATIONS)):
            estimate = step.collection.estimate_probability(
                lambda u, i=i: u[("hidden", i)] == 0
            )
            assert estimate == pytest.approx(first_marginals[i, 0], abs=0.04)

    def test_gibbs_converges_to_exact(self, second_params, rng):
        q = second_order_model(second_params, OBSERVATIONS)
        kernel = gibbs_sweep(q, [("hidden", i) for i in range(4)])
        states = chain(q, kernel, rng, iterations=3000, burn_in=300)
        exact = second_order_posterior_marginals(second_params, OBSERVATIONS)
        for i in range(4):
            empirical = np.mean([t[("hidden", i)] == 1 for t in states])
            assert empirical == pytest.approx(exact[i, 1], abs=0.05)


class TestMetrics:
    def test_ground_truth_probability_perfect(self, first_params, rng):
        model = first_order_model(first_params, OBSERVATIONS)
        trace = model.score({("hidden", i): s for i, s in enumerate([0, 2, 1, 1])})
        collection = WeightedCollection.uniform([trace])
        assert ground_truth_posterior_probability(collection, [0, 2, 1, 1]) == 1.0
        assert log_ground_truth_probability(collection, [0, 2, 1, 1]) == pytest.approx(0.0)

    def test_ground_truth_probability_partial(self, first_params):
        model = first_order_model(first_params, [0, 1])
        match = model.score({("hidden", 0): 0, ("hidden", 1): 1})
        miss = model.score({("hidden", 0): 2, ("hidden", 1): 1})
        collection = WeightedCollection.uniform([match, miss])
        # Position 0 matched half the time, position 1 always: mean 0.75.
        assert ground_truth_posterior_probability(collection, [0, 1]) == pytest.approx(0.75)

    def test_log_floor(self, first_params):
        model = first_order_model(first_params, [0])
        trace = model.score({("hidden", 0): 2})
        collection = WeightedCollection.uniform([trace])
        assert log_ground_truth_probability(collection, [0]) == pytest.approx(
            math.log(1e-6)
        )

    def test_empty_truth_raises(self, first_params):
        model = first_order_model(first_params, [0])
        collection = WeightedCollection.uniform([model.score({("hidden", 0): 0})])
        with pytest.raises(ValueError):
            ground_truth_posterior_probability(collection, [])
