"""Tests for HMM training and the synthetic typo corpus."""

import numpy as np
import pytest

from repro.hmm import (
    ALPHABET,
    NUM_CHARS,
    QWERTY_NEIGHBOURS,
    TypoChannel,
    decode,
    encode,
    generate_corpus,
    train_first_order,
    train_second_order,
)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestEncoding:
    def test_round_trip(self):
        for word in ["hello", "quartz", "the"]:
            assert decode(encode(word)) == word

    def test_rejects_non_alpha(self):
        with pytest.raises(ValueError):
            encode("can't")


class TestQwerty:
    def test_all_letters_covered(self):
        assert set(QWERTY_NEIGHBOURS) == set(ALPHABET)

    def test_adjacency_symmetric(self):
        for char, neighbours in QWERTY_NEIGHBOURS.items():
            for neighbour in neighbours:
                assert char in QWERTY_NEIGHBOURS[neighbour], (char, neighbour)


class TestTypoChannel:
    def test_zero_noise_is_identity(self, rng):
        channel = TypoChannel(typo_prob=0.0)
        assert channel.corrupt("hello", rng) == "hello"

    def test_noise_rate(self, rng):
        channel = TypoChannel(typo_prob=0.3, neighbour_prob=1.0)
        word = "a" * 10000
        typed = channel.corrupt(word, rng)
        errors = sum(1 for a, b in zip(word, typed) if a != b)
        assert errors / len(word) == pytest.approx(0.3, abs=0.02)

    def test_neighbour_typos_are_adjacent(self, rng):
        channel = TypoChannel(typo_prob=1.0, neighbour_prob=1.0)
        typed = channel.corrupt("f" * 200, rng)
        assert set(typed) <= set(QWERTY_NEIGHBOURS["f"])

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            TypoChannel(typo_prob=1.5)


class TestCorpus:
    def test_sizes(self, rng):
        corpus = generate_corpus(rng, num_train_words=50, num_test_words=7)
        assert len(corpus.train) == 50
        assert len(corpus.test) == 7

    def test_pairs_have_equal_length(self, rng):
        corpus = generate_corpus(rng, num_train_words=100, num_test_words=10)
        for typed, truth in corpus.train + corpus.test:
            assert len(typed) == len(truth)

    def test_length_bounds(self, rng):
        corpus = generate_corpus(rng, num_train_words=50, min_length=4, max_length=6)
        assert all(4 <= len(truth) <= 6 for _typed, truth in corpus.train)

    def test_character_count(self, rng):
        corpus = generate_corpus(rng, num_train_words=20, num_test_words=1)
        assert corpus.train_character_count == sum(len(t) for _w, t in corpus.train)

    def test_impossible_length_range(self, rng):
        with pytest.raises(ValueError):
            generate_corpus(rng, min_length=30, max_length=40)


class TestTraining:
    def test_first_order_shapes(self, rng):
        corpus = generate_corpus(rng, num_train_words=300)
        params = train_first_order(corpus.train)
        assert params.num_states == NUM_CHARS
        assert params.log_transition.shape == (NUM_CHARS, NUM_CHARS)

    def test_second_order_shapes(self, rng):
        corpus = generate_corpus(rng, num_train_words=300)
        params = train_second_order(corpus.train)
        assert params.log_transition.shape == (NUM_CHARS, NUM_CHARS, NUM_CHARS)

    def test_observation_model_favors_identity(self, rng):
        """With a low typo rate the emission mode is the true character."""
        corpus = generate_corpus(rng, num_train_words=1000)
        params = train_first_order(corpus.train)
        diagonal_dominant = sum(
            1
            for s in range(NUM_CHARS)
            if np.argmax(params.log_observation[s]) == s
            and np.isfinite(params.log_observation[s, s])
        )
        assert diagonal_dominant >= 20  # rare letters may lack data

    def test_known_transition_recovered(self):
        """Training on 'the' repeatedly makes P(h | t) dominant."""
        pairs = [("the", "the")] * 100
        params = train_first_order(pairs, smoothing=0.01)
        t_index, h_index = encode("t")[0], encode("h")[0]
        assert np.argmax(params.log_transition[t_index]) == h_index

    def test_second_order_captures_trigram(self):
        pairs = [("the", "the")] * 100
        params = train_second_order(pairs, smoothing=0.01)
        t, h, e = encode("the")
        assert np.argmax(params.log_transition[t, h]) == e

    def test_smoothing_keeps_support_full(self, rng):
        corpus = generate_corpus(rng, num_train_words=50)
        params = train_first_order(corpus.train)
        assert np.all(np.isfinite(params.log_transition))
        assert np.all(np.isfinite(params.log_observation))

    def test_second_order_beats_first_order_on_likelihood(self, rng):
        """The second-order model fits English-like words better — the
        premise of the Figure 9 experiment."""
        from repro.hmm import log_likelihood, second_order_log_likelihood

        corpus = generate_corpus(rng, num_train_words=3000, num_test_words=40)
        first = train_first_order(corpus.train)
        second = train_second_order(corpus.train)
        first_total = sum(
            log_likelihood(first, encode(typed)) for typed, _t in corpus.test
        )
        second_total = sum(
            second_order_log_likelihood(second, encode(typed)) for typed, _t in corpus.test
        )
        assert second_total > first_total

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            train_first_order([("ab", "abc")])
