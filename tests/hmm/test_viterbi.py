"""Tests for Viterbi decoding, validated against brute force."""

import itertools
import math

import numpy as np
import pytest

from repro.hmm import (
    FirstOrderParams,
    SecondOrderParams,
    viterbi,
    viterbi_second_order,
)


@pytest.fixture
def first_params():
    return FirstOrderParams(
        log_initial=np.log([0.6, 0.3, 0.1]),
        log_transition=np.log(
            [[0.5, 0.4, 0.1], [0.2, 0.5, 0.3], [0.3, 0.3, 0.4]]
        ),
        log_observation=np.log(
            [[0.7, 0.2, 0.1], [0.1, 0.8, 0.1], [0.2, 0.2, 0.6]]
        ),
    )


@pytest.fixture
def second_params():
    gen = np.random.default_rng(13)

    def rows(shape):
        raw = gen.random(shape) + 0.1
        return np.log(raw / raw.sum(axis=-1, keepdims=True))

    return SecondOrderParams(
        log_initial=rows((3,)),
        log_first_transition=rows((3, 3)),
        log_transition=rows((3, 3, 3)),
        log_observation=rows((3, 3)),
    )


def brute_force_first(params, observations):
    best, best_score = None, -math.inf
    for states in itertools.product(range(params.num_states), repeat=len(observations)):
        score = params.log_initial[states[0]] + params.log_observation[
            states[0], observations[0]
        ]
        for i in range(1, len(states)):
            score += params.log_transition[states[i - 1], states[i]]
            score += params.log_observation[states[i], observations[i]]
        if score > best_score:
            best, best_score = list(states), score
    return best, best_score


def brute_force_second(params, observations):
    best, best_score = None, -math.inf
    for states in itertools.product(range(params.num_states), repeat=len(observations)):
        score = params.log_initial[states[0]] + params.log_observation[
            states[0], observations[0]
        ]
        if len(states) >= 2:
            score += params.log_first_transition[states[0], states[1]]
            score += params.log_observation[states[1], observations[1]]
        for i in range(2, len(states)):
            score += params.log_transition[states[i - 2], states[i - 1], states[i]]
            score += params.log_observation[states[i], observations[i]]
        if score > best_score:
            best, best_score = list(states), score
    return best, best_score


class TestFirstOrderViterbi:
    @pytest.mark.parametrize(
        "observations", [[0], [1, 2], [0, 1, 2, 1], [2, 2, 0, 1, 0]]
    )
    def test_matches_brute_force(self, first_params, observations):
        path, score = viterbi(first_params, observations)
        expected_path, expected_score = brute_force_first(first_params, observations)
        assert score == pytest.approx(expected_score)
        assert path == expected_path

    def test_empty_raises(self, first_params):
        with pytest.raises(ValueError):
            viterbi(first_params, [])

    def test_decodes_clean_observations(self, first_params):
        # Emissions are strongly diagonal, so clean input decodes to itself.
        path, _score = viterbi(first_params, [0, 1, 1, 2])
        assert path == [0, 1, 1, 2]


class TestSecondOrderViterbi:
    @pytest.mark.parametrize(
        "observations", [[0], [1, 2], [0, 1, 2], [2, 0, 1, 2], [1, 1, 0, 2, 0]]
    )
    def test_matches_brute_force(self, second_params, observations):
        path, score = viterbi_second_order(second_params, observations)
        expected_path, expected_score = brute_force_second(second_params, observations)
        assert score == pytest.approx(expected_score)
        assert path == expected_path

    def test_empty_raises(self, second_params):
        with pytest.raises(ValueError):
            viterbi_second_order(second_params, [])


class TestTypoDecoding:
    def test_viterbi_corrects_trained_words(self):
        """A second-order decoder trained on one word corrects its typos."""
        from repro.hmm import encode, train_second_order

        pairs = [("the", "the")] * 200 + [("thw", "the")] * 20
        params = train_second_order(pairs, smoothing=0.01)
        path, _score = viterbi_second_order(params, encode("thw"))
        from repro.hmm import decode

        assert decode(path) == "the"
