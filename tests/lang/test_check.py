"""Tests for the static checker."""

import pytest

from repro.lang import check_program, parse_program
from repro.lang.programs import (
    BURGLARY_ORIGINAL,
    BURGLARY_REFINED,
    FIGURE3,
    FIGURE5_P,
    FIGURE5_Q,
    FIGURE6_GEOMETRIC,
    FIGURE7,
    gmm_source,
)


def messages(source, parameters=()):
    return [str(d) for d in check_program(parse_program(source), parameters)]


def errors(source, parameters=()):
    return [m for m in messages(source, parameters) if m.startswith("error")]


def warnings(source, parameters=()):
    return [m for m in messages(source, parameters) if m.startswith("warning")]


class TestCleanPrograms:
    @pytest.mark.parametrize(
        "source",
        [
            BURGLARY_ORIGINAL,
            BURGLARY_REFINED,
            FIGURE3,
            FIGURE5_P,
            FIGURE5_Q,
            FIGURE6_GEOMETRIC,
            FIGURE7,
        ],
    )
    def test_paper_programs_are_clean(self, source):
        assert messages(source) == []

    def test_gmm_with_parameters(self):
        assert messages(gmm_source(5), parameters=("sigma", "n")) == []

    def test_gmm_without_parameters_flags_them(self):
        found = errors(gmm_source(5))
        assert any("sigma" in m for m in found)
        assert any("'n'" in m for m in found)


class TestVariableChecks:
    def test_use_before_assignment(self):
        assert any("'x'" in m for m in errors("y = x; x = 1;"))

    def test_branch_assignment_is_not_definite(self):
        assert errors("if c { x = 1; } z = x;", parameters=("c",))

    def test_both_branches_definite(self):
        source = "if c { x = 1; } else { x = 2; } z = x;"
        assert errors(source, parameters=("c",)) == []

    def test_index_assign_before_definition(self):
        assert any("index-assigned" in m for m in errors("xs[0] = 1;"))

    def test_loop_variable_is_bound(self):
        assert errors("for i in [0 .. 3) { x = i; }") == []


class TestDistributionChecks:
    def test_flip_probability_out_of_range(self):
        assert any("outside [0, 1]" in m for m in errors("x = flip(1.5);"))

    def test_empty_uniform_range(self):
        assert any("empty range" in m for m in errors("x = uniform(6, 1);"))

    def test_non_positive_gauss_std(self):
        assert any("not positive" in m for m in errors("x = gauss(0, 0);"))

    def test_negative_array_size(self):
        assert any("negative" in m for m in errors("xs = array(-2, 0);"))

    def test_dynamic_parameters_not_flagged(self):
        assert errors("p = 0.5; x = flip(p);") == []


class TestFunctionChecks:
    def test_undefined_function(self):
        assert any("undefined function" in m for m in errors("x = mystery(1);"))

    def test_arity_mismatch(self):
        source = "def f(a, b) { return a; } x = f(1);"
        assert any("takes 2 argument" in m for m in errors(source))

    def test_duplicate_definition(self):
        source = "def f() { return 1; } def f() { return 2; }"
        assert any("defined twice" in m for m in errors(source))

    def test_call_before_definition_warns(self):
        source = "x = f(); def f() { return 1; }"
        assert any("before its definition" in m for m in warnings(source))

    def test_mutual_recursion_is_clean(self):
        source = """
        def even(n) { if n == 0 { return 1; } else { return odd(n - 1); } }
        def odd(n) { if n == 0 { return 0; } else { return even(n - 1); } }
        return even(4);
        """
        assert messages(source) == []

    def test_missing_return_warns(self):
        source = "def f() { x = 1; } y = f();"
        assert any("without a return" in m for m in warnings(source))

    def test_return_in_both_branches_is_clean(self):
        source = "def f(c) { if c { return 1; } else { return 2; } } y = f(1);"
        assert warnings(source) == []

    def test_function_scope_check(self):
        source = "y = 1; def f() { return y; } z = f();"
        assert any("'y'" in m for m in errors(source))


class TestLoopChecks:
    def test_constant_true_while_warns(self):
        assert any("cannot terminate" in m for m in warnings("while 1 { x = 1; }"))

    def test_random_while_condition_is_clean(self):
        assert warnings("while flip(0.5) { x = 1; }") == []
