"""Tests for user-defined functions in the structured language.

Functions are the extension the paper notes "can be included if needed"
(Section 3); random choices inside callees are addressed by the path of
call sites, so repeated and recursive calls get distinct addresses.
"""

import math

import numpy as np
import pytest

from repro import (
    Correspondence,
    CorrespondenceTranslator,
    WeightedCollection,
    exact_return_distribution,
)
from repro.lang import (
    EvalError,
    ParseError,
    equal_modulo_labels,
    free_variables,
    lang_model,
    parse_program,
    pretty,
    random_expressions,
)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestParsing:
    def test_function_definition(self):
        program = parse_program("def double(x) { return x * 2; } return double(21);")
        assert "def double(x)" in pretty(program)

    def test_zero_argument_function(self, rng):
        model = lang_model(parse_program("def five() { return 5; } return five();"))
        assert model.simulate(rng).return_value == 5

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(ParseError):
            parse_program("def f(x, x) { return x; }")

    def test_call_round_trips_through_pretty(self):
        program = parse_program(
            "def f(a, b) { return a + b; } return f(1, f(2, 3));"
        )
        assert equal_modulo_labels(program, parse_program(pretty(program)))


class TestEvaluation:
    def test_basic_call(self, rng):
        source = "def double(x) { return x * 2; } return double(21);"
        assert lang_model(parse_program(source)).simulate(rng).return_value == 42

    def test_functions_are_scoped(self, rng):
        """Function bodies cannot read program variables."""
        source = "y = 5; def f() { return y; } return f();"
        with pytest.raises(EvalError):
            lang_model(parse_program(source)).simulate(rng)

    def test_locals_do_not_leak(self, rng):
        source = """
        def f(x) { temp = x + 1; return temp; }
        z = f(1);
        return temp;
        """
        with pytest.raises(EvalError):
            lang_model(parse_program(source)).simulate(rng)

    def test_undefined_function(self, rng):
        with pytest.raises(EvalError):
            lang_model(parse_program("return mystery(1);")).simulate(rng)

    def test_arity_mismatch(self, rng):
        source = "def f(a, b) { return a; } return f(1);"
        with pytest.raises(EvalError):
            lang_model(parse_program(source)).simulate(rng)

    def test_missing_return(self, rng):
        source = "def f() { x = 1; } return f();"
        with pytest.raises(EvalError):
            lang_model(parse_program(source)).simulate(rng)

    def test_duplicate_definition(self, rng):
        source = "def f() { return 1; } def f() { return 2; } return f();"
        with pytest.raises(EvalError):
            lang_model(parse_program(source)).simulate(rng)

    def test_runaway_recursion_guarded(self, rng):
        source = "def loop(x) { return loop(x); } return loop(1);"
        with pytest.raises(EvalError):
            lang_model(parse_program(source)).simulate(rng)

    def test_mutual_calls(self, rng):
        source = """
        def f(n) { return n + 1; }
        def g(n) { return f(n) * 2; }
        return g(10);
        """
        assert lang_model(parse_program(source)).simulate(rng).return_value == 22


class TestRandomChoicesInFunctions:
    def test_distinct_addresses_per_call_site(self, rng):
        source = """
        def coin() { return flip(0.5); }
        a = coin();
        b = coin();
        return a + b;
        """
        trace = lang_model(parse_program(source)).simulate(rng)
        assert len(trace) == 2
        addresses = trace.addresses()
        assert addresses[0] != addresses[1]
        # Same expression label, different call-site components.
        assert addresses[0][0] == addresses[1][0]

    def test_calls_in_loops_get_loop_indices(self, rng):
        source = """
        def coin() { return flip(0.5); }
        total = 0;
        for i in [0 .. 4) { total = total + coin(); }
        return total;
        """
        trace = lang_model(parse_program(source)).simulate(rng)
        assert len(trace) == 4

    def test_recursive_geometric_matches_closed_form(self, rng):
        source = """
        def geometric(p) {
            if flip(p) { return 1 + geometric(p); } else { return 1; }
        }
        return geometric(0.5);
        """
        model = lang_model(parse_program(source))
        samples = [model.simulate(rng).return_value for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(2.0, abs=0.1)

    def test_observe_inside_function(self):
        source = """
        def biased_evidence(x) {
            observe(flip(x ? 0.9 : 0.1) == 1);
            return x;
        }
        x = flip(0.5);
        y = biased_evidence(x);
        return y;
        """
        distribution = exact_return_distribution(lang_model(parse_program(source)))
        assert distribution[1] == pytest.approx(0.9)

    def test_enumeration_through_functions(self):
        source = """
        def coin() { return flip(0.25); }
        return coin() + coin();
        """
        distribution = exact_return_distribution(lang_model(parse_program(source)))
        assert distribution[0] == pytest.approx(0.75**2)
        assert distribution[1] == pytest.approx(2 * 0.25 * 0.75)
        assert distribution[2] == pytest.approx(0.25**2)


class TestFunctionsAndTranslation:
    def test_translation_reuses_choices_across_call_paths(self, rng):
        """An edit to a function's constant reweights the choices made
        through every call path."""
        old_source = """
        def component(p) { return flip(p); }
        a = component(0.5);
        b = component(0.5);
        return a + b;
        """
        new_source = """
        def component(p) { return flip(p); }
        a = component(0.7);
        b = component(0.7);
        return a + b;
        """
        p = lang_model(parse_program(old_source), name="old")
        q = lang_model(parse_program(new_source), name="new")
        correspondence = Correspondence.identity_by_predicate(lambda _a: True)
        translator = CorrespondenceTranslator(p, q, correspondence)
        trace = p.simulate(rng)
        result = translator.translate(rng, trace)
        # Both flips are reused; weight is the product of flip ratios.
        expected = 0.0
        for record in trace.choices():
            p_old = 0.5
            p_new = 0.7
            expected += math.log(p_new if record.value else 1 - p_new)
            expected -= math.log(p_old if record.value else 1 - p_old)
        assert result.log_weight == pytest.approx(expected)


class TestAnalysis:
    def test_free_variables_respect_scope(self):
        program = parse_program(
            "def f(a) { return a + q; } x = f(n); return x;"
        )
        # q is free inside the function; n is free at top level.
        assert free_variables(program) == {"q", "n"}

    def test_random_expressions_found_in_functions(self):
        program = parse_program("def coin() { return flip(0.5); } return coin();")
        assert len(random_expressions(program)) == 1

    def test_random_expressions_found_in_call_args(self):
        program = parse_program("def f(a) { return a; } return f(flip(0.5));")
        assert len(random_expressions(program)) == 1


class TestSmallStepRejection:
    def test_smallstep_rejects_functions(self):
        from repro.lang import Config, ReplaySource, run

        program = parse_program("def f() { return 1; } return f();")
        with pytest.raises(EvalError, match="big-step"):
            run(program, ReplaySource([]))
