"""Tests for the big-step interpreter and the lang/core bridge."""

import math

import numpy as np
import pytest

from repro import (
    exact_choice_marginal,
    exact_return_distribution,
    log_normalizer,
)
from repro.lang import EvalError, lang_model, parse_program, random_labels
from repro.lang.programs import (
    BURGLARY_ORIGINAL,
    BURGLARY_REFINED,
    FIGURE3,
    FIGURE6_GEOMETRIC,
    gmm_source,
)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestDeterministicPrograms:
    def test_arithmetic(self, rng):
        model = lang_model(parse_program("x = 2 + 3 * 4; return x;"))
        assert model.simulate(rng).return_value == 14

    def test_booleans_as_rationals(self, rng):
        model = lang_model(parse_program("x = 1 < 2; y = 2 < 1; return x + y;"))
        assert model.simulate(rng).return_value == 1

    def test_ternary(self, rng):
        model = lang_model(parse_program("x = 5; return x > 3 ? 10 : 20;"))
        assert model.simulate(rng).return_value == 10

    def test_short_circuit_and(self, rng):
        # The right operand would divide by zero if evaluated.
        model = lang_model(parse_program("z = 0; return 0 && (1 / z);"))
        assert model.simulate(rng).return_value == 0

    def test_short_circuit_or(self, rng):
        model = lang_model(parse_program("z = 0; return 1 || (1 / z);"))
        assert model.simulate(rng).return_value == 1

    def test_unary_not(self, rng):
        model = lang_model(parse_program("return !0 + !5;"))
        assert model.simulate(rng).return_value == 1

    def test_arrays(self, rng):
        source = "xs = array(3, 7); xs[1] = 9; return xs[0] + xs[1] + xs[2];"
        model = lang_model(parse_program(source))
        assert model.simulate(rng).return_value == 23

    def test_for_loop(self, rng):
        source = "total = 0; for i in [0 .. 5) { total = total + i; } return total;"
        model = lang_model(parse_program(source))
        assert model.simulate(rng).return_value == 10

    def test_while_loop(self, rng):
        source = "n = 0; while n < 4 { n = n + 1; } return n;"
        model = lang_model(parse_program(source))
        assert model.simulate(rng).return_value == 4

    def test_no_return_yields_environment(self, rng):
        model = lang_model(parse_program("x = 1; y = 2;"))
        assert model.simulate(rng).return_value == {"x": 1, "y": 2}

    def test_initial_environment(self, rng):
        model = lang_model(parse_program("return n * 2;"), env={"n": 21})
        assert model.simulate(rng).return_value == 42


class TestRuntimeErrors:
    def test_unbound_variable(self, rng):
        with pytest.raises(EvalError):
            lang_model(parse_program("return missing;")).simulate(rng)

    def test_division_by_zero(self, rng):
        with pytest.raises(EvalError):
            lang_model(parse_program("return 1 / 0;")).simulate(rng)

    def test_index_out_of_bounds(self, rng):
        with pytest.raises(EvalError):
            lang_model(parse_program("xs = array(2, 0); return xs[5];")).simulate(rng)

    def test_flip_probability_out_of_range(self, rng):
        with pytest.raises(EvalError):
            lang_model(parse_program("x = flip(1.5);")).simulate(rng)

    def test_empty_uniform_range(self, rng):
        with pytest.raises(EvalError):
            lang_model(parse_program("x = uniform(5, 2);")).simulate(rng)


class TestProbabilisticPrograms:
    def test_example1_normalizer(self):
        """Z_P = 0.7 for the Figure 3 program (Example 1)."""
        model = lang_model(parse_program(FIGURE3))
        assert math.exp(log_normalizer(model)) == pytest.approx(0.7)

    def test_burglary_posteriors_match_figure1(self):
        original = lang_model(parse_program(BURGLARY_ORIGINAL))
        refined = lang_model(parse_program(BURGLARY_REFINED))
        dist_p = exact_return_distribution(original)
        dist_q = exact_return_distribution(refined)
        assert dist_p[1] == pytest.approx(0.205, abs=0.001)
        assert dist_q[1] == pytest.approx(0.194, abs=0.001)

    def test_geometric_loop_addresses(self, rng):
        """While-loop choices are indexed by iteration (Section 5.4)."""
        model = lang_model(parse_program(FIGURE6_GEOMETRIC))
        for _ in range(20):
            trace = model.simulate(rng)
            n = trace.return_value
            # n - 1 successes then one failure: n flips total.
            assert len(trace) == n
            indices = [address[-1] for address in trace.addresses()]
            assert indices == list(range(n))

    def test_geometric_distribution(self, rng):
        model = lang_model(parse_program(FIGURE6_GEOMETRIC))
        samples = [model.simulate(rng).return_value for _ in range(4000)]
        # n = 1 + Geometric(1/2) has mean 2.
        assert np.mean(samples) == pytest.approx(2.0, abs=0.1)

    def test_for_loop_choice_addresses(self, rng):
        source = "for i in [0 .. 3) { x = flip(0.5); }"
        model = lang_model(parse_program(source))
        trace = model.simulate(rng)
        assert len(trace) == 3
        assert [address[-1] for address in trace.addresses()] == [0, 1, 2]

    def test_gmm_structure(self, rng):
        model = lang_model(parse_program(gmm_source(4)), env={"sigma": 3.0, "n": 6})
        trace = model.simulate(rng)
        # 4 centers + 6 cluster picks + 6 data values.
        assert len(trace) == 16
        assert len(trace.return_value) == 6

    def test_observe_weights_trace(self):
        model = lang_model(parse_program("x = flip(0.5); observe(flip(0.8) == x);"))
        z = math.exp(log_normalizer(model))
        assert z == pytest.approx(0.5 * 0.8 + 0.5 * 0.2)

    def test_nested_loops_unique_addresses(self, rng):
        source = """
        for i in [0 .. 2) {
            for j in [0 .. 2) {
                x = flip(0.5);
            }
        }
        """
        trace = lang_model(parse_program(source)).simulate(rng)
        assert len(trace) == 4
        suffixes = {address[-2:] for address in trace.addresses()}
        assert suffixes == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_model_bridge_supports_observations_map(self, rng):
        """Conditioning via the observation map at lang addresses."""
        program = parse_program("x = flip(0.3); y = flip(x ? 0.9 : 0.1);")
        labels = random_labels(program)
        y_address = (labels[1],)
        model = lang_model(program).condition({y_address: 1})
        marginal = exact_choice_marginal(model, (labels[0],))
        expected = 0.3 * 0.9 / (0.3 * 0.9 + 0.7 * 0.1)
        assert marginal[1] == pytest.approx(expected)
