"""Inference on structured-language programs via the embedded bridge.

Everything in ``repro.core`` — MCMC, importance sampling, SMC — applies
to ``lang_model`` programs; these integration tests exercise the
combinations the other suites don't cover.
"""

import numpy as np
import pytest

from repro import exact_choice_marginal, exact_return_distribution
from repro.core.importance import importance_sampling, rejection_sampling
from repro.core.mcmc import chain, gibbs_sweep, repeat, single_site_mh
from repro.lang import lang_model, parse_program, random_labels
from repro.lang.programs import BURGLARY_ORIGINAL


@pytest.fixture
def rng():
    return np.random.default_rng(12)


@pytest.fixture
def burglary():
    return lang_model(parse_program(BURGLARY_ORIGINAL))


class TestMCMCOnLangPrograms:
    def test_single_site_mh_converges(self, burglary, rng):
        kernel = repeat(single_site_mh(burglary), 3)
        states = chain(burglary, kernel, rng, iterations=8000, burn_in=1000)
        truth = exact_return_distribution(burglary)[1]
        empirical = np.mean([t.return_value for t in states])
        assert empirical == pytest.approx(truth, abs=0.03)

    def test_gibbs_on_lang_addresses(self, rng):
        program = parse_program(
            "x = flip(0.5); y = flip(x ? 0.8 : 0.2); observe(flip(y ? 0.9 : 0.1) == 1);"
        )
        model = lang_model(program)
        addresses = [(label,) for label in random_labels(program)[:2]]
        kernel = gibbs_sweep(model, addresses)
        states = chain(model, kernel, rng, iterations=4000, burn_in=400)
        truth = exact_choice_marginal(model, addresses[0])[1]
        empirical = np.mean([t[addresses[0]] for t in states])
        assert empirical == pytest.approx(truth, abs=0.03)

    def test_mh_with_branching_lang_program(self, rng):
        program = parse_program(
            """
            a = flip(0.4);
            if a {
                b = uniform(0, 4);
            } else {
                b = uniform(5, 9);
            }
            observe(flip(b < 3 ? 0.9 : 0.2) == 1);
            return a;
            """
        )
        model = lang_model(program)
        kernel = repeat(single_site_mh(model), 4)
        states = chain(model, kernel, rng, iterations=12000, burn_in=2000)
        truth = exact_return_distribution(model)[1]
        empirical = np.mean([t.return_value for t in states])
        assert empirical == pytest.approx(truth, abs=0.04)


class TestImportanceOnLangPrograms:
    def test_likelihood_weighting(self, burglary, rng):
        collection = importance_sampling(burglary, rng, 20000)
        truth = exact_return_distribution(burglary)[1]
        estimate = collection.estimate_probability(lambda t: t.return_value == 1)
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_rejection_sampling(self, burglary, rng):
        traces, _attempts = rejection_sampling(burglary, rng, 3000)
        truth = exact_return_distribution(burglary)[1]
        empirical = np.mean([t.return_value for t in traces])
        assert empirical == pytest.approx(truth, abs=0.03)

    def test_gmm_posterior_center(self, rng):
        """Conditioned GMM from the lang side, one cluster."""
        from repro.gmm import gmm_conditioned_source

        ys = [1.0, 1.2, 0.8, 1.1]
        model = lang_model(
            parse_program(gmm_conditioned_source(k=1, sigma=4)),
            env={"n": len(ys), "ys": ys},
        )
        collection = importance_sampling(model, rng, 20000)
        estimate = collection.estimate(lambda t: t.return_value[0])
        expected = sum(ys) / (len(ys) + 1 / 16)
        assert estimate == pytest.approx(expected, abs=0.05)
