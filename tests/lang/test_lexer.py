"""Unit tests for the lexer."""

import pytest

from repro.lang import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)]


class TestBasics:
    def test_assignment(self):
        assert kinds("x = 1;") == ["ident", "=", "number", ";"]

    def test_keywords_are_distinguished(self):
        assert kinds("if else observe flip uniform gauss array for in while return skip") == [
            "if", "else", "observe", "flip", "uniform", "gauss", "array",
            "for", "in", "while", "return", "skip",
        ]

    def test_identifier_containing_keyword(self):
        assert kinds("flipper ifx") == ["ident", "ident"]

    def test_numbers(self):
        assert texts("1 0.25 42 3.14159") == ["1", "0.25", "42", "3.14159"]

    def test_multi_char_operators(self):
        assert kinds("== != <= >= && || ..") == ["==", "!=", "<=", ">=", "&&", "||", ".."]

    def test_maximal_munch(self):
        # "<=" must not lex as "<", "=".
        assert kinds("a<=b") == ["ident", "<=", "ident"]

    def test_range_vs_decimal(self):
        # "[0 .. k)" and "[0..k)" both lex the range operator.
        assert kinds("[0..k)") == ["[", "number", "..", "ident", ")"]
        assert texts("1.5..2") == ["1.5", "..", "2"]

    def test_comments_are_skipped(self):
        assert kinds("x = 1; // edit: 1->2\ny = 2;") == [
            "ident", "=", "number", ";", "ident", "=", "number", ";",
        ]

    def test_positions(self):
        tokens = tokenize("x = 1;\ny = 2;")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[4].line, tokens[4].col) == (2, 1)

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("x = $;")

    def test_empty_input(self):
        assert tokenize("") == []
        assert tokenize("   \n\t  ") == []
