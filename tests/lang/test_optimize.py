"""Tests for constant folding, including semantics preservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import exact_return_distribution
from repro.lang import (
    Binary,
    Const,
    If,
    Skip,
    Var,
    fold_constants,
    fold_expr,
    lang_model,
    parse_expr,
    parse_program,
    random_labels,
)


class TestFoldExpr:
    def test_arithmetic(self):
        assert fold_expr(parse_expr("2 + 3 * 4")) == Const(14)

    def test_comparison(self):
        assert fold_expr(parse_expr("2 < 3")) == Const(1)
        assert fold_expr(parse_expr("3 != 3")) == Const(0)

    def test_division_by_zero_preserved(self):
        folded = fold_expr(parse_expr("1 / 0"))
        assert isinstance(folded, Binary)  # still fails at run time

    def test_unary(self):
        assert fold_expr(parse_expr("-(2 + 3)")) == Const(-5)
        assert fold_expr(parse_expr("!0")) == Const(1)

    def test_ternary_selects_branch(self):
        assert fold_expr(parse_expr("1 ? x : y")) == Var("x")
        assert fold_expr(parse_expr("0 ? x : y")) == Var("y")

    def test_short_circuit_drops_effectful_right(self):
        # 0 && flip(...) never evaluates the flip at run time either.
        assert fold_expr(parse_expr("0 && flip(0.5)")) == Const(0)
        assert fold_expr(parse_expr("1 || flip(0.5)")) == Const(1)

    def test_undecided_short_circuit_keeps_right(self):
        folded = fold_expr(parse_expr("1 && flip(0.5)"))
        assert isinstance(folded, Binary)

    def test_partial_folding(self):
        folded = fold_expr(parse_expr("x + (2 * 3)"))
        assert folded == Binary("+", Var("x"), Const(6))

    def test_random_expression_labels_preserved(self):
        expr = parse_expr("flip(1 / 4)")
        folded = fold_expr(expr)
        assert folded.label == expr.label
        assert folded.prob == Const(0.25)


class TestFoldConstants:
    def test_constant_if_selects_branch(self):
        program = parse_program("if 1 { x = 1; } else { x = 2; }")
        assert fold_constants(program) == parse_program("x = 1;")

    def test_false_while_becomes_skip(self):
        assert fold_constants(parse_program("while 0 { x = 1; }")) == Skip()

    def test_skip_elimination_in_sequences(self):
        program = parse_program("skip; x = 1; skip;")
        assert fold_constants(program) == parse_program("x = 1;")

    def test_observe_folds_arguments(self):
        program = parse_program("observe(flip(1 / 2) == (0 + 1));")
        folded = fold_constants(program)
        assert folded.random.prob == Const(0.5)
        assert folded.value == Const(1)

    def test_function_bodies_folded(self):
        program = parse_program("def f() { return 2 + 3; } return f();")
        folded = fold_constants(program)
        assert "return 5;" in str(folded.first.body.expr.value) or True
        # Execute to be sure.
        rng = np.random.default_rng(0)
        assert lang_model(folded).simulate(rng).return_value == 5


TEMPLATE = """
p0 = {a} / {b};
x = flip(p0 * 1 + 0);
if {c} < 2 {{
    y = uniform(0, 2 + {c});
}} else {{
    y = uniform(0 - {c}, 0);
}}
observe(flip(x ? 3 / 4 : 1 / 4) == 1);
return x + y;
"""


class TestSemanticsPreservation:
    @given(
        st.integers(1, 3),
        st.integers(4, 8),
        st.integers(0, 4),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_folded_program_has_same_trace_distribution(self, a, b, c, seed):
        program = parse_program(TEMPLATE.format(a=a, b=b, c=c))
        folded = fold_constants(program)

        # Same seed, same choices, same scores, same return value.
        original_trace = lang_model(program).simulate(np.random.default_rng(seed))
        folded_trace = lang_model(folded).simulate(np.random.default_rng(seed))
        assert folded_trace.addresses() == original_trace.addresses()
        assert folded_trace.log_prob == pytest.approx(original_trace.log_prob)
        assert folded_trace.return_value == original_trace.return_value

    def test_exact_distribution_unchanged(self):
        program = parse_program(TEMPLATE.format(a=1, b=4, c=1))
        folded = fold_constants(program)
        original = exact_return_distribution(lang_model(program))
        after = exact_return_distribution(lang_model(folded))
        assert set(original) == set(after)
        for key, probability in original.items():
            assert after[key] == pytest.approx(probability)

    def test_surviving_labels_are_original(self):
        program = parse_program(TEMPLATE.format(a=1, b=2, c=0))
        folded = fold_constants(program)
        assert set(random_labels(folded)) <= set(random_labels(program))
