"""Unit tests for the parser."""

import pytest

from repro.lang import (
    ArrayExpr,
    Assign,
    Binary,
    Const,
    FlipExpr,
    For,
    GaussExpr,
    If,
    Index,
    IndexAssign,
    Observe,
    ParseError,
    Return,
    Seq,
    Skip,
    Ternary,
    Unary,
    UniformExpr,
    Var,
    While,
    parse_expr,
    parse_program,
)


class TestExpressions:
    def test_precedence_arithmetic(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr == Binary("+", Const(1), Binary("*", Const(2), Const(3)))

    def test_left_associativity(self):
        expr = parse_expr("8 - 3 - 2")
        assert expr == Binary("-", Binary("-", Const(8), Const(3)), Const(2))

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr == Binary("*", Binary("+", Const(1), Const(2)), Const(3))

    def test_comparison_binds_looser_than_arithmetic(self):
        expr = parse_expr("a + 1 < b * 2")
        assert isinstance(expr, Binary) and expr.op == "<"

    def test_boolean_precedence(self):
        expr = parse_expr("a && b || c")
        assert expr == Binary("||", Binary("&&", Var("a"), Var("b")), Var("c"))

    def test_ternary(self):
        expr = parse_expr("burglary ? 0.9 : 0.01")
        assert expr == Ternary(Var("burglary"), Const(0.9), Const(0.01))

    def test_nested_ternary_right_associative(self):
        expr = parse_expr("a ? 1 : b ? 2 : 3")
        assert expr == Ternary(Var("a"), Const(1), Ternary(Var("b"), Const(2), Const(3)))

    def test_unary(self):
        assert parse_expr("-x") == Unary("-", Var("x"))
        assert parse_expr("!a && b") == Binary("&&", Unary("!", Var("a")), Var("b"))

    def test_indexing(self):
        expr = parse_expr("data[i + 1]")
        assert expr == Index(Var("data"), Binary("+", Var("i"), Const(1)))

    def test_random_expressions_carry_labels(self):
        flip = parse_expr("flip(0.5)")
        assert isinstance(flip, FlipExpr)
        assert flip.label.startswith("flip:")
        assert flip.prob == Const(0.5)
        uniform = parse_expr("uniform(1, 6)")
        assert isinstance(uniform, UniformExpr)
        gauss = parse_expr("gauss(0, sigma)")
        assert isinstance(gauss, GaussExpr)
        assert gauss.std == Var("sigma")

    def test_labels_encode_position(self):
        program = parse_program("x = flip(0.5);\ny = flip(0.5);")
        labels = [
            stmt.expr.label for stmt in [program.first, program.second]
        ]
        assert labels[0] != labels[1]

    def test_array_expression(self):
        expr = parse_expr("array(k, 0)")
        assert expr == ArrayExpr(Var("k"), Const(0))

    def test_wrong_arity_raises(self):
        with pytest.raises(ParseError):
            parse_expr("flip(0.5, 0.6)")
        with pytest.raises(ParseError):
            parse_expr("uniform(1)")

    def test_trailing_input_raises(self):
        with pytest.raises(ParseError):
            parse_expr("1 + 2 extra")


class TestStatements:
    def test_assignment(self):
        program = parse_program("x = 1;")
        assert program == Assign("x", Const(1))

    def test_sequence_right_nested(self):
        program = parse_program("x = 1; y = 2; z = 3;")
        assert isinstance(program, Seq)
        assert program.first == Assign("x", Const(1))
        assert isinstance(program.second, Seq)

    def test_if_else(self):
        program = parse_program("if a { x = 1; } else { x = 2; }")
        assert isinstance(program, If)
        assert program.cond == Var("a")
        assert program.then == Assign("x", Const(1))
        assert program.otherwise == Assign("x", Const(2))

    def test_if_without_else(self):
        program = parse_program("if a { x = 1; }")
        assert isinstance(program, If)
        assert program.otherwise == Skip()

    def test_observe(self):
        program = parse_program("observe(flip(0.8) == 1);")
        assert isinstance(program, Observe)
        assert isinstance(program.random, FlipExpr)
        assert program.value == Const(1)

    def test_observe_with_variable_value(self):
        program = parse_program("observe(flip(1 / 5) == d);")
        assert isinstance(program, Observe)
        assert program.value == Var("d")

    def test_observe_requires_random_expression(self):
        with pytest.raises(ParseError):
            parse_program("observe(x == 1);")

    def test_for_loop(self):
        program = parse_program("for i in [0 .. k) { x = i; }")
        assert isinstance(program, For)
        assert program.var == "i"
        assert program.low == Const(0)
        assert program.high == Var("k")

    def test_while_loop(self):
        program = parse_program("while flip(p) { n = n + 1; }")
        assert isinstance(program, While)
        assert isinstance(program.cond, FlipExpr)

    def test_index_assignment(self):
        program = parse_program("centers[i] = gauss(0, sigma);")
        assert isinstance(program, IndexAssign)
        assert program.name == "centers"
        assert program.index == Var("i")

    def test_return(self):
        program = parse_program("return burglary;")
        assert program == Return(Var("burglary"))

    def test_skip(self):
        assert parse_program("skip;") == Skip()

    def test_empty_program_is_skip(self):
        assert parse_program("") == Skip()

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("x = 1")

    def test_unclosed_block(self):
        with pytest.raises(ParseError):
            parse_program("if a { x = 1;")


class TestPaperPrograms:
    def test_all_paper_programs_parse(self):
        from repro.lang.programs import (
            BURGLARY_ORIGINAL,
            BURGLARY_REFINED,
            FIGURE3,
            FIGURE5_P,
            FIGURE5_Q,
            FIGURE6_GEOMETRIC,
            FIGURE7,
            gmm_source,
        )

        for source in [
            BURGLARY_ORIGINAL,
            BURGLARY_REFINED,
            FIGURE3,
            FIGURE5_P,
            FIGURE5_Q,
            FIGURE6_GEOMETRIC,
            FIGURE7,
            gmm_source(3),
        ]:
            assert parse_program(source) is not None
