"""Tests for the pretty-printer and static analyses."""

import pytest

from repro.lang import (
    assigned_variables,
    equal_modulo_labels,
    free_variables,
    parse_expr,
    parse_program,
    pretty,
    pretty_expr,
    random_expressions,
    random_labels,
    relabel,
    walk,
)
from repro.lang.programs import (
    BURGLARY_ORIGINAL,
    BURGLARY_REFINED,
    FIGURE3,
    FIGURE5_P,
    FIGURE5_Q,
    FIGURE6_GEOMETRIC,
    FIGURE7,
    gmm_source,
)

ALL_SOURCES = [
    BURGLARY_ORIGINAL,
    BURGLARY_REFINED,
    FIGURE3,
    FIGURE5_P,
    FIGURE5_Q,
    FIGURE6_GEOMETRIC,
    FIGURE7,
    gmm_source(4),
]


class TestPrettyRoundTrip:
    @pytest.mark.parametrize("source", ALL_SOURCES)
    def test_round_trip_modulo_labels(self, source):
        program = parse_program(source)
        printed = pretty(program)
        reparsed = parse_program(printed)
        assert equal_modulo_labels(program, reparsed)

    def test_parenthesization_preserves_meaning(self):
        for text in ["(1 + 2) * 3", "1 + 2 * 3", "-(a + b)", "a - (b - c)", "(a && b) || c"]:
            expr = parse_expr(text)
            assert parse_expr(pretty_expr(expr)) == expr

    def test_ternary_round_trip(self):
        expr = parse_expr("a ? b + 1 : c ? 2 : 3")
        assert parse_expr(pretty_expr(expr)) == expr

    def test_idempotent(self):
        program = parse_program(BURGLARY_REFINED)
        once = pretty(program)
        twice = pretty(parse_program(once))
        assert once == twice


class TestAnalyses:
    def test_random_expressions_count(self):
        # Figure 5's P has 4 random expressions (α, β, γ, δ).
        assert len(random_expressions(parse_program(FIGURE5_P))) == 4
        # Figure 5's Q has 5 (ε, ζ, η, θ, ι).
        assert len(random_expressions(parse_program(FIGURE5_Q))) == 5

    def test_random_labels_unique(self):
        for source in ALL_SOURCES:
            labels = random_labels(parse_program(source))
            assert len(labels) == len(set(labels))

    def test_assigned_variables(self):
        program = parse_program(FIGURE3)
        assert assigned_variables(program) == {"a", "b", "c", "d"}

    def test_assigned_includes_loop_vars(self):
        program = parse_program("for i in [0 .. 3) { x = i; }")
        assert assigned_variables(program) == {"i", "x"}

    def test_free_variables_of_closed_program(self):
        assert free_variables(parse_program(FIGURE3)) == set()

    def test_free_variables_of_gmm(self):
        # sigma and n are the GMM's parameters (supplied via env).
        assert free_variables(parse_program(gmm_source(5))) == {"sigma", "n"}

    def test_free_variable_read_before_assignment(self):
        program = parse_program("y = x; x = 1;")
        assert free_variables(program) == {"x"}

    def test_branch_assignment_not_definite(self):
        program = parse_program("if c { x = 1; } z = x;")
        assert free_variables(program) == {"c", "x"}

    def test_both_branches_assign_definitely(self):
        program = parse_program("if c { x = 1; } else { x = 2; } z = x;")
        assert free_variables(program) == {"c"}

    def test_walk_visits_all_nodes(self):
        program = parse_program("x = 1 + 2;")
        kinds = [type(node).__name__ for node in walk(program)]
        assert kinds == ["Assign", "Binary", "Const", "Const"]


class TestRelabel:
    def test_canonical_labels(self):
        program = relabel(parse_program(FIGURE5_P))
        assert random_labels(program) == ["r0", "r1", "r2", "r3"]

    def test_relabel_preserves_structure(self):
        program = parse_program(BURGLARY_REFINED)
        relabeled = relabel(program)
        assert equal_modulo_labels(program, relabeled)

    def test_relabel_makes_identical_sources_equal(self):
        source = "x = flip(0.5);\ny = flip(0.5);"
        shifted = "\n\n" + source  # different positions, same program
        assert parse_program(source) != parse_program(shifted)
        assert relabel(parse_program(source)) == relabel(parse_program(shifted))

    def test_custom_prefix(self):
        program = relabel(parse_program("x = flip(0.5);"), prefix="choice_")
        assert random_labels(program) == ["choice_0"]
