"""Fuzzed pretty-print/parse round-trip over randomly generated ASTs.

Classic compiler testing: generate arbitrary well-formed ASTs, render
them to concrete syntax, re-parse, and require structural equality
modulo labels.  Catches precedence/parenthesization bugs the fixed
program suite can't.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (
    ArrayExpr,
    Assign,
    Binary,
    Call,
    Const,
    FlipExpr,
    For,
    FuncDef,
    GaussExpr,
    If,
    Index,
    IndexAssign,
    Observe,
    Return,
    Skip,
    Ternary,
    Unary,
    UniformExpr,
    Var,
    While,
    equal_modulo_labels,
    parse_expr,
    parse_program,
    pretty,
    pretty_expr,
    seq,
)

# Parse-closed constants: non-negative ints and simple quarter decimals
# (negative literals parse as unary minus; exponents don't lex).
constants = st.one_of(
    st.integers(0, 999).map(Const),
    st.integers(0, 400).map(lambda k: Const(k / 4)).filter(
        lambda c: not float(c.value).is_integer()
    ),
)

names = st.sampled_from(["x", "y", "z", "total", "acc"])
variables = names.map(Var)
binary_ops = st.sampled_from(["+", "-", "*", "/", "==", "!=", "<", "<=", ">", ">=", "&&", "||"])
unary_ops = st.sampled_from(["-", "!"])

_label_counter = [0]


def _fresh_label(kind: str) -> str:
    _label_counter[0] += 1
    return f"{kind}:{_label_counter[0]}"


def _expr_strategy():
    base = st.one_of(constants, variables)

    def extend(children):
        return st.one_of(
            st.tuples(unary_ops, children).map(lambda t: Unary(*t)),
            st.tuples(binary_ops, children, children).map(lambda t: Binary(*t)),
            st.tuples(children, children, children).map(lambda t: Ternary(*t)),
            st.tuples(variables, children).map(lambda t: Index(*t)),
            st.tuples(children, children).map(lambda t: ArrayExpr(*t)),
            children.map(lambda p: FlipExpr(_fresh_label("flip"), p)),
            st.tuples(children, children).map(
                lambda t: UniformExpr(_fresh_label("uniform"), *t)
            ),
            st.tuples(children, children).map(
                lambda t: GaussExpr(_fresh_label("gauss"), *t)
            ),
            st.tuples(names, st.lists(children, max_size=3)).map(
                lambda t: Call(_fresh_label("call"), t[0], tuple(t[1]))
            ),
        )

    return st.recursive(base, extend, max_leaves=20)


expressions = _expr_strategy()

random_expressions = st.one_of(
    expressions.map(lambda p: FlipExpr(_fresh_label("flip"), p)),
    st.tuples(expressions, expressions).map(
        lambda t: UniformExpr(_fresh_label("uniform"), *t)
    ),
    st.tuples(expressions, expressions).map(
        lambda t: GaussExpr(_fresh_label("gauss"), *t)
    ),
)


def _stmt_strategy():
    base = st.one_of(
        st.just(Skip()),
        st.tuples(names, expressions).map(lambda t: Assign(*t)),
        st.tuples(names, expressions, expressions).map(lambda t: IndexAssign(*t)),
        st.tuples(random_expressions, expressions).map(lambda t: Observe(*t)),
        expressions.map(Return),
    )

    def extend(children):
        blocks = st.lists(children, min_size=1, max_size=3).map(lambda s: seq(*s))
        return st.one_of(
            st.tuples(expressions, blocks, blocks).map(lambda t: If(*t)),
            st.tuples(expressions, blocks).map(lambda t: If(t[0], t[1], Skip())),
            st.tuples(names, expressions, expressions, blocks).map(
                lambda t: For(*t)
            ),
            st.tuples(expressions, blocks).map(lambda t: While(*t)),
            st.tuples(
                names, st.lists(st.sampled_from(["a", "b"]), max_size=2, unique=True), blocks
            ).map(lambda t: FuncDef(t[0], tuple(t[1]), t[2])),
        )

    return st.recursive(base, extend, max_leaves=12)


statements = _stmt_strategy()
programs = st.lists(statements, min_size=1, max_size=6).map(lambda s: seq(*s))


class TestExpressionRoundTrip:
    @given(expressions)
    @settings(max_examples=300, deadline=None)
    def test_pretty_parse_round_trip(self, expr):
        printed = pretty_expr(expr)
        reparsed = parse_expr(printed)
        assert equal_modulo_labels(reparsed, expr), printed

    @given(expressions)
    @settings(max_examples=100, deadline=None)
    def test_pretty_is_stable(self, expr):
        printed = pretty_expr(expr)
        assert pretty_expr(parse_expr(printed)) == printed


class TestProgramRoundTrip:
    @given(programs)
    @settings(max_examples=200, deadline=None)
    def test_pretty_parse_round_trip(self, program):
        printed = pretty(program)
        reparsed = parse_program(printed)
        assert equal_modulo_labels(reparsed, program), printed

    @given(programs)
    @settings(max_examples=50, deadline=None)
    def test_pretty_is_idempotent(self, program):
        printed = pretty(program)
        assert pretty(parse_program(printed)) == printed
