"""Tests for the small-step semantics and its agreement with big-step."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (
    Config,
    EvalError,
    RandomSource,
    ReplaySource,
    lang_model,
    parse_program,
    run,
    step,
)
from repro.lang.ast import Skip
from repro.lang.programs import (
    BURGLARY_ORIGINAL,
    FIGURE3,
    FIGURE6_GEOMETRIC,
    gmm_source,
)


@pytest.fixture
def rng():
    return np.random.default_rng(4)


class TestStepMechanics:
    def test_terminal_configuration(self):
        config = Config(parse_program("skip;"), {})
        assert config.is_terminal()
        with pytest.raises(EvalError):
            step(config, ReplaySource([]))

    def test_assignment_takes_two_steps(self):
        """x = 1 + 1: one step reduces the sum, one performs the store."""
        config = Config(parse_program("x = 1 + 1;"), {})
        first = step(config, ReplaySource([]))
        assert not first.config.is_terminal()
        second = step(first.config, ReplaySource([]))
        assert second.config.is_terminal()
        assert second.config.env == {"x": 2}

    def test_flip_step_emits_value_and_probability(self):
        """(P[flip(v)], σ) --[1]/v--> (P[1], σ): Figure 2's flip rule."""
        config = Config(parse_program("x = flip(0.25);"), {})
        result = step(config, ReplaySource([1]))
        assert result.emitted == (1,)
        assert result.log_prob == pytest.approx(math.log(0.25))

    def test_observe_step_has_probability_but_no_emission(self):
        config = Config(parse_program("observe(flip(0.8) == 1);"), {})
        result = step(config, ReplaySource([]))
        assert result.emitted == ()
        assert result.log_prob == pytest.approx(math.log(0.8))
        assert result.config.is_terminal()

    def test_variable_lookup_is_probability_one(self):
        config = Config(parse_program("y = x;"), {"x": 3})
        result = step(config, ReplaySource([]))
        assert result.log_prob == 0.0

    def test_while_unrolls(self):
        program = parse_program("while flip(0.5) { n = n + 1; }")
        result = step(Config(program, {"n": 0}), ReplaySource([0]))
        # One step rewrites the loop to a conditional; no probability yet.
        assert result.log_prob == 0.0
        assert result.emitted == ()


class TestRun:
    def test_figure3_trace_probability(self):
        """Replaying t = [1, 4, 1] gives P̃r[t] = 1/3 · 1/6 · 1/2 · 1/5."""
        result = run(parse_program(FIGURE3), ReplaySource([1, 4, 1]))
        expected = math.log(1 / 3) + math.log(1 / 6) + math.log(1 / 2) + math.log(1 / 5)
        assert result.log_prob == pytest.approx(expected)
        assert result.return_value == 4

    def test_replay_too_short_raises(self):
        with pytest.raises(EvalError):
            run(parse_program(FIGURE3), ReplaySource([1]))

    def test_geometric_terminates(self, rng):
        result = run(parse_program(FIGURE6_GEOMETRIC), RandomSource(rng))
        assert result.return_value >= 1
        assert len(result.trace) == result.return_value

    def test_max_steps_guard(self):
        program = parse_program("while 1 { x = 1; }")
        with pytest.raises(EvalError):
            run(program, ReplaySource([]), max_steps=100)

    def test_arrays_and_for_loops(self, rng):
        result = run(
            parse_program(gmm_source(2)),
            RandomSource(rng),
            env={"sigma": 1.0, "n": 3},
        )
        assert len(result.trace) == 2 + 3 * 2
        assert len(result.return_value) == 3


PROGRAMS = [
    BURGLARY_ORIGINAL,
    FIGURE3,
    "x = flip(0.5); if x { y = uniform(0, 3); } else { y = flip(0.9); } return y;",
    "total = 0; for i in [0 .. 4) { total = total + flip(0.5); } return total;",
    "x = flip(0.2) && flip(0.7); observe(flip(x ? 0.9 : 0.3) == 1); return x;",
]


class TestBigStepAgreement:
    """Small-step and big-step agree on traces and probabilities."""

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_trace_and_log_prob_agree(self, source, rng):
        program = parse_program(source)
        model = lang_model(program)
        for _ in range(25):
            big = model.simulate(rng)
            values = [record.value for record in big.choices()]
            small = run(program, ReplaySource(values))
            assert small.log_prob == pytest.approx(big.log_prob)
            assert list(small.trace) == values

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sampled_runs_are_scoreable(self, seed):
        program = parse_program(PROGRAMS[2])
        sampled = run(program, RandomSource(np.random.default_rng(seed)))
        rescored = run(program, ReplaySource(list(sampled.trace)))
        assert rescored.log_prob == pytest.approx(sampled.log_prob)
        assert rescored.return_value == sampled.return_value
