"""Tests for the scalar/array kind analysis."""

import pytest

from repro.lang import parse_program
from repro.lang.types import check_kinds
from repro.lang.programs import (
    BURGLARY_ORIGINAL,
    FIGURE3,
    FIGURE6_GEOMETRIC,
    gmm_source,
)


def messages(source, parameters=(), array_parameters=()):
    return [str(d) for d in check_kinds(parse_program(source), parameters, array_parameters)]


def errors(source, **kwargs):
    return [m for m in messages(source, **kwargs) if m.startswith("error")]


def warnings(source, **kwargs):
    return [m for m in messages(source, **kwargs) if m.startswith("warning")]


class TestCleanPrograms:
    @pytest.mark.parametrize("source", [BURGLARY_ORIGINAL, FIGURE3, FIGURE6_GEOMETRIC])
    def test_paper_programs(self, source):
        assert messages(source) == []

    def test_gmm(self):
        assert messages(gmm_source(5), parameters=("sigma", "n")) == []

    def test_array_workflow(self):
        source = "xs = array(3, 0); xs[1] = 2; y = xs[0] + xs[1];"
        assert messages(source) == []

    def test_array_parameter_declaration(self):
        source = "y = ys[0] + 1;"
        assert messages(source, parameters=("ys",), array_parameters=("ys",)) == []


class TestErrors:
    def test_indexing_a_scalar(self):
        assert any("indexed but is a scalar" in m for m in errors("x = 1; y = x[0];"))

    def test_index_assigning_a_scalar(self):
        assert any(
            "index-assigned but is a scalar" in m for m in errors("x = 1; x[0] = 2;")
        )

    def test_array_in_arithmetic(self):
        assert any(
            "is an array" in m for m in errors("xs = array(3, 0); y = xs + 1;")
        )

    def test_array_as_condition(self):
        assert any(
            "condition is an array" in m
            for m in errors("xs = array(2, 0); if xs { y = 1; }")
        )

    def test_array_as_distribution_parameter(self):
        assert any(
            "flip probability is an array" in m
            for m in errors("xs = array(2, 0); y = flip(xs);")
        )

    def test_array_as_observed_value(self):
        assert any(
            "observed value is an array" in m
            for m in errors("xs = array(2, 0); observe(flip(0.5) == xs);")
        )

    def test_array_as_loop_bound(self):
        assert any(
            "loop bound is an array" in m
            for m in errors("xs = array(2, 0); for i in [0 .. xs) { y = 1; }")
        )


class TestUnknownSilences:
    def test_function_results_are_unknown(self):
        # f() could return an array; indexing its result is not flagged.
        source = "def f() { return array(2, 0); } y = f(); z = y[0];"
        assert errors(source) == []

    def test_parameters_are_unknown(self):
        assert errors("y = n[0];", parameters=("n",)) == []

    def test_reassignment_changes_kind(self):
        # x becomes an array after reassignment: indexing is then fine.
        source = "x = 1; x = array(3, 0); y = x[0];"
        assert errors(source) == []

    def test_array_then_scalar_reassignment(self):
        source = "x = array(3, 0); x = 1; y = x[0];"
        assert any("indexed but is a scalar" in m for m in errors(source))


class TestBranchMerging:
    def test_conflicting_branch_kinds_warn(self):
        source = "if c { x = 1; } else { x = array(2, 0); } y = x;"
        assert any("one branch" in m for m in warnings(source, parameters=("c",)))

    def test_conflicting_merge_silences_downstream(self):
        source = "if c { x = 1; } else { x = array(2, 0); } y = x[0];"
        assert errors(source, parameters=("c",)) == []

    def test_consistent_branches_keep_kind(self):
        source = (
            "if c { x = array(2, 0); } else { x = array(3, 1); } x[0] = 5;"
        )
        assert messages(source, parameters=("c",)) == []

    def test_loop_body_kind_flows_out(self):
        # xs assigned an array only inside the loop: joined with absence
        # -> unknown after, so indexing is not flagged...
        source = "for i in [0 .. 3) { xs = array(2, 0); } y = xs[0];"
        assert errors(source) == []
        # ...but a definite pre-loop scalar overwritten by a loop array
        # merges to unknown too (may run zero times).
        source2 = "xs = 1; for i in [0 .. 3) { xs = array(2, 0); } y = xs[0];"
        assert errors(source2) == []
