"""Shared fixtures: a tiny translator pair for observability tests."""

import numpy as np
import pytest

from repro import Correspondence, CorrespondenceTranslator, Model, WeightedCollection
from repro.distributions import Flip


def original_fn(t):
    burglary = t.sample(Flip(0.02), "burglary")
    alarm = t.sample(Flip(0.9 if burglary else 0.01), "alarm")
    t.observe(Flip(0.8 if alarm else 0.05), 1, "mary_wakes")
    return burglary


def refined_fn(t):
    burglary = t.sample(Flip(0.02), "burglary")
    earthquake = t.sample(Flip(0.005), "earthquake")
    p_alarm = 0.95 if earthquake else (0.9 if burglary else 0.01)
    alarm = t.sample(Flip(p_alarm), "alarm")
    p_wakes = (0.9 if earthquake else 0.8) if alarm else 0.05
    t.observe(Flip(p_wakes), 1, "mary_wakes")
    return burglary


@pytest.fixture
def rng():
    return np.random.default_rng(2018)


@pytest.fixture
def translator():
    return CorrespondenceTranslator(
        Model(original_fn, name="original"),
        Model(refined_fn, name="refined"),
        Correspondence.identity(["burglary", "alarm"]),
    )


@pytest.fixture
def collection(translator, rng):
    return WeightedCollection.uniform(
        [translator.source.simulate(rng) for _ in range(20)]
    )
