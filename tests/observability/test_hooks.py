"""Profiling hooks: invocation order and counts under each fault policy."""

import numpy as np
import pytest

from repro import FaultPolicy, InferenceConfig, SMCStats, infer, infer_sequence
from repro.errors import TranslationError
from repro.observability import CompositeHooks, Hooks, RecordingHooks
from repro.testing.faults import FaultInjector, FaultyTranslator


class TestInvocationOrder:
    def test_event_sequence_for_one_step(self, translator, collection, rng):
        hooks = RecordingHooks()
        infer(translator, collection, rng, config=InferenceConfig(hooks=hooks))

        kinds = [event[0] for event in hooks.events]
        assert kinds[0] == "step_start"
        assert kinds[1 : 1 + len(collection)] == ["particle"] * len(collection)
        assert kinds[-2] == "resample"
        assert kinds[-1] == "step_end"

    def test_step_start_payload(self, translator, collection, rng):
        hooks = RecordingHooks()
        infer(translator, collection, rng, config=InferenceConfig(hooks=hooks))
        (start,) = hooks.of("step_start")
        assert start == ("step_start", None, len(collection))

    def test_particle_indices_in_order(self, translator, collection, rng):
        hooks = RecordingHooks()
        infer(translator, collection, rng, config=InferenceConfig(hooks=hooks))
        particles = hooks.of("particle")
        assert [event[1] for event in particles] == list(range(len(collection)))
        assert all(event[2] == "ok" for event in particles)

    def test_resample_payload_matches_stats(self, translator, collection, rng):
        hooks = RecordingHooks()
        step = infer(
            translator,
            collection,
            rng,
            config=InferenceConfig(hooks=hooks, resample="always"),
        )
        (resample,) = hooks.of("resample")
        assert resample[1] == pytest.approx(step.stats.ess_before_resample)
        assert resample[2] is True

    def test_step_end_carries_stats(self, translator, collection, rng):
        hooks = RecordingHooks()
        step = infer(translator, collection, rng, config=InferenceConfig(hooks=hooks))
        (end,) = hooks.of("step_end")
        assert isinstance(end[1], SMCStats)
        assert end[1] is step.stats

    def test_sequence_passes_step_indices(self, translator, collection, rng):
        hooks = RecordingHooks()
        inverse = translator.inverse()
        infer_sequence(
            [translator, inverse],
            collection,
            rng,
            config=InferenceConfig(hooks=hooks, resample="never"),
        )
        starts = hooks.of("step_start")
        assert [event[1] for event in starts] == [0, 1]


class TestOutcomesUnderFaultPolicies:
    def scripted(self, translator, indices):
        injector = FaultInjector(at_calls={i: "error" for i in indices})
        return FaultyTranslator(translator, injector)

    def test_fail_fast_stops_at_first_fault(self, translator, collection, rng):
        hooks = RecordingHooks()
        faulty = self.scripted(translator, [3])
        with pytest.raises(TranslationError):
            infer(
                faulty,
                collection,
                rng,
                config=InferenceConfig(hooks=hooks, fault_policy="fail_fast"),
            )
        # Particles 0..2 reported ok; the raising particle never reports.
        particles = hooks.of("particle")
        assert [event[1] for event in particles] == [0, 1, 2]
        assert hooks.of("step_end") == []

    def test_drop_reports_dropped_outcome(self, translator, collection, rng):
        hooks = RecordingHooks()
        faulty = self.scripted(translator, [2, 5])
        step = infer(
            faulty,
            collection,
            rng,
            config=InferenceConfig(hooks=hooks, fault_policy="drop"),
        )
        outcomes = [event[2] for event in hooks.of("particle")]
        assert len(outcomes) == len(collection)
        assert outcomes.count("dropped") == 2
        assert [i for i, o in enumerate(outcomes) if o == "dropped"] == [2, 5]
        assert step.stats.dropped == 2

    def test_regenerate_reports_regenerated_outcome(self, translator, collection, rng):
        hooks = RecordingHooks()
        # Scripted indices are call indices: with max_retries=0 each
        # particle is one call, so call 4 is particle 4.
        faulty = self.scripted(translator, [4])
        policy = FaultPolicy(mode="regenerate", max_retries=0)
        step = infer(
            faulty,
            collection,
            rng,
            config=InferenceConfig(hooks=hooks, fault_policy=policy),
        )
        outcomes = [event[2] for event in hooks.of("particle")]
        assert outcomes.count("regenerated") == 1
        assert outcomes[4] == "regenerated"
        assert step.stats.regenerated == 1

    def test_hook_counts_balance_stats(self, translator, collection, rng):
        hooks = RecordingHooks()
        faulty = self.scripted(translator, [0, 7, 13])
        step = infer(
            faulty,
            collection,
            rng,
            config=InferenceConfig(hooks=hooks, fault_policy="drop"),
        )
        outcomes = [event[2] for event in hooks.of("particle")]
        assert outcomes.count("ok") == len(collection) - step.stats.dropped
        assert outcomes.count("dropped") == step.stats.dropped


class TestCompositeHooks:
    def test_fans_out_in_order(self, translator, collection, rng):
        first, second = RecordingHooks(), RecordingHooks()
        infer(
            translator,
            collection,
            rng,
            config=InferenceConfig(hooks=CompositeHooks([first, second])),
        )
        assert first.events == second.events
        assert len(first.events) == len(collection) + 3

    def test_base_hooks_are_noops(self, translator, collection, rng):
        # The base class must be safely subclassable with partial overrides.
        class OnlyStepEnd(Hooks):
            def __init__(self):
                self.steps = 0

            def on_step_end(self, stats):
                self.steps += 1

        hooks = OnlyStepEnd()
        infer(translator, collection, rng, config=InferenceConfig(hooks=hooks))
        assert hooks.steps == 1
