"""Metrics registry: instruments, bucket edges, null behaviour."""

import json

import pytest

from repro.observability import (
    HISTOGRAM_EDGES,
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
    to_json,
)


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("particles")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_create_or_get_shares_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")


class TestGauge:
    def test_set_and_updates(self):
        gauge = MetricsRegistry().gauge("ess")
        assert gauge.value is None
        gauge.set(12.5)
        gauge.set(3)
        assert gauge.value == 3.0
        assert gauge.updates == 2


class TestHistogramBuckets:
    def test_edges_are_log_scale_four_per_decade(self):
        assert len(HISTOGRAM_EDGES) == 73
        assert HISTOGRAM_EDGES[0] == pytest.approx(1e-9)
        assert HISTOGRAM_EDGES[-1] == pytest.approx(1e9)
        # Consecutive edges differ by a factor of 10^(1/4).
        for low, high in zip(HISTOGRAM_EDGES, HISTOGRAM_EDGES[1:]):
            assert high / low == pytest.approx(10 ** 0.25)
        # Every decade boundary is itself an edge (k = 0 mod 4).
        assert any(edge == pytest.approx(1.0) for edge in HISTOGRAM_EDGES)

    def test_value_lands_in_correct_bucket(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        index = histogram.bucket_counts.index(1)
        # bisect_left: a value equal to an edge lands AT that edge's index.
        assert HISTOGRAM_EDGES[index] == pytest.approx(1.0)

    def test_underflow_and_overflow(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(0.0)      # non-positive -> bucket 0
        histogram.observe(-5.0)
        histogram.observe(1e12)     # beyond the last edge -> overflow bucket
        assert histogram.bucket_counts[0] == 2
        assert histogram.bucket_counts[-1] == 1
        snapshot = histogram.snapshot()
        assert snapshot["buckets"]["+Inf"] == 1

    def test_summary_stats(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(6.0)
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean() == pytest.approx(2.0)

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("h").mean() is None


class TestRegistry:
    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="counter"):
            registry.gauge("x")

    def test_len_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.histogram("b")
        assert len(registry) == 2
        assert "a" in registry and "b" in registry and "c" not in registry

    def test_to_dict_sorted_and_strict_json(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc(2)
        registry.gauge("alpha").set(float("nan"))
        registry.histogram("mid").observe(0.5)
        payload = registry.to_dict()
        assert list(payload) == ["alpha", "mid", "zeta"]
        # NaN gauge survives strict-JSON export as null.
        parsed = json.loads(to_json(payload))
        assert parsed["alpha"]["value"] is None
        assert parsed["zeta"]["value"] == 2


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("c").inc(5)
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.histogram("h").observe(2.0)
        assert len(NULL_METRICS) == 0
        assert NULL_METRICS.to_dict() == {}

    def test_shared_instrument(self):
        registry = NullMetricsRegistry()
        assert registry.counter("a") is registry.histogram("b")
