"""Span tracer: nesting, timing, deterministic export, null behaviour."""

import json

import pytest

from repro.observability import NULL_TRACER, NullTracer, Tracer


class FakeClock:
    """Deterministic clock advancing a fixed amount per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        (root,) = tracer.roots
        assert root.name == "a"
        assert [child.name for child in root.children] == ["b", "d"]
        assert [child.name for child in root.children[0].children] == ["c"]

    def test_sequential_roots(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_duration_set_on_exit(self):
        clock = FakeClock(step=0.5)
        tracer = Tracer(clock=clock)
        with tracer.span("x") as span:
            assert span.duration is None
        assert span.duration == pytest.approx(0.5)

    def test_duration_recorded_on_exception(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("x") as span:
                raise RuntimeError("boom")
        assert span.duration is not None
        assert tracer.current() is None  # stack unwound

    def test_counters_and_totals(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            outer.count("n", 2)
            with tracer.span("inner") as inner:
                inner.count("n", 3)
            tracer.count("n")  # lands on the innermost open span: outer
        assert outer.counters["n"] == 3
        assert inner.counters["n"] == 3
        assert outer.total("n") == 6

    def test_spans_and_durations_lookup(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.span("step"):
                with tracer.span("phase"):
                    pass
        assert len(tracer.spans("phase")) == 3
        assert len(tracer.durations("phase")) == 3

    def test_self_time_excludes_children(self):
        clock = FakeClock(step=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("parent") as parent:
            with tracer.span("child"):
                pass
        # parent: start=0 end=3 -> 3; child: start=1 end=2 -> 1.
        assert parent.duration == pytest.approx(3.0)
        assert parent.self_time() == pytest.approx(2.0)


class TestExport:
    def make_tracer(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("smc.step") as step:
            step.count("particles", 2)
            with tracer.span("smc.translate"):
                pass
        return tracer

    def test_to_dict_shape(self):
        payload = self.make_tracer().to_dict()
        (root,) = payload["spans"]
        assert root["name"] == "smc.step"
        assert root["counters"] == {"particles": 2}
        assert [c["name"] for c in root["children"]] == ["smc.translate"]

    def test_json_export_is_deterministic(self):
        first = self.make_tracer().to_json()
        second = self.make_tracer().to_json()
        assert first == second
        parsed = json.loads(first)  # strict JSON round trip
        assert parsed["spans"][0]["duration_s"] == 3.0

    def test_folded_stacks(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        lines = tracer.folded().splitlines()
        # a: duration 3, child 1 -> self 2s -> 2e6 us; a;b: 1s -> 1e6 us.
        assert lines == ["a 2000000", "a;b 1000000"]

    def test_folded_merges_identical_stacks(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(2):
            with tracer.span("a"):
                pass
        assert tracer.folded() == "a 2000000"


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("a") as span:
            span.count("n", 5)
            tracer.count("m")
        assert tracer.roots == []
        assert tracer.spans("a") == []
        assert tracer.durations("a") == []
        assert tracer.to_dict() == {"spans": []}

    def test_null_span_still_measures_time(self):
        with NULL_TRACER.span("phase") as span:
            sum(range(1000))
        assert span.duration is not None
        assert span.duration >= 0.0
