"""Module-level (picklable) models for the executor test suite.

The ``process`` backend pickles the translator — and with it the model
functions — to its workers, so everything here must live at module
level (the closure-based model factories used elsewhere in the test
suite would fail to pickle, which is itself asserted in
``test_executor.py``).
"""

from repro import Correspondence, CorrespondenceTranslator, Model
from repro.distributions import Flip


def source_fn(t):
    x = t.sample(Flip(0.5), "x")
    y = t.sample(Flip(0.7 if x else 0.3), "y")
    t.observe(Flip(0.9 if y else 0.2), 1, "o")
    return x


def target_fn(t):
    x = t.sample(Flip(0.4), "x")
    y = t.sample(Flip(0.75 if x else 0.25), "y")
    t.observe(Flip(0.85 if y else 0.25), 1, "o")
    return x


SOURCE = Model(source_fn, name="source")
TARGET = Model(target_fn, name="target")


def make_translator(**kwargs):
    return CorrespondenceTranslator(
        SOURCE, TARGET, Correspondence.identity(["x", "y"]), **kwargs
    )
