import pytest


@pytest.fixture
def cli_workers(request):
    """Worker count from ``--workers`` (see the root conftest)."""
    return request.config.getoption("--workers")
