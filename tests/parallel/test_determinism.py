"""Cross-backend determinism: the tentpole guarantee of repro.parallel.

For a fixed seed, ``infer`` must produce **byte-identical** weighted
collections under the ``serial``, ``thread``, and ``process`` backends,
for any worker count — and, under the scripted fault injector, identical
``SMCStats`` fault counters too.  These tests are what the CI
parallel-correctness job runs with ``--workers 2``.
"""

import numpy as np
import pytest

from repro import WeightedCollection, infer
from repro.core import InferenceConfig
from repro.testing import FaultInjector, FaultyTranslator

from ._models import make_translator

NUM_PARTICLES = 24

#: (backend, workers) grid; None = the legacy inline loop, which has its
#: own RNG discipline and is only compared for fault accounting.
BACKENDS = [
    ("serial", 1),
    ("serial", 3),
    ("thread", 1),
    ("thread", 2),
    ("thread", 3),
    ("process", 2),
]


def _collection(seed=13):
    translator = make_translator()
    rng = np.random.default_rng(seed)
    traces = [translator.source.simulate(rng) for _ in range(NUM_PARTICLES)]
    return translator, WeightedCollection.uniform(traces)


def _run(backend, workers, policy="fail_fast", injector=None, seed=13):
    translator, collection = _collection(seed)
    if injector is not None:
        translator = FaultyTranslator(translator, injector)
    config = InferenceConfig(
        executor=backend, workers=workers, fault_policy=policy
    )
    rng = np.random.default_rng(101)
    return infer(translator, collection, rng, config=config)


def _fingerprint(collection):
    """Everything observable about a weighted collection, exactly."""
    return [
        (
            tuple(sorted(trace.choices(), key=lambda r: str(r.address))),
            trace.log_prob,
            log_weight,
        )
        for trace, log_weight in zip(collection.items, collection.log_weights)
    ]


class TestByteIdenticalBackends:
    def test_all_backends_match_serial_reference(self):
        reference = _run("serial", 1)
        expected = _fingerprint(reference.collection)
        for backend, workers in BACKENDS[1:]:
            step = _run(backend, workers)
            assert _fingerprint(step.collection) == expected, (
                f"{backend}/{workers} diverged from the serial reference"
            )

    def test_log_weights_bitwise_equal(self):
        serial = _run("serial", 1).collection.log_weights
        threaded = _run("thread", 3).collection.log_weights
        assert [w.hex() for w in serial] == [w.hex() for w in threaded]

    def test_chunking_does_not_matter(self):
        """Same backend, different worker counts: same bytes."""
        expected = _fingerprint(_run("thread", 1).collection)
        for workers in (2, 3, 5):
            assert _fingerprint(_run("thread", workers).collection) == expected

    def test_cli_selected_worker_count(self, cli_workers):
        """CI entry point: ``pytest tests/parallel --workers N``."""
        expected = _fingerprint(_run("serial", 1).collection)
        for backend in ("thread", "process"):
            step = _run(backend, cli_workers)
            assert _fingerprint(step.collection) == expected, (
                f"{backend}/{cli_workers} diverged from the serial reference"
            )

    def test_repeated_runs_are_deterministic(self):
        assert _fingerprint(_run("process", 2).collection) == _fingerprint(
            _run("process", 2).collection
        )


SCHEDULE = {1: "error", 5: "neg_inf", 9: "error"}


class TestFaultDeterminism:
    @pytest.mark.parametrize("backend,workers", BACKENDS)
    def test_scripted_faults_identical_under_drop(self, backend, workers):
        injector = FaultInjector(at_calls=SCHEDULE)
        step = _run(backend, workers, policy="drop", injector=injector)
        stats = step.stats
        # Two scripted errors are dropped; the neg_inf weight survives
        # as a zero-probability particle, not a fault.
        assert stats.failed == 2
        assert stats.dropped == 2
        assert stats.regenerated == 0
        if backend == "serial":
            # The serial backend runs the caller's translator in place,
            # so its injector bookkeeping is visible; thread/process
            # chunks operate on isolated copies by design.
            assert injector.injected["error"] == 2
            assert injector.injected["neg_inf"] == 1
        # Dropped particles carry -inf; so does the neg_inf injection.
        neg_inf = [
            i
            for i, w in enumerate(step.collection.log_weights)
            if w == float("-inf")
        ]
        assert neg_inf == [1, 5, 9]

    def test_fault_collections_byte_identical_across_backends(self):
        expected = None
        for backend, workers in BACKENDS:
            injector = FaultInjector(at_calls=SCHEDULE)
            step = _run(backend, workers, policy="drop", injector=injector)
            fingerprint = _fingerprint(step.collection)
            if expected is None:
                expected = fingerprint
            else:
                assert fingerprint == expected, f"{backend}/{workers} diverged"

    def test_inline_loop_matches_executor_fault_counters(self):
        """The legacy inline loop sees the same scripted schedule."""
        inline = _run(None, None, policy="drop", injector=FaultInjector(at_calls=SCHEDULE))
        serial = _run("serial", 1, policy="drop", injector=FaultInjector(at_calls=SCHEDULE))
        assert inline.stats.failed == serial.stats.failed
        assert inline.stats.dropped == serial.stats.dropped

    def test_faults_by_worker_accounts_every_failure(self):
        injector = FaultInjector(at_calls=SCHEDULE)
        step = _run("thread", 3, policy="drop", injector=injector)
        by_worker = step.stats.faults_by_worker
        assert by_worker is not None
        # 24 particles over 3 chunks of 8: both errors (particles 1 and
        # 9) land in workers 0 and 1; worker 2 reports an explicit zero.
        assert by_worker == {0: 1, 1: 1, 2: 0}
        assert sum(by_worker.values()) == step.stats.failed

    def test_inline_loop_reports_no_worker_breakdown(self):
        step = _run(None, None)
        assert step.stats.faults_by_worker is None
