"""Unit tests for the particle-executor machinery itself.

Determinism across backends is covered by ``test_determinism.py``; this
module pins down the building blocks: chunking, seed spawning, the
shared-executor registry, spec resolution, and the outcome protocol.
"""

import numpy as np
import pytest

from repro.core.config import FaultPolicy, InferenceConfig
from repro.parallel import (
    EXECUTOR_BACKENDS,
    ParticleExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_bounds,
    get_executor,
    resolve_executor,
    spawn_particle_rngs,
)

from ._models import make_translator


class TestChunkBounds:
    def test_covers_range_contiguously(self):
        for count in (1, 2, 7, 10, 100):
            for chunks in (1, 2, 3, 8, 200):
                bounds = chunk_bounds(count, chunks)
                flat = [i for lo, hi in bounds for i in range(lo, hi)]
                assert flat == list(range(count))

    def test_never_produces_empty_chunks(self):
        assert chunk_bounds(3, 10) == [(0, 1), (1, 2), (2, 3)]

    def test_balanced_within_one(self):
        sizes = [hi - lo for lo, hi in chunk_bounds(10, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_respects_chunk_count(self):
        assert len(chunk_bounds(100, 4)) == 4


class TestSpawnParticleRngs:
    def test_consumes_exactly_one_draw(self):
        probe, reference = np.random.default_rng(5), np.random.default_rng(5)
        spawn_particle_rngs(probe, 16)
        reference.integers(0, np.iinfo(np.int64).max, dtype=np.int64)
        assert probe.random() == reference.random()

    def test_deterministic_per_seed(self):
        a = spawn_particle_rngs(np.random.default_rng(7), 4)
        b = spawn_particle_rngs(np.random.default_rng(7), 4)
        for left, right in zip(a, b):
            assert (
                np.random.default_rng(left).random()
                == np.random.default_rng(right).random()
            )

    def test_particle_stream_independent_of_count(self):
        """Particle i's stream does not depend on how many particles exist."""
        few = spawn_particle_rngs(np.random.default_rng(7), 4)
        many = spawn_particle_rngs(np.random.default_rng(7), 12)
        assert (
            np.random.default_rng(few[3]).random()
            == np.random.default_rng(many[3]).random()
        )


class TestRegistry:
    def test_shared_per_key(self):
        assert get_executor("serial", 1) is get_executor("serial", 1)
        assert get_executor("serial", 1) is not get_executor("serial", 2)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            get_executor("gpu")

    def test_resolve_none_is_inline(self):
        assert resolve_executor(None) is None

    def test_resolve_string(self):
        executor = resolve_executor("thread", 2)
        assert isinstance(executor, ThreadExecutor)
        assert executor.workers == 2

    def test_resolve_instance_passthrough(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor

    def test_resolve_rejects_other_types(self):
        with pytest.raises(TypeError, match="executor must be"):
            resolve_executor(42)

    def test_config_validates_backend_names(self):
        assert InferenceConfig(executor="thread").executor == "thread"
        with pytest.raises(ValueError):
            InferenceConfig(executor="gpu")
        with pytest.raises(ValueError):
            InferenceConfig(executor="thread", workers=0)

    def test_backends_constant_matches_config(self):
        assert tuple(EXECUTOR_BACKENDS) == InferenceConfig.EXECUTOR_BACKENDS


def _run_map(executor, num_particles, seed=3):
    translator = make_translator()
    rng = np.random.default_rng(seed)
    items = [translator.source.simulate(rng) for _ in range(num_particles)]
    seeds = spawn_particle_rngs(rng, num_particles)
    return executor.map_translate(translator, items, seeds, FaultPolicy(), None)


class TestOutcomeProtocol:
    def test_serial_defaults_to_one_worker(self):
        executor = SerialExecutor()
        assert executor.workers == 1
        assert executor.name == "serial"

    def test_outcomes_in_particle_order_with_worker_ids(self):
        with ThreadExecutor(workers=3) as executor:
            outcomes = _run_map(executor, 8)
        assert len(outcomes) == 8
        assert all(o.outcome == "ok" for o in outcomes)
        # Contiguous chunks: worker ids are non-decreasing in particle
        # order, and all three chunks ran.
        workers = [o.worker for o in outcomes]
        assert workers == sorted(workers)
        assert set(workers) == {0, 1, 2}

    def test_context_manager_closes_pool(self):
        executor = ThreadExecutor(workers=2)
        with executor:
            _run_map(executor, 4)
        assert executor._pool is None

    def test_process_rejects_unpicklable_translator(self):
        from repro import Correspondence, CorrespondenceTranslator, Model
        from repro.distributions import Flip

        def local_fn(t):  # closure-local: not picklable
            return t.sample(Flip(0.5), "x")

        translator = CorrespondenceTranslator(
            Model(local_fn), Model(local_fn), Correspondence.identity(["x"])
        )
        rng = np.random.default_rng(0)
        items = [translator.source.simulate(rng)]
        seeds = spawn_particle_rngs(rng, 1)
        with ProcessExecutor(workers=1) as executor:
            with pytest.raises(RuntimeError, match="picklable"):
                executor.map_translate(translator, items, seeds, FaultPolicy(), None)

    def test_abstract_base_requires_map_translate(self):
        with pytest.raises(TypeError):
            ParticleExecutor()  # abstract
