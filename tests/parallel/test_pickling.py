"""Tests for the process-executor pickling pre-flight."""

import pickle

import pytest

from repro.core.correspondence import Correspondence
from repro.errors import PicklingError, ReproError, ValidationError
from repro.parallel import ProcessExecutor, find_unpicklable
from repro.parallel.pickling import UnpicklableAttribute


class TestFindUnpicklable:
    def test_picklable_object_returns_none(self):
        assert find_unpicklable({"a": [1, 2, (3, "x")]}) is None
        assert find_unpicklable(Correspondence.identity(["a"])) is None

    def test_lambda_is_its_own_culprit(self):
        culprit = find_unpicklable(lambda: None)
        assert culprit is not None
        assert culprit.path == ""

    def test_descends_to_the_failing_attribute(self):
        corr = Correspondence.identity_by_predicate(lambda a: True)
        culprit = find_unpicklable(corr)
        assert culprit is not None
        # The path names the lambda inside the predicate wrapper, which
        # is exactly what the user has to replace.
        assert "predicate" in culprit.path
        assert "lambda" in culprit.describe(root="correspondence")

    def test_descends_into_containers(self):
        culprit = find_unpicklable({"fine": 1, "broken": lambda: None})
        assert culprit is not None
        assert culprit.path == "['broken']"

    def test_describe_includes_root_name(self):
        culprit = UnpicklableAttribute("a.b", 42, ValueError("nope"))
        assert culprit.describe(root="translator").startswith("translator.a.b")


class _UnpicklableTranslator:
    """Minimal translator shape with a lambda-based correspondence."""

    def __init__(self):
        self.correspondence = Correspondence.identity_by_predicate(lambda a: True)

    def translate(self, rng, item):  # pragma: no cover - preflight rejects first
        raise NotImplementedError


class TestProcessExecutorPreflight:
    def test_lambda_correspondence_raises_structured_error(self):
        executor = ProcessExecutor(workers=1)
        try:
            with pytest.raises(PicklingError) as excinfo:
                executor.map_translate(
                    _UnpicklableTranslator(), [object()], [0], None, None
                )
        finally:
            executor.close()
        error = excinfo.value
        assert error.component == "translator"
        assert "predicate" in error.attribute
        assert "picklable" in str(error)

    def test_pickling_error_is_runtime_and_repro_error(self):
        # Pre-structured call sites catch RuntimeError; the CLI catches
        # ReproError; validation tooling catches ValidationError.
        error = PicklingError("x", component="translator", attribute="a")
        assert isinstance(error, RuntimeError)
        assert isinstance(error, ReproError)
        assert isinstance(error, ValidationError)

    def test_preflight_rejects_before_pool_creation(self):
        executor = ProcessExecutor(workers=1)
        try:
            with pytest.raises(PicklingError):
                executor.map_translate(
                    _UnpicklableTranslator(), [object()], [0], None, None
                )
            # The failure happened before any worker process was forked.
            assert executor._pool is None
        finally:
            executor.close()

    def test_derived_correspondence_survives_the_preflight(self):
        """Derived maps are built from module-level callables, so a
        translator whose correspondence was derived must pass the same
        pre-flight that rejects closure-built maps (seeded, so the
        derivation profiles are reproducible)."""
        import numpy as np

        from repro import Model
        from repro.derive import derive_correspondence
        from repro.distributions import Normal

        def chain(head, name):
            def fn(t):
                value = 0.0
                for i in range(3):
                    value = t.sample(Normal(value, 1.0), (head, i))
                return value

            return Model(fn, name=name)

        derivation = derive_correspondence(
            chain("hidden", "old"), chain("state", "new"),
            rng=np.random.default_rng(1234),
        )
        assert find_unpicklable(derivation.correspondence) is None

        # The closure-capturing spelling of the same map is exactly what
        # the pre-flight exists to reject.
        rename = {("state", i): ("hidden", i) for i in range(3)}
        closure_map = Correspondence(
            lambda a: rename.get(a), lambda a: None, description="closure"
        )
        culprit = find_unpicklable(closure_map)
        assert culprit is not None
        assert "lambda" in repr(culprit.value)

    def test_unpicklable_regenerate_fn_names_component(self):
        executor = ProcessExecutor(workers=1)
        picklable_translator = Correspondence.identity(["a"])
        try:
            with pytest.raises(PicklingError) as excinfo:
                executor.map_translate(
                    picklable_translator, [1], [0], None, lambda rng: (None, 0.0)
                )
        finally:
            executor.close()
        assert excinfo.value.component == "regenerate_fn"
