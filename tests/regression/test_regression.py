"""Tests for the regression substrate (Section 7.2)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro import CorrespondenceTranslator, WeightedCollection, infer
from repro.core.mcmc import chain, cycle, random_walk_mh_site
from repro.distributions import Normal, TwoNormals
from repro.regression import (
    ADDR_INTERCEPT,
    ADDR_OUTLIER_LOG_VAR,
    ADDR_SLOPE,
    NoOutlierModelParams,
    OutlierModelParams,
    addr_y,
    coefficient_correspondence,
    conjugate_posterior,
    exact_regression_trace,
    hospital_like_dataset,
    no_outlier_model,
    outlier_model,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def data(rng):
    return hospital_like_dataset(rng, num_points=80)


@pytest.fixture
def p_params():
    return NoOutlierModelParams(prior_std=10.0, std=0.5)


@pytest.fixture
def q_params():
    return OutlierModelParams(prior_std=10.0, prob_outlier=0.1, inlier_std=0.5)


class TestDataset:
    def test_default_size_is_305(self, rng):
        assert hospital_like_dataset(rng).num_points == 305

    def test_outlier_fraction(self, rng):
        data = hospital_like_dataset(rng, num_points=5000, outlier_fraction=0.1)
        assert data.num_outliers / data.num_points == pytest.approx(0.1, abs=0.02)

    def test_linear_signal_recoverable(self, rng):
        data = hospital_like_dataset(rng, num_points=2000, outlier_fraction=0.0)
        slope, _intercept, _r, _p, _err = stats.linregress(data.xs, data.ys)
        assert slope == pytest.approx(data.true_slope, abs=0.05)

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            hospital_like_dataset(rng, num_points=1)
        with pytest.raises(ValueError):
            hospital_like_dataset(rng, outlier_fraction=1.5)


class TestConjugatePosterior:
    def test_matches_ridge_formula(self, data, p_params):
        posterior = conjugate_posterior(p_params, data.xs, data.ys)
        design = np.column_stack([np.ones_like(data.xs), data.xs])
        precision = design.T @ design / p_params.std**2 + np.eye(2) / p_params.prior_std**2
        expected_mean = np.linalg.solve(precision, design.T @ data.ys / p_params.std**2)
        assert posterior.mean == pytest.approx(expected_mean)

    def test_posterior_concentrates_with_data(self, rng, p_params):
        small = hospital_like_dataset(rng, num_points=10, outlier_fraction=0.0)
        large = hospital_like_dataset(rng, num_points=1000, outlier_fraction=0.0)
        var_small = conjugate_posterior(p_params, small.xs, small.ys).covariance[1, 1]
        var_large = conjugate_posterior(p_params, large.xs, large.ys).covariance[1, 1]
        assert var_large < var_small

    def test_samples_match_moments(self, data, p_params, rng):
        posterior = conjugate_posterior(p_params, data.xs, data.ys)
        draws = np.array([posterior.sample(rng) for _ in range(4000)])
        assert draws.mean(axis=0) == pytest.approx(posterior.mean, abs=0.02)

    def test_exact_trace_is_properly_scored(self, data, p_params, rng):
        posterior = conjugate_posterior(p_params, data.xs, data.ys)
        model = no_outlier_model(p_params, data.xs, data.ys)
        trace = exact_regression_trace(posterior, rng, model)
        slope, intercept = trace[ADDR_SLOPE], trace[ADDR_INTERCEPT]
        expected = Normal(0, 10).log_prob(slope) + Normal(0, 10).log_prob(intercept)
        for i, (x, y) in enumerate(zip(data.xs, data.ys)):
            expected += Normal(intercept + slope * x, p_params.std).log_prob(y)
        assert trace.log_prob == pytest.approx(expected)

    def test_shape_mismatch(self, p_params):
        with pytest.raises(ValueError):
            conjugate_posterior(p_params, [1.0, 2.0], [1.0])


class TestPrograms:
    def test_p_trace_structure(self, data, p_params, rng):
        model = no_outlier_model(p_params, data.xs, data.ys)
        trace = model.simulate(rng)
        assert set(trace.addresses()) == {ADDR_SLOPE, ADDR_INTERCEPT}
        assert len(trace.observation_addresses()) == data.num_points

    def test_q_trace_structure(self, data, q_params, rng):
        model = outlier_model(q_params, data.xs, data.ys)
        trace = model.simulate(rng)
        assert set(trace.addresses()) == {
            ADDR_SLOPE,
            ADDR_INTERCEPT,
            ADDR_OUTLIER_LOG_VAR,
        }

    def test_q_likelihood_is_mixture(self, data, q_params):
        model = outlier_model(q_params, data.xs, data.ys)
        trace = model.score(
            {ADDR_SLOPE: -0.8, ADDR_INTERCEPT: 1.0, ADDR_OUTLIER_LOG_VAR: 2.0}
        )
        observation = trace.get_observation(addr_y(0))
        assert isinstance(observation.dist, TwoNormals)
        assert observation.dist.outlier_std == pytest.approx(math.sqrt(math.exp(2.0)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NoOutlierModelParams(prior_std=-1.0)
        with pytest.raises(ValueError):
            OutlierModelParams(prob_outlier=2.0)


class TestIncrementalRegression:
    """The Section 7.2 experiment in miniature."""

    def test_translation_matches_gold_standard(self, data, p_params, q_params, rng):
        posterior = conjugate_posterior(p_params, data.xs, data.ys)
        p = no_outlier_model(p_params, data.xs, data.ys)
        q = outlier_model(q_params, data.xs, data.ys)
        traces = [exact_regression_trace(posterior, rng, p) for _ in range(1500)]
        translator = CorrespondenceTranslator(p, q, coefficient_correspondence())
        step = infer(translator, WeightedCollection.uniform(traces), rng)
        estimate = step.collection.estimate(lambda u: u[ADDR_SLOPE])

        kernel = cycle(
            [
                random_walk_mh_site(q, ADDR_SLOPE, 0.03),
                random_walk_mh_site(q, ADDR_INTERCEPT, 0.03),
                random_walk_mh_site(q, ADDR_OUTLIER_LOG_VAR, 0.3),
            ]
        )
        initial = q.score(
            {
                ADDR_SLOPE: posterior.slope_mean,
                ADDR_INTERCEPT: posterior.intercept_mean,
                ADDR_OUTLIER_LOG_VAR: q_params.outlier_log_var_mu,
            }
        )
        states = chain(q, kernel, rng, initial=initial, iterations=6000, burn_in=2000)
        gold = np.mean([t[ADDR_SLOPE] for t in states])
        # Pure translation (no rejuvenation) carries importance-sampling
        # noise; the paper reports mean error ~0.03 on its dataset.
        assert estimate == pytest.approx(gold, abs=0.1)

    def test_translation_with_rejuvenation_is_tighter(self, data, p_params, q_params, rng):
        """Resampling plus a random-walk rejuvenation kernel (the optional
        MCMC step of Algorithm 2) sharpens the estimate."""
        posterior = conjugate_posterior(p_params, data.xs, data.ys)
        p = no_outlier_model(p_params, data.xs, data.ys)
        q = outlier_model(q_params, data.xs, data.ys)
        traces = [exact_regression_trace(posterior, rng, p) for _ in range(300)]
        translator = CorrespondenceTranslator(p, q, coefficient_correspondence())
        from repro.core.mcmc import repeat

        kernel = repeat(
            cycle(
                [
                    random_walk_mh_site(q, ADDR_SLOPE, 0.03),
                    random_walk_mh_site(q, ADDR_INTERCEPT, 0.03),
                    random_walk_mh_site(q, ADDR_OUTLIER_LOG_VAR, 0.3),
                ]
            ),
            10,
        )
        step = infer(
            translator,
            WeightedCollection.uniform(traces),
            rng,
            mcmc_kernel=kernel,
            resample="always",
        )
        estimate = step.collection.estimate(lambda u: u[ADDR_SLOPE])

        initial = q.score(
            {
                ADDR_SLOPE: posterior.slope_mean,
                ADDR_INTERCEPT: posterior.intercept_mean,
                ADDR_OUTLIER_LOG_VAR: q_params.outlier_log_var_mu,
            }
        )
        gold_kernel = cycle(
            [
                random_walk_mh_site(q, ADDR_SLOPE, 0.03),
                random_walk_mh_site(q, ADDR_INTERCEPT, 0.03),
                random_walk_mh_site(q, ADDR_OUTLIER_LOG_VAR, 0.3),
            ]
        )
        states = chain(q, gold_kernel, rng, initial=initial, iterations=6000, burn_in=2000)
        gold = np.mean([t[ADDR_SLOPE] for t in states])
        assert estimate == pytest.approx(gold, abs=0.05)

    def test_outlier_log_var_follows_prior_unweighted(self, data, p_params, q_params, rng):
        """The new choice is sampled from its prior by the forward kernel."""
        posterior = conjugate_posterior(p_params, data.xs, data.ys)
        p = no_outlier_model(p_params, data.xs, data.ys)
        q = outlier_model(q_params, data.xs, data.ys)
        translator = CorrespondenceTranslator(p, q, coefficient_correspondence())
        values = []
        for _ in range(600):
            trace = exact_regression_trace(posterior, rng, p)
            values.append(translator.translate(rng, trace).trace[ADDR_OUTLIER_LOG_VAR])
        assert np.mean(values) == pytest.approx(q_params.outlier_log_var_mu, abs=0.15)

    def test_coefficients_are_reused(self, data, p_params, q_params, rng):
        posterior = conjugate_posterior(p_params, data.xs, data.ys)
        p = no_outlier_model(p_params, data.xs, data.ys)
        q = outlier_model(q_params, data.xs, data.ys)
        translator = CorrespondenceTranslator(p, q, coefficient_correspondence())
        trace = exact_regression_trace(posterior, rng, p)
        result = translator.translate(rng, trace)
        assert result.trace[ADDR_SLOPE] == trace[ADDR_SLOPE]
        assert result.trace[ADDR_INTERCEPT] == trace[ADDR_INTERCEPT]
