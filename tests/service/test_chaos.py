"""The chaos drill as a test: kills, stalls, poison — invariants hold."""

import pytest

from repro.testing.chaos import (
    ChaosConfig,
    ChaosMiddleware,
    run_chaos_drill,
    run_process_chaos_drill,
)

pytestmark = pytest.mark.slow


QUICK = ChaosConfig(
    num_sessions=2,
    ops_per_session=4,
    num_particles=10,
    kill_after_ops=(3,),
    slow_every=4,
    slow_seconds=0.2,
    tight_deadline_s=0.05,
    poison_every=5,
    seed=0,
)


class TestChaosMiddleware:
    def test_stall_cadence_is_deterministic(self):
        middleware = ChaosMiddleware(slow_every=3, slow_seconds=0.0)
        pattern = []
        for _ in range(6):
            pattern.append(middleware.will_stall_next())
            middleware("edit", "s", lambda: None)
        assert pattern == [False, False, True, False, False, True]

    def test_disabled_never_stalls(self):
        middleware = ChaosMiddleware(slow_every=0)
        assert not middleware.will_stall_next()


class TestDrill:
    def test_invariants_hold(self, tmp_path):
        report = run_chaos_drill(str(tmp_path / "store"), QUICK)
        # Every committed observation survived every kill, byte-identically.
        assert report["kills"] == 2  # one scripted + the final one
        assert report["recoveries_verified"] == report["kills"]
        assert report["byte_identical_recoveries"] >= report["kills"]
        assert report["acks"] > 0
        assert report["final_ledger"]  # something was actually committed
        # Poison was rejected structurally, and deadlines actually fired.
        assert report["poison_rejections"] > 0
        assert report["deadline_cancellations"] > 0

    def test_drill_is_deterministic(self, tmp_path):
        first = run_chaos_drill(str(tmp_path / "a"), QUICK)
        second = run_chaos_drill(str(tmp_path / "b"), QUICK)
        assert first["final_ledger"] == second["final_ledger"]
        assert first["acks"] == second["acks"]
        assert first["poison_rejections"] == second["poison_rejections"]


class TestProcessDrill:
    def test_shard_process_kill_invariants_hold(self, tmp_path):
        report = run_process_chaos_drill(str(tmp_path / "store"), QUICK)
        # Every kill was a real SIGKILL of the shard owning the next op.
        assert report["process_kills"] == 1
        # The op issued right after each kill acked on the failed-over
        # owner, every session read back its full ledger through the
        # failover window, and no durable byte changed across a kill.
        assert report["failover_acks"] == report["process_kills"]
        assert report["failover_reads"] > 0
        assert report["byte_identical_recoveries"] > 0
        # The supervisor revived the fleet and a cold restart of router
        # + every shard process reproduced the ledger.
        assert report["respawns_observed"] == 1
        assert report["cold_restarts"] == 1
        assert report["poison_rejections"] > 0
        assert report["final_ledger"]
        assert all(count > 0 for count in report["final_ledger"].values())
