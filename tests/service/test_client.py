"""RetryingClient backoff policy — deterministic, no network.

The fake client scripts a sequence of outcomes per call; the retry
wrapper gets a seeded RNG and a recording sleep, so jitter bounds and
retry-after floors are exact assertions, not timing hopes.
"""

import random

import pytest

from repro.errors import (
    BadRequestError,
    OverloadedError,
    QuotaExceededError,
    ServiceUnavailableError,
)
from repro.service import RetryingClient


class ScriptedClient:
    """``call`` pops the next scripted outcome (exception or value)."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def call(self, op, **fields):
        self.calls.append((op, fields))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def edit(self, session, program, **kwargs):
        return self.call("edit", session=session, program=program, **kwargs)


def make(outcomes, **kwargs):
    kwargs.setdefault("rng", random.Random(42))
    sleeps = []
    kwargs.setdefault("sleep", sleeps.append)
    client = RetryingClient(ScriptedClient(outcomes), **kwargs)
    return client, sleeps


class TestRetryLoop:
    def test_immediate_success_never_sleeps(self):
        client, sleeps = make([{"ok": 1}])
        assert client.call("ping") == {"ok": 1}
        assert sleeps == []
        assert client.total_retries == 0

    def test_retries_retryable_until_success(self):
        client, sleeps = make(
            [OverloadedError("full"), OverloadedError("full"), "done"]
        )
        assert client.call("edit", session="s") == "done"
        assert len(sleeps) == 2
        assert client.total_retries == 2

    def test_non_retryable_raises_immediately(self):
        client, sleeps = make([BadRequestError("bad"), "unreachable"])
        with pytest.raises(BadRequestError):
            client.call("edit", session="s")
        assert sleeps == []

    def test_exhaustion_raises_last_error(self):
        client, sleeps = make(
            [OverloadedError(f"full {i}") for i in range(3)], max_attempts=3
        )
        with pytest.raises(OverloadedError, match="full 2"):
            client.call("edit", session="s")
        assert len(sleeps) == 2  # no sleep after the final failure

    def test_quota_errors_are_retried(self):
        client, _ = make(
            [QuotaExceededError("busy", quota="inflight", limit=1), "done"]
        )
        assert client.call("edit", session="s") == "done"

    def test_unavailable_is_retried(self):
        client, _ = make([ServiceUnavailableError("hung up"), "done"])
        assert client.call("ping") == "done"


class TestBackoffPolicy:
    def test_full_jitter_bounds(self):
        client, _ = make([])
        for attempt in range(6):
            for _ in range(50):
                delay = client.backoff_delay(attempt, None)
                assert 0.0 <= delay <= min(
                    client.backoff_cap_s, client.backoff_base_s * 2**attempt
                )

    def test_retry_after_is_a_floor(self):
        client, _ = make([])
        for _ in range(50):
            assert client.backoff_delay(0, 0.75) >= 0.75

    def test_server_hint_floors_the_actual_sleep(self):
        client, sleeps = make(
            [OverloadedError("full", retry_after_s=0.5), "done"]
        )
        client.call("edit", session="s")
        assert sleeps == client.last_delays
        assert sleeps[0] >= 0.5

    def test_deterministic_given_seeded_rng(self):
        first, sleeps_a = make(
            [OverloadedError("full"), OverloadedError("full"), "x"],
            rng=random.Random(7),
        )
        second, sleeps_b = make(
            [OverloadedError("full"), OverloadedError("full"), "x"],
            rng=random.Random(7),
        )
        first.call("edit", session="s")
        second.call("edit", session="s")
        assert sleeps_a == sleeps_b


class TestOpForwarding:
    def test_getattr_wraps_op_methods_with_retry(self):
        scripted = ScriptedClient([OverloadedError("full"), "done"])
        sleeps = []
        client = RetryingClient(
            scripted, rng=random.Random(1), sleep=sleeps.append
        )
        assert client.edit("s", "return x;") == "done"
        assert len(scripted.calls) == 2
        assert scripted.calls[0][0] == "edit"
        assert len(sleeps) == 1

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryingClient(ScriptedClient([]), max_attempts=0)
