"""ServiceConfig validation, deadline clamping, priorities."""

import pytest

from repro.errors import BadRequestError
from repro.service import ServiceConfig


class TestValidation:
    def test_defaults_construct(self):
        config = ServiceConfig()
        assert config.num_shards == 2
        assert config.queue_depth == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_shards": 0},
            {"queue_depth": -1},
            {"max_sessions_per_tenant": -1},
            {"max_inflight_per_tenant": -2},
            {"default_deadline_s": 0.0},
            {"max_deadline_s": -1.0},
            {"default_deadline_s": float("nan")},
            {"default_deadline_s": 60.0, "max_deadline_s": 30.0},
            {"shed_threshold": 0.0},
            {"shed_threshold": 1.5},
            {"expected_step_latency_s": -0.1},
            {"wedged_after_s": 0.0},
            {"checkpoint_keep": 0},
            {"session_capacity": 0},
            {"num_particles": 0},
            {"max_frame_bytes": 0},
        ],
    )
    def test_bad_values_fail_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_store_dir_must_be_string(self):
        with pytest.raises(TypeError, match="store_dir"):
            ServiceConfig(store_dir=123)

    def test_zero_quotas_are_legal_but_lintable(self):
        # Legal (the lint pass flags them) — see test_service_lint.py.
        config = ServiceConfig(
            max_sessions_per_tenant=0, max_inflight_per_tenant=0, queue_depth=0
        )
        assert config.queue_depth == 0

    def test_priority_map_is_copied(self):
        priorities = {"gold": 5}
        config = ServiceConfig(tenant_priorities=priorities)
        priorities["gold"] = 0
        assert config.priority_of("gold") == 5

    def test_replace_revalidates(self):
        config = ServiceConfig()
        assert config.replace(num_shards=4).num_shards == 4
        with pytest.raises(ValueError):
            config.replace(num_shards=0)

    def test_to_dict_is_jsonable(self):
        import json

        json.dumps(ServiceConfig(tenant_priorities={"a": 2}).to_dict())


class TestScaleOutFields:
    def test_defaults_stay_single_process(self):
        config = ServiceConfig()
        assert config.shard_processes == 0
        assert config.replicate is False
        assert config.collection == "object"

    def test_negative_shard_processes_rejected(self):
        with pytest.raises(ValueError, match="shard_processes"):
            ServiceConfig(shard_processes=-1)

    def test_process_mode_forces_lane_count(self):
        # Router lanes mirror the process fleet 1:1.
        config = ServiceConfig(num_shards=7, shard_processes=3)
        assert config.num_shards == 3

    def test_zero_processes_keeps_requested_shards(self):
        assert ServiceConfig(num_shards=7).num_shards == 7

    def test_collection_validated(self):
        assert ServiceConfig(collection="columnar").collection == "columnar"
        with pytest.raises(ValueError, match="collection"):
            ServiceConfig(collection="sparse")

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_start_timeout_must_be_positive(self, bad):
        with pytest.raises(ValueError, match="shard_start_timeout_s"):
            ServiceConfig(shard_start_timeout_s=bad)

    def test_to_dict_round_trips_process_fields(self):
        # The pool serializes the config to JSON for the shard children;
        # a round trip must reproduce the same config.
        config = ServiceConfig(
            shard_processes=2, replicate=True, collection="columnar",
            store_dir="store",
        )
        assert ServiceConfig(**config.to_dict()) == config


class TestClampDeadline:
    def test_absent_uses_default(self):
        assert ServiceConfig(default_deadline_s=7.0).clamp_deadline(None) == 7.0

    def test_ceiling_applied(self):
        config = ServiceConfig(default_deadline_s=5.0, max_deadline_s=10.0)
        assert config.clamp_deadline(3.0) == 3.0
        assert config.clamp_deadline(99.0) == 10.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_nonpositive_is_bad_request(self, bad):
        with pytest.raises(BadRequestError, match="deadline_s"):
            ServiceConfig().clamp_deadline(bad)


class TestPriorities:
    def test_priority_of_falls_back_to_default(self):
        config = ServiceConfig(
            tenant_priorities={"gold": 3}, default_priority=1
        )
        assert config.priority_of("gold") == 3
        assert config.priority_of("anonymous") == 1
