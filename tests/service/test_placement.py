"""Unit tests for rendezvous-hashed session placement."""

import pytest

from repro.service import PlacementMap, placement_score


class TestScore:
    def test_deterministic_across_instances(self):
        assert placement_score(3, "session-a") == placement_score(3, "session-a")

    def test_depends_on_both_member_and_key(self):
        assert placement_score(0, "s") != placement_score(1, "s")
        assert placement_score(0, "s") != placement_score(0, "t")


class TestMembership:
    def test_needs_at_least_one_member(self):
        with pytest.raises(ValueError, match="at least one member"):
            PlacementMap([])

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PlacementMap([0, 1, 1])

    def test_unknown_member_death_is_key_error(self):
        with pytest.raises(KeyError):
            PlacementMap([0, 1]).on_death(7)

    def test_last_death_raises(self):
        placement = PlacementMap([0])
        with pytest.raises(RuntimeError, match="no live members"):
            placement.on_death(0)


class TestPlacement:
    def test_place_is_sticky(self):
        placement = PlacementMap(range(4))
        owner = placement.place("session-a")
        for _ in range(10):
            assert placement.place("session-a") == owner

    def test_first_placement_is_rendezvous_home(self):
        placement = PlacementMap(range(4))
        assert placement.place("session-a") == placement.home("session-a")

    def test_keys_spread_over_members(self):
        placement = PlacementMap(range(4))
        owners = {placement.place(f"session-{i}") for i in range(64)}
        assert owners == {0, 1, 2, 3}

    def test_replica_differs_from_home(self):
        placement = PlacementMap(range(4))
        for i in range(16):
            key = f"session-{i}"
            assert placement.replica(key) != placement.home(key)

    def test_single_member_has_no_replica(self):
        assert PlacementMap([0]).replica("s") is None

    def test_forget_drops_assignment(self):
        placement = PlacementMap(range(2))
        placement.place("s")
        placement.forget("s")
        assert placement.current("s") is None
        assert placement.assignments() == {}


class TestFailover:
    def test_death_moves_keys_to_their_replica(self):
        placement = PlacementMap(range(4))
        keys = [f"session-{i}" for i in range(32)]
        replicas = {}
        for key in keys:
            placement.place(key)
            replicas[key] = placement.replica(key)
        victim = placement.place(keys[0])
        moved = placement.on_death(victim)
        assert moved  # the victim owned at least keys[0]
        for key, old, new in moved:
            assert old == victim
            # Rendezvous guarantees the new owner IS the former replica.
            assert new == replicas[key]
            assert placement.current(key) == new

    def test_death_only_moves_the_victims_keys(self):
        placement = PlacementMap(range(4))
        keys = [f"session-{i}" for i in range(32)]
        before = {key: placement.place(key) for key in keys}
        victim = before[keys[0]]
        placement.on_death(victim)
        for key, owner in before.items():
            if owner != victim:
                assert placement.current(key) == owner

    def test_place_heals_a_dead_sticky_owner(self):
        placement = PlacementMap(range(2))
        owner = placement.place("s")
        placement._alive[owner] = False  # simulate death without the sweep
        healed = placement.place("s")
        assert healed != owner
        assert placement.is_alive(healed)

    def test_join_does_not_move_keys(self):
        placement = PlacementMap(range(4))
        keys = [f"session-{i}" for i in range(32)]
        for key in keys:
            placement.place(key)
        victim = placement.place(keys[0])
        placement.on_death(victim)
        after_death = placement.assignments()
        placement.on_join(victim)
        assert placement.assignments() == after_death
        assert victim in placement.alive_members()

    def test_rebalance_returns_displaced_keys_home(self):
        placement = PlacementMap(range(4))
        keys = [f"session-{i}" for i in range(32)]
        homes = {key: placement.place(key) for key in keys}
        victim = homes[keys[0]]
        placement.on_death(victim)
        placement.on_join(victim)
        assert placement.displaced()  # failover left keys off-home
        moved = {key: new for key, _old, new in placement.rebalance()}
        assert placement.displaced() == []
        for key, new in moved.items():
            assert new == homes[key]

    def test_moves_counter_tracks_every_assignment_change(self):
        placement = PlacementMap(range(2))
        for i in range(8):
            placement.place(f"session-{i}")
        assert placement.moves == 0  # first placements are not moves
        victim = placement.place("session-0")
        moved = placement.on_death(victim)
        assert placement.moves == len(moved)
