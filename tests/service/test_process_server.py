"""End-to-end tests for process mode: router + real shard processes.

These spawn actual ``python -m repro.service.shard`` subprocesses, so
they are marked slow; the logic-level coverage lives in
``test_shard.py`` (in-process shard server) and ``test_placement.py``.
"""

import random
import time

import pytest

from repro.errors import SchemaVersionError, ServiceError
from repro.service import ServiceConfig, ShardProcessPool
from repro.service.client import RetryingClient, ServiceClient
from repro.service.server import ServiceHandle

pytestmark = pytest.mark.slow

PROGRAM = "x = gauss(0.0, 1.0);\nreturn x;"
OBSERVE = "observe(gauss(x, 1.0) == 0.5);"


def _config(tmp_path, **kwargs):
    kwargs.setdefault("shard_processes", 2)
    kwargs.setdefault("replicate", True)
    kwargs.setdefault("num_particles", 10)
    kwargs.setdefault("store_dir", str(tmp_path / "store"))
    return ServiceConfig(**kwargs)


def _client(handle, **kwargs):
    kwargs.setdefault("max_attempts", 8)
    kwargs.setdefault("backoff_cap_s", 0.5)
    kwargs.setdefault("rng", random.Random(0))
    return RetryingClient(ServiceClient(*handle.address, tenant="t"), **kwargs)


def _await_alive(client, expected, timeout_s=15.0):
    waited = 0.0
    while waited < timeout_s:
        alive = client.stats()["process_mode"]["alive_members"]
        if alive == expected:
            return
        time.sleep(0.1)
        waited += 0.1
    raise AssertionError(f"members never reached {expected}")


class TestProcessMode:
    def test_lifecycle_and_stats(self, tmp_path):
        handle = ServiceHandle.start(_config(tmp_path))
        client = _client(handle)
        try:
            for i in range(4):
                created = client.create(f"s{i}", PROGRAM, seed=i)
                assert created["session"] == f"s{i}"
            observed = client.observe("s0", OBSERVE)
            assert observed["num_edits"] == 1
            posterior = client.posterior("s0")
            assert posterior["num_edits"] == 1

            stats = client.stats()
            process = stats["process_mode"]
            assert process["shard_processes"] == 2
            assert process["replicate"] is True
            assert process["alive_members"] == [0, 1]
            assert process["assignments"] == 4
            assert len(process["pids"]) == 2

            closed = client.close_session("s0")
            assert closed["num_edits"] == 1
            assert client.stats()["process_mode"]["assignments"] == 3
        finally:
            client.client.close()
            handle.stop()

    def test_sigkill_fails_over_without_losing_acks(self, tmp_path):
        handle = ServiceHandle.start(_config(tmp_path))
        client = _client(handle)
        try:
            edits = {}
            for i in range(4):
                client.create(f"s{i}", PROGRAM, seed=i)
                client.observe(f"s{i}", OBSERVE)
                edits[f"s{i}"] = 1

            victim = handle.service._placement.assignments()["s0"]
            handle.service._pool.kill(victim)

            # Acked mutations survive: the retrying client lands on the
            # replica, which recovers the session lazily from the store.
            observed = client.observe("s0", OBSERVE)
            edits["s0"] += 1
            assert observed["num_edits"] == edits["s0"]
            for sid, expect in edits.items():
                assert client.posterior(sid)["num_edits"] == expect

            # The supervisor respawns the killed member.
            _await_alive(client, [0, 1])
        finally:
            client.client.close()
            handle.stop()

    def test_all_members_down_is_retryable_unavailable(self, tmp_path):
        handle = ServiceHandle.start(_config(tmp_path))
        client = _client(handle, max_attempts=1)
        try:
            client.create("s0", PROGRAM, seed=0)
            # Stop the supervisor first so nothing revives the fleet,
            # then kill every member.
            handle.service._supervisor_stop.set()
            handle.service._supervisor.join(timeout=5.0)
            for member in (0, 1):
                handle.service._pool.kill(member)
            deadline = time.monotonic() + 10.0
            while True:
                try:
                    client.client.observe("s0", OBSERVE)
                except ServiceError as error:
                    assert error.retryable
                    if "shard processes are down" in str(error):
                        break
                assert time.monotonic() < deadline, (
                    "router never reported the whole fleet down"
                )
        finally:
            client.client.close()
            handle.stop()

    def test_columnar_process_service_matches_object(self, tmp_path):
        # Satellite check at full depth: the same served workload through
        # object-mode and columnar-mode process fleets commits identical
        # results (structured-language programs spill before any RNG use).
        results = {}
        for mode in ("object", "columnar"):
            handle = ServiceHandle.start(
                _config(tmp_path / mode, collection=mode, replicate=False)
            )
            client = _client(handle)
            try:
                client.create("s0", PROGRAM, seed=3)
                client.observe("s0", OBSERVE)
                results[mode] = client.posterior("s0", top=5)
            finally:
                client.client.close()
                handle.stop()
        assert results["object"] == results["columnar"]


class TestPoolNegotiation:
    def test_old_shard_build_fails_pool_startup(self, tmp_path):
        pool = ShardProcessPool(
            _config(tmp_path, shard_processes=1, replicate=False),
            wire_schema=0,
        )
        with pytest.raises(SchemaVersionError, match="wire schema"):
            pool.start()
        # start() cleaned up after itself: no orphan processes.
        assert pool.poll_dead() == [0]

    def test_pool_respawn_changes_pid(self, tmp_path):
        pool = ShardProcessPool(
            _config(tmp_path, shard_processes=1, replicate=False)
        )
        try:
            pool.start()
            first_pid = pool.pids()[0]
            pool.kill(0)
            assert pool.poll_dead() == [0]
            pool.respawn(0)
            assert pool.is_alive(0)
            assert pool.pids()[0] != first_pid
        finally:
            pool.stop_all()
