"""End-to-end server tests over a real socket.

Every test starts a real :class:`InferenceService` (via
:class:`ServiceHandle` on an ephemeral port) and drives it with the
blocking client.  Stall points are injected through
``translator_middleware`` — a threading.Event the test controls — so
queue-full, shedding, wedged, and deadline scenarios are deterministic
rather than timing hopes.
"""

import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    BadRequestError,
    DeadlineExceededError,
    OverloadedError,
    QuotaExceededError,
    ServiceUnavailableError,
)
from repro.service import ServiceClient, ServiceConfig, ServiceHandle
from repro.service.wire import frame_bytes
from repro.store.codec import loads

PROGRAM = "x = gauss(0.0, 2.0);\nreturn x;"
OBSERVE = "observe(gauss(x, 1.0) == 0.5);"
NUM_PARTICLES = 15


def _config(tmp_path, **kwargs):
    kwargs.setdefault("store_dir", str(tmp_path / "store"))
    kwargs.setdefault("num_shards", 1)
    kwargs.setdefault("num_particles", NUM_PARTICLES)
    return ServiceConfig(**kwargs)


class StallMiddleware:
    """Blocks every translation until the test releases it."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.release.set()  # transparent until the test arms a stall

    def arm(self):
        self.entered.clear()
        self.release.clear()

    def __call__(self, op, session_id, apply):
        self.entered.set()
        self.release.wait(timeout=30)
        return apply()


@pytest.fixture
def handle(tmp_path):
    started = ServiceHandle.start(_config(tmp_path))
    yield started
    started.stop()


@pytest.fixture
def client(handle):
    with ServiceClient(*handle.address, tenant="alice") as connected:
        yield connected


class TestLifecycle:
    def test_create_observe_edit_posterior_close(self, client):
        created = client.create("s1", PROGRAM, seed=1)
        assert created["num_particles"] == NUM_PARTICLES
        assert created["num_edits"] == 0

        observed = client.observe("s1", OBSERVE)
        assert observed["num_edits"] == 1

        edited = client.edit(
            "s1", "x = gauss(0.5, 2.0);\nreturn x;"
        )
        assert edited["num_edits"] == 2

        posterior = client.posterior("s1", top=5)
        assert posterior["degraded"] is False
        assert posterior["num_edits"] == 2
        assert posterior["values"]

        closed = client.close_session("s1")
        assert closed["session"] == "s1"
        with pytest.raises(BadRequestError, match="unknown session"):
            client.posterior("s1")

    def test_ping_and_stats(self, client):
        assert client.ping()["pong"] is True
        client.create("s1", PROGRAM, seed=1)
        stats = client.stats()
        assert stats["sessions"] == ["s1"]
        assert stats["closing"] is False
        assert len(stats["shards"]) == 1
        assert stats["metrics"]["service.requests.create"]["value"] == 1

    def test_seeded_creates_are_deterministic(self, handle, client):
        client.create("a1", PROGRAM, seed=9)
        client.create("a2", PROGRAM, seed=9)
        one = client.posterior("a1")
        two = client.posterior("a2")
        assert one["values"] == two["values"]


class TestValidation:
    def test_unknown_op(self, client):
        with pytest.raises(BadRequestError, match="unknown op"):
            client.call("transmogrify")

    def test_missing_tenant(self, handle):
        with ServiceClient(*handle.address, tenant="") as anonymous:
            with pytest.raises(BadRequestError, match="tenant"):
                anonymous.create("s1", PROGRAM)

    def test_path_traversal_session_id_rejected(self, client):
        with pytest.raises(BadRequestError, match="invalid session id"):
            client.create("../evil", PROGRAM)

    def test_unparseable_program_rejected(self, client):
        with pytest.raises(BadRequestError, match="parse"):
            client.create("s1", "this is ! not a program (")

    def test_bad_deadline_rejected(self, client):
        with pytest.raises(BadRequestError, match="deadline"):
            client.create("s1", PROGRAM, deadline_s=-3.0)

    def test_tenant_isolation(self, handle, client):
        client.create("s1", PROGRAM, seed=1)
        with ServiceClient(*handle.address, tenant="mallory") as intruder:
            with pytest.raises(BadRequestError, match="another tenant"):
                intruder.edit("s1", PROGRAM)
            with pytest.raises(BadRequestError, match="another tenant"):
                intruder.posterior("s1")

    def test_poison_frame_answered_then_disconnected(self, handle):
        sock = socket.create_connection(handle.address, timeout=10)
        try:
            body = b"complete garbage, not a codec document"
            sock.sendall(struct.pack(">I", len(body)) + body)
            prefix = sock.recv(4)
            (length,) = struct.unpack(">I", prefix)
            payload = b""
            while len(payload) < length:
                payload += sock.recv(length - len(payload))
            response = loads(payload)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            # The server hangs up after answering: EOF, not a hang.
            assert sock.recv(1) == b""
        finally:
            sock.close()

    def test_request_id_echoed(self, handle):
        sock = socket.create_connection(handle.address, timeout=10)
        try:
            sock.sendall(frame_bytes({"op": "ping", "request_id": "r-42"}))
            prefix = sock.recv(4)
            (length,) = struct.unpack(">I", prefix)
            payload = b""
            while len(payload) < length:
                payload += sock.recv(length - len(payload))
            response = loads(payload)
            assert response["ok"] is True
            assert response["request_id"] == "r-42"
        finally:
            sock.close()


class TestQuotas:
    def test_session_quota(self, tmp_path):
        handle = ServiceHandle.start(
            _config(tmp_path, max_sessions_per_tenant=1)
        )
        try:
            with ServiceClient(*handle.address, tenant="alice") as client:
                client.create("s1", PROGRAM, seed=1)
                with pytest.raises(QuotaExceededError) as info:
                    client.create("s2", PROGRAM, seed=1)
                assert info.value.quota == "sessions"
                assert info.value.limit == 1
                assert info.value.retryable is True
                # Closing the session frees the quota.
                client.close_session("s1")
                client.create("s2", PROGRAM, seed=1)
        finally:
            handle.stop()

    def test_quota_is_per_tenant(self, tmp_path):
        handle = ServiceHandle.start(
            _config(tmp_path, max_sessions_per_tenant=1)
        )
        try:
            with ServiceClient(*handle.address, tenant="alice") as alice:
                alice.create("a1", PROGRAM, seed=1)
            with ServiceClient(*handle.address, tenant="bob") as bob:
                bob.create("b1", PROGRAM, seed=1)  # unaffected by alice's
        finally:
            handle.stop()

    def test_zero_inflight_quota_rejects_mutations(self, tmp_path):
        handle = ServiceHandle.start(
            _config(tmp_path, max_inflight_per_tenant=0)
        )
        try:
            with ServiceClient(*handle.address, tenant="alice") as client:
                assert client.ping()["pong"] is True
                with pytest.raises(QuotaExceededError) as info:
                    client.create("s1", PROGRAM)
                assert info.value.quota == "inflight"
        finally:
            handle.stop()


class TestBackpressureAndDegradation:
    def _start_stalled_edit(self, handle, middleware, session, tenant="alice"):
        """Occupy the single shard worker with a stalled edit."""
        middleware.arm()
        errors = []

        def run():
            try:
                with ServiceClient(*handle.address, tenant=tenant) as client:
                    client.edit(session, "x = gauss(1.0, 2.0);\nreturn x;")
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        thread = threading.Thread(target=run)
        thread.start()
        assert middleware.entered.wait(timeout=30)
        return thread, errors

    def test_queue_full_rejects_with_retry_after(self, tmp_path):
        middleware = StallMiddleware()
        handle = ServiceHandle.start(
            _config(tmp_path, queue_depth=1, max_inflight_per_tenant=8,
                    shed_threshold=1.0),
            translator_middleware=middleware,
        )
        try:
            with ServiceClient(*handle.address, tenant="alice") as client:
                client.create("s1", PROGRAM, seed=1)
            thread, errors = self._start_stalled_edit(handle, middleware, "s1")
            try:
                # Fill the depth-1 queue, then overflow it.
                filler_started = threading.Event()
                filler_errors = []

                def filler():
                    try:
                        with ServiceClient(
                            *handle.address, tenant="alice"
                        ) as client:
                            filler_started.set()
                            client.observe("s1", OBSERVE)
                    except Exception as error:  # pragma: no cover
                        filler_errors.append(error)

                filler_thread = threading.Thread(target=filler)
                filler_thread.start()
                assert filler_started.wait(timeout=10)
                deadline = time.monotonic() + 10
                with ServiceClient(*handle.address, tenant="alice") as client:
                    while client.stats()["shards"][0]["queue_depth"] < 1:
                        assert time.monotonic() < deadline
                        time.sleep(0.01)
                    with pytest.raises(OverloadedError) as info:
                        client.observe("s1", OBSERVE)
                assert "full" in str(info.value)
                assert info.value.retryable is True
                assert info.value.retry_after_s > 0
            finally:
                middleware.release.set()
                thread.join(timeout=30)
                filler_thread.join(timeout=30)
            assert not errors and not filler_errors
        finally:
            handle.stop()

    def test_shedding_protects_priority_tenants(self, tmp_path):
        middleware = StallMiddleware()
        handle = ServiceHandle.start(
            _config(
                tmp_path,
                queue_depth=4,
                shed_threshold=0.25,
                tenant_priorities={"gold": 5},
                shed_protect_priority=2,
                max_inflight_per_tenant=8,
            ),
            translator_middleware=middleware,
        )
        try:
            with ServiceClient(*handle.address, tenant="alice") as alice:
                alice.create("s1", PROGRAM, seed=1)
            with ServiceClient(*handle.address, tenant="gold") as gold:
                gold.create("g1", PROGRAM, seed=1)

            thread, errors = self._start_stalled_edit(handle, middleware, "s1")
            filler_thread = None
            try:
                # Queue one more edit so occupancy hits 1/4 >= 25%.
                filler_started = threading.Event()
                filler_errors = []

                def filler():
                    try:
                        with ServiceClient(
                            *handle.address, tenant="gold"
                        ) as client:
                            filler_started.set()
                            client.observe("g1", OBSERVE)
                    except Exception as error:  # pragma: no cover
                        filler_errors.append(error)

                filler_thread = threading.Thread(target=filler)
                filler_thread.start()
                assert filler_started.wait(timeout=10)
                deadline = time.monotonic() + 10
                with ServiceClient(*handle.address, tenant="alice") as client:
                    while client.stats()["shards"][0]["queue_depth"] < 1:
                        assert time.monotonic() < deadline
                        time.sleep(0.01)
                    # Low-priority tenant is shed...
                    with pytest.raises(OverloadedError, match="shedding"):
                        client.observe("s1", OBSERVE)
                    shed = client.stats()["metrics"][
                        "service.rejections.shed"
                    ]["value"]
                    assert shed == 1
            finally:
                middleware.release.set()
                thread.join(timeout=30)
                if filler_thread is not None:
                    filler_thread.join(timeout=30)
            # ...while the protected tenant's queued op succeeded.
            assert not errors and not filler_errors
        finally:
            handle.stop()

    def test_wedged_shard_serves_degraded_posterior(self, tmp_path):
        middleware = StallMiddleware()
        handle = ServiceHandle.start(
            _config(tmp_path, wedged_after_s=0.1, max_inflight_per_tenant=8),
            translator_middleware=middleware,
        )
        try:
            with ServiceClient(*handle.address, tenant="alice") as client:
                client.create("s1", PROGRAM, seed=1)
                client.observe("s1", OBSERVE)
            thread, errors = self._start_stalled_edit(handle, middleware, "s1")
            try:
                time.sleep(0.15)  # let the stall cross wedged_after_s
                with ServiceClient(*handle.address, tenant="alice") as client:
                    posterior = client.posterior("s1")
                assert posterior["degraded"] is True
                # Served from the last commit: the stalled edit (#2) is
                # not visible, the acked observe (#1) is.
                assert posterior["num_edits"] == 1
            finally:
                middleware.release.set()
                thread.join(timeout=30)
            assert not errors
        finally:
            handle.stop()


class TestDeadlines:
    def test_queued_deadline_expires_before_execution(self, tmp_path):
        middleware = StallMiddleware()
        handle = ServiceHandle.start(
            _config(tmp_path, max_inflight_per_tenant=8),
            translator_middleware=middleware,
        )
        try:
            with ServiceClient(*handle.address, tenant="alice") as client:
                client.create("s1", PROGRAM, seed=1)

            middleware.arm()
            errors = []

            def stalled():
                try:
                    with ServiceClient(*handle.address, tenant="alice") as c:
                        c.edit("s1", "x = gauss(1.0, 2.0);\nreturn x;")
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            thread = threading.Thread(target=stalled)
            thread.start()
            assert middleware.entered.wait(timeout=30)
            # Queued behind the stall with a deadline shorter than it.
            with ServiceClient(*handle.address, tenant="alice") as client:
                started = threading.Timer(0.3, middleware.release.set)
                started.start()
                with pytest.raises(DeadlineExceededError):
                    client.observe("s1", OBSERVE, deadline_s=0.05)
            thread.join(timeout=30)
            assert not errors

            # The session is uncorrupted: the stalled edit landed, the
            # timed-out observe did not.
            with ServiceClient(*handle.address, tenant="alice") as client:
                posterior = client.posterior("s1")
                assert posterior["num_edits"] == 1
                # And it still accepts work.
                assert client.observe("s1", OBSERVE)["num_edits"] == 2
        finally:
            handle.stop()

    def test_mid_translation_deadline_rolls_back(self, tmp_path):
        # The stall happens *inside* the worker (between dequeue and
        # translation), so DeadlineHooks fires on the first particle.
        middleware = StallMiddleware()
        handle = ServiceHandle.start(
            _config(tmp_path, max_inflight_per_tenant=8),
            translator_middleware=middleware,
        )
        try:
            with ServiceClient(*handle.address, tenant="alice") as client:
                client.create("s1", PROGRAM, seed=1)
                middleware.arm()
                threading.Timer(0.3, middleware.release.set).start()
                with pytest.raises(DeadlineExceededError):
                    client.edit(
                        "s1", "x = gauss(1.0, 2.0);\nreturn x;",
                        deadline_s=0.05,
                    )
                posterior = client.posterior("s1")
                assert posterior["num_edits"] == 0
                assert posterior["degraded"] is False
                # No corruption: the same edit succeeds without the stall.
                done = client.edit("s1", "x = gauss(1.0, 2.0);\nreturn x;")
                assert done["num_edits"] == 1
        finally:
            handle.stop()


class TestShutdown:
    def test_stop_answers_unavailable_then_refuses(self, tmp_path):
        handle = ServiceHandle.start(_config(tmp_path))
        with ServiceClient(*handle.address, tenant="alice") as client:
            client.create("s1", PROGRAM, seed=1)
        handle.stop()
        with pytest.raises((ServiceUnavailableError, OSError)):
            with ServiceClient(*handle.address, tenant="alice") as client:
                client.ping()

    def test_kill_then_restart_recovers_sessions(self, tmp_path):
        config = _config(tmp_path)
        handle = ServiceHandle.start(config)
        with ServiceClient(*handle.address, tenant="alice") as client:
            client.create("s1", PROGRAM, seed=1)
            client.observe("s1", OBSERVE)
            before = client.posterior("s1", top=5)
        handle.kill()

        handle = ServiceHandle.start(config)
        try:
            assert handle.service.recovered_sessions == ["s1"]
            with ServiceClient(*handle.address, tenant="alice") as client:
                after = client.posterior("s1", top=5)
            assert after["num_edits"] == before["num_edits"]
            assert after["values"] == before["values"]
        finally:
            handle.stop()
