"""In-process tests for the shard worker server and its router link.

A :class:`ShardServer` is just an asyncio server; running it on a
private event-loop thread exercises the whole forwarded-op surface —
lazy recovery, replicate/release, deadlines, and the hello version
negotiation — without paying for subprocess spawns (the real-process
drills live in ``test_process_server.py``).
"""

import asyncio
import threading

import pytest

from repro.errors import (
    BadRequestError,
    DeadlineExceededError,
    SchemaVersionError,
)
from repro.service import ServiceConfig, ShardLink, ShardServer, WIRE_SCHEMA
from repro.service.client import ServiceClient

PROGRAM = "x = gauss(0.0, 1.0);\nreturn x;"


class ShardHarness:
    """One ShardServer on its own event-loop thread."""

    def __init__(self, config: ServiceConfig, **kwargs):
        self.server = ShardServer(config, **kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        self.serve_future = asyncio.run_coroutine_threadsafe(
            self.server.serve(), self.loop
        )
        ready = asyncio.run_coroutine_threadsafe(
            self.server.started.wait(), self.loop
        )
        ready.result(timeout=10.0)

    @property
    def address(self):
        return (self.server.host, self.server.port)

    def link(self, **kwargs) -> ShardLink:
        return ShardLink(self.server.shard_id, lambda: self.address, **kwargs)

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(
            timeout=10.0
        )

        def shutdown() -> None:
            for task in asyncio.all_tasks(self.loop):
                task.cancel()
            self.loop.call_soon(self.loop.stop)

        self.loop.call_soon_threadsafe(shutdown)
        self.thread.join(timeout=10.0)
        self.loop.close()


@pytest.fixture
def harness(tmp_path):
    h = ShardHarness(ServiceConfig(store_dir=str(tmp_path / "store")))
    yield h
    h.stop()


def _create(link, session="s0", tenant="t", particles=10):
    return link.call({
        "op": "create", "session": session, "tenant": tenant,
        "program": PROGRAM, "num_particles": particles, "seed": 7,
    })


class TestShardOps:
    def test_create_observe_posterior_close(self, harness):
        link = harness.link()
        created = _create(link)
        assert created["session"] == "s0"
        observed = link.call({
            "op": "observe", "session": "s0", "tenant": "t",
            "statement": "observe(gauss(x, 1.0) == 0.5);",
        })
        assert observed["num_edits"] == 1
        posterior = link.call({
            "op": "posterior", "session": "s0", "tenant": "t",
        })
        assert posterior["num_edits"] == 1
        closed = link.call({"op": "close", "session": "s0", "tenant": "t"})
        assert closed == {"session": "s0", "num_edits": 1, "tenant": "t"}
        with pytest.raises(BadRequestError, match="unknown session"):
            link.call({"op": "posterior", "session": "s0", "tenant": "t"})
        link.close()

    def test_hello_reports_schema_and_pid(self, harness):
        link = harness.link()
        link.connect()
        assert link.peer_schema == WIRE_SCHEMA
        link.close()

    def test_unknown_session_is_rejected(self, harness):
        # SessionError crosses the wire as a structured bad_request.
        link = harness.link()
        with pytest.raises(BadRequestError, match="unknown session"):
            link.call({"op": "posterior", "session": "ghost", "tenant": "t"})
        link.close()

    def test_router_only_op_rejected(self, harness):
        # 'stats' is a shard op; something the wire never defines is not.
        link = harness.link()
        with pytest.raises(BadRequestError, match="unknown op"):
            link.call({"op": "loadgen", "session": "s0", "tenant": "t"})
        link.close()

    def test_deadline_enforced_in_shard(self, harness):
        link = harness.link()
        _create(link)
        with pytest.raises(DeadlineExceededError):
            link.call({
                "op": "observe", "session": "s0", "tenant": "t",
                "statement": "observe(gauss(x, 1.0) == 0.5);",
                "deadline_s": 1e-9,
            })
        # The cancelled request rolled back: still zero edits.
        posterior = link.call({"op": "posterior", "session": "s0", "tenant": "t"})
        assert posterior["num_edits"] == 0
        link.close()

    def test_tenant_ownership_enforced(self, harness):
        link = harness.link()
        _create(link, tenant="alice")
        with pytest.raises(BadRequestError):
            link.call({"op": "posterior", "session": "s0", "tenant": "mallory"})
        link.close()


class TestLazyRecoveryAndReplication:
    def test_second_shard_recovers_lazily_from_shared_store(self, tmp_path):
        config = ServiceConfig(store_dir=str(tmp_path / "store"))
        first = ShardHarness(config, shard_id=0)
        try:
            link = first.link()
            _create(link)
            link.call({
                "op": "observe", "session": "s0", "tenant": "t",
                "statement": "observe(gauss(x, 1.0) == 0.5);",
            })
            link.close()
        finally:
            first.stop()
        # A different shard process over the same store: the first op it
        # sees for the session replays the newest commit snapshot.
        second = ShardHarness(config, shard_id=1)
        try:
            link = second.link()
            posterior = link.call({
                "op": "posterior", "session": "s0", "tenant": "t",
            })
            assert posterior["num_edits"] == 1
            link.close()
        finally:
            second.stop()

    def test_replicate_warms_and_release_drops(self, harness):
        link = harness.link()
        _create(link)
        warmed = link.call({"op": "replicate", "session": "s0"})
        assert warmed["replicated"] is True
        released = link.call({"op": "release", "session": "s0"})
        assert released["released"] is True
        # Releasing what is not held is a no-op, not an error.
        again = link.call({"op": "release", "session": "s0"})
        assert again["released"] is False
        # The durable state is untouched: the next op recovers it.
        posterior = link.call({"op": "posterior", "session": "s0", "tenant": "t"})
        assert posterior["num_edits"] == 0
        link.close()

    def test_replicate_unknown_session_reports_not_replicated(self, harness):
        link = harness.link()
        result = link.call({"op": "replicate", "session": "ghost"})
        assert result["replicated"] is False
        link.close()


class TestVersionNegotiation:
    def test_old_shard_refuses_newer_router(self, tmp_path):
        # A shard built against schema 0 must refuse this router's hello.
        old = ShardHarness(
            ServiceConfig(store_dir=str(tmp_path / "store")), wire_schema=0
        )
        try:
            link = old.link()
            with pytest.raises(SchemaVersionError) as excinfo:
                link.connect()
            assert excinfo.value.found == WIRE_SCHEMA
            assert excinfo.value.supported == 0
        finally:
            old.stop()

    def test_refusal_is_a_structured_wire_error(self, tmp_path):
        # Off-link view: the refusal crosses the wire as a typed error
        # document, not a hangup.
        old = ShardHarness(
            ServiceConfig(store_dir=str(tmp_path / "store")), wire_schema=0
        )
        try:
            client = ServiceClient(*old.address)
            with pytest.raises(SchemaVersionError, match="wire schema"):
                client.call_raw({"op": "hello", "wire_schema": WIRE_SCHEMA})
            client.close()
        finally:
            old.stop()

    def test_older_router_is_accepted(self, harness):
        # Schemas only add fields: a router announcing an older schema
        # gets served, with the shard echoing its own (newer) version.
        client = ServiceClient(*harness.address)
        info = client.call_raw({"op": "hello", "wire_schema": 0})
        assert info["wire_schema"] == WIRE_SCHEMA
        client.close()

    def test_shard_refuses_non_shard_traffic_gracefully(self, harness):
        client = ServiceClient(*harness.address)
        with pytest.raises(BadRequestError):
            client.call_raw({"op": "hello!", "wire_schema": WIRE_SCHEMA})
        client.close()
