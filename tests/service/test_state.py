"""DurableSessionStore: splice, histogram, commits, destructive close."""

import numpy as np
import pytest

from repro.errors import BadRequestError, SessionError
from repro.service import ServiceConfig
from repro.service.state import (
    DurableSessionStore,
    insert_observation,
    value_histogram,
)

PROGRAM = "x = gauss(0.0, 2.0);\nreturn x;"
NUM_PARTICLES = 20


@pytest.fixture
def store(tmp_path):
    return DurableSessionStore(
        ServiceConfig(store_dir=str(tmp_path), num_particles=NUM_PARTICLES)
    )


class TestInsertObservation:
    def test_splices_before_last_return(self):
        edited = insert_observation(PROGRAM, "observe(gauss(x, 1.0) == 0.5);")
        lines = [line for line in edited.splitlines() if line]
        assert lines[-1].startswith("return")
        assert "observe" in lines[-2]

    def test_appends_when_no_return(self):
        edited = insert_observation("x = flip(0.5);", "observe(x == true)")
        assert edited.rstrip().endswith("observe(x == true);")

    def test_adds_missing_semicolon(self):
        edited = insert_observation(PROGRAM, "observe(gauss(x, 1.0) == 0.5)")
        assert "== 0.5);" in edited

    def test_empty_statement_is_bad_request(self):
        with pytest.raises(BadRequestError, match="non-empty"):
            insert_observation(PROGRAM, "   ")

    def test_targets_last_return(self):
        source = "x = flip(0.5);\nif (x) { return 1; } else { return 0; }"
        edited = insert_observation(source, "observe(x == true);")
        # Spliced before the *last* return keyword, not the first.
        assert edited.index("observe") > edited.index("return")


class TestValueHistogram:
    def test_masses_sum_to_one_and_rank(self, store):
        result = store.create_session(
            "h", "s1", PROGRAM, env=None, num_particles=NUM_PARTICLES, seed=3
        )
        collection = store.manager.get("s1").collection
        histogram = value_histogram(collection, top=5)
        assert len(histogram) <= 5
        masses = [entry["probability"] for entry in histogram]
        assert masses == sorted(masses, reverse=True)
        assert result["num_particles"] == NUM_PARTICLES


class TestLifecycle:
    def test_create_edit_observe_posterior(self, store):
        store.create_session(
            "alice", "s1", PROGRAM, env=None, num_particles=None, seed=1
        )
        assert store.meta("s1")["program"] == PROGRAM
        store.apply_observation("s1", "observe(gauss(x, 1.0) == 1.5);")
        assert "observe" in store.meta("s1")["program"]
        posterior = store.posterior("s1", top=4)
        assert posterior["num_edits"] == 1
        assert posterior["values"]

    def test_create_duplicate_session_rejected(self, store):
        store.create_session("a", "s1", PROGRAM, env=None, num_particles=None, seed=1)
        with pytest.raises(SessionError):
            store.create_session(
                "a", "s1", PROGRAM, env=None, num_particles=None, seed=1
            )

    def test_unparseable_program_is_bad_request(self, store):
        with pytest.raises(BadRequestError, match="parse"):
            store.create_session(
                "s1", "a", "this ! is not ( a program", env=None,
                num_particles=None, seed=1,
            )
        # Nothing half-created survives the rejection.
        with pytest.raises(SessionError):
            store.meta("s1")

    def test_owns_enforces_tenant_isolation(self, store):
        store.create_session("alice", "s1", PROGRAM, env=None, num_particles=None, seed=1)
        store.owns("alice", "s1")
        with pytest.raises(BadRequestError, match="another tenant"):
            store.owns("mallory", "s1")

    def test_sessions_of(self, store):
        store.create_session("alice", "a1", PROGRAM, env=None, num_particles=None, seed=1)
        store.create_session("bob", "b1", PROGRAM, env=None, num_particles=None, seed=2)
        assert store.sessions_of("alice") == ["a1"]
        assert sorted(store.session_ids()) == ["a1", "b1"]


class TestDurability:
    def test_recover_round_trips_collections(self, tmp_path):
        config = ServiceConfig(store_dir=str(tmp_path), num_particles=NUM_PARTICLES)
        store = DurableSessionStore(config)
        store.create_session("alice", "s1", PROGRAM, env=None, num_particles=None, seed=1)
        store.apply_observation("s1", "observe(gauss(x, 1.0) == 0.5);")
        before = store.manager.get("s1").snapshot()

        fresh = DurableSessionStore(config)
        assert fresh.recover() == ["s1"]
        after = fresh.manager.get("s1").snapshot()
        from repro.store.codec import dumps

        assert dumps(before, "json") == dumps(after, "json")
        assert fresh.meta("s1")["tenant"] == "alice"

    def test_disk_bytes_positive_with_store(self, store):
        store.create_session("a", "s1", PROGRAM, env=None, num_particles=None, seed=1)
        assert store.disk_bytes("s1") > 0

    def test_close_is_destructive(self, tmp_path):
        config = ServiceConfig(store_dir=str(tmp_path), num_particles=NUM_PARTICLES)
        store = DurableSessionStore(config)
        store.create_session("a", "s1", PROGRAM, env=None, num_particles=None, seed=1)
        result = store.close_session("s1")
        assert result["session"] == "s1"
        assert result["tenant"] == "a"
        # A fresh process finds nothing to resurrect.
        fresh = DurableSessionStore(config)
        assert fresh.recover() == []
        with pytest.raises(SessionError):
            store.posterior("s1")

    def test_posterior_degraded_reads_last_commit(self, tmp_path):
        config = ServiceConfig(store_dir=str(tmp_path), num_particles=NUM_PARTICLES)
        store = DurableSessionStore(config)
        store.create_session("a", "s1", PROGRAM, env=None, num_particles=None, seed=1)
        store.apply_observation("s1", "observe(gauss(x, 1.0) == 1.0);")
        degraded = store.posterior_degraded("s1", top=4)
        assert degraded["degraded"] is True
        assert degraded["num_edits"] == 1
        live = store.posterior("s1", top=4)
        assert degraded["values"] == live["values"]

    def test_in_memory_store_has_no_disk(self):
        store = DurableSessionStore(ServiceConfig(num_particles=NUM_PARTICLES))
        store.create_session("a", "s1", PROGRAM, env=None, num_particles=None, seed=1)
        assert store.disk_bytes("s1") == 0
        assert store.recover() == []


class TestColumnarServiceEquivalence:
    def _run(self, tmp_path, collection):
        config = ServiceConfig(
            store_dir=str(tmp_path / collection),
            num_particles=NUM_PARTICLES,
            collection=collection,
        )
        store = DurableSessionStore(config)
        store.create_session("a", "s1", PROGRAM, env=None, num_particles=None, seed=5)
        store.apply_observation("s1", "observe(gauss(x, 1.0) == 0.7);")
        store.apply_edit("s1", "x = gauss(0.5, 2.0);\nreturn x;")
        return store

    def test_columnar_sessions_match_object_sessions(self, tmp_path):
        # Served programs run through the structured-language
        # interpreter, which spills columnar steps to the object path
        # before any randomness is consumed — so the two collection
        # modes must commit byte-identical posteriors.
        object_store = self._run(tmp_path, "object")
        columnar_store = self._run(tmp_path, "columnar")
        assert object_store.posterior("s1", top=8) == columnar_store.posterior(
            "s1", top=8
        )
        # The durable encodings differ by representation (columnar
        # stores columns), but the particles they describe are bitwise
        # the same once viewed as object traces.
        object_collection = object_store.manager.get("s1").collection
        columnar_collection = columnar_store.manager.get("s1").collection
        assert type(columnar_collection).__name__ == "ColumnarCollection"
        roundtripped = columnar_collection.to_weighted()
        assert list(object_collection.log_weights) == list(
            roundtripped.log_weights
        )
        assert [t.return_value for t in object_collection.items] == [
            t.return_value for t in roundtripped.items
        ]

    def test_session_config_carries_collection_mode(self, tmp_path):
        store = DurableSessionStore(
            ServiceConfig(store_dir=str(tmp_path), collection="columnar")
        )
        assert store._session_config.collection == "columnar"


class TestLazySessionLifecycle:
    def _store(self, tmp_path):
        config = ServiceConfig(store_dir=str(tmp_path), num_particles=NUM_PARTICLES)
        store = DurableSessionStore(config)
        store.create_session("a", "s1", PROGRAM, env=None, num_particles=None, seed=1)
        store.apply_observation("s1", "observe(gauss(x, 1.0) == 1.0);")
        return config, store

    def test_recover_session_pulls_one_session(self, tmp_path):
        config, _ = self._store(tmp_path)
        fresh = DurableSessionStore(config)
        assert fresh.recover_session("s1") is True
        assert fresh.posterior("s1")["num_edits"] == 1
        assert fresh.recover_session("missing") is False

    def test_recover_session_refreshes_a_stale_live_copy(self, tmp_path):
        config, store = self._store(tmp_path)
        # A second store (another shard) advances the durable state.
        other = DurableSessionStore(config)
        other.recover_session("s1")
        other.apply_observation("s1", "observe(gauss(x, 1.0) == 2.0);")
        # Re-recovering in the first store replaces, never merges.
        assert store.recover_session("s1") is True
        assert store.posterior("s1")["num_edits"] == 2

    def test_release_session_drops_live_copy_only(self, tmp_path):
        config, store = self._store(tmp_path)
        assert store.release_session("s1") is True
        assert store.release_session("s1") is False
        fresh = DurableSessionStore(config)
        assert fresh.recover_session("s1") is True
        assert fresh.posterior("s1")["num_edits"] == 1

    def test_scan_meta_indexes_without_adopting(self, tmp_path):
        config, _ = self._store(tmp_path)
        fresh = DurableSessionStore(config)
        assert fresh.scan_meta() == ["s1"]
        assert fresh.meta("s1")["tenant"] == "a"
        # Nothing went live — no replay happened yet.
        assert fresh.manager.live_sessions() == []

    def test_create_over_durable_history_rejected(self, tmp_path):
        config, _ = self._store(tmp_path)
        fresh = DurableSessionStore(config)
        # The fresh store has no live copy, but the durable history
        # exists; re-creating would truncate acknowledged state.
        with pytest.raises(SessionError, match="already exists"):
            fresh.create_session(
                "a", "s1", PROGRAM, env=None, num_particles=None, seed=1
            )
