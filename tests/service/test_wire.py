"""Frame protocol and error-payload roundtrips."""

import asyncio
import struct

import pytest

from repro.errors import (
    BadRequestError,
    DeadlineExceededError,
    OverloadedError,
    QuotaExceededError,
    ServiceError,
    ServiceUnavailableError,
    SessionError,
)
from repro.service.wire import (
    ERROR_CLASSES,
    FrameError,
    decode_error,
    encode_error,
    encode_ok,
    encode_request,
    frame_bytes,
    raise_for_response,
    read_frame,
)


def _read(data, **kwargs):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader, **kwargs)

    return asyncio.run(run())


class TestFrames:
    def test_roundtrip(self):
        payload = {"op": "edit", "weights": [1.5, float("-inf")], "n": 3}
        assert _read(frame_bytes(payload)) == payload

    def test_clean_eof_is_none(self):
        assert _read(b"") is None

    def test_truncated_prefix_is_poison(self):
        with pytest.raises(FrameError, match="mid-frame"):
            _read(b"\x00\x00")

    def test_truncated_body_is_poison(self):
        whole = frame_bytes({"op": "ping"})
        with pytest.raises(FrameError, match="mid-frame"):
            _read(whole[:-3])

    def test_oversized_prefix_rejected_before_body(self):
        # A poison length prefix alone — no body bytes at all — must be
        # rejected up front rather than awaiting gigabytes.
        prefix = struct.pack(">I", 2**31)
        with pytest.raises(FrameError, match="exceeds"):
            _read(prefix, max_bytes=1024)

    def test_garbage_body_is_poison(self):
        body = b"not a codec document"
        with pytest.raises(FrameError, match="codec"):
            _read(struct.pack(">I", len(body)) + body)

    def test_frame_error_is_bad_request(self):
        # Poison frames map to the non-retryable bad_request code.
        assert issubclass(FrameError, BadRequestError)
        assert FrameError("x").retryable is False


class TestErrorPayloads:
    def test_encode_request_drops_none(self):
        assert encode_request("edit", session="s", env=None) == {
            "op": "edit",
            "session": "s",
        }

    @pytest.mark.parametrize(
        "error",
        [
            BadRequestError("bad bytes"),
            OverloadedError("queue full", retry_after_s=0.25),
            DeadlineExceededError("too slow", retry_after_s=1.0),
            ServiceUnavailableError("draining"),
        ],
    )
    def test_roundtrip_preserves_class_and_fields(self, error):
        rebuilt = decode_error(encode_error(error)["error"])
        assert type(rebuilt) is type(error)
        assert str(rebuilt) == str(error)
        assert rebuilt.retryable == error.retryable
        assert rebuilt.retry_after_s == error.retry_after_s

    def test_quota_error_carries_quota_and_limit(self):
        error = QuotaExceededError(
            "too many sessions", quota="sessions", limit=8, retry_after_s=2.0
        )
        payload = encode_error(error)["error"]
        assert payload["quota"] == "sessions"
        assert payload["limit"] == 8
        rebuilt = decode_error(payload)
        assert isinstance(rebuilt, QuotaExceededError)
        assert rebuilt.quota == "sessions"
        assert rebuilt.limit == 8
        assert rebuilt.retry_after_s == 2.0

    def test_session_error_maps_to_bad_request(self):
        payload = encode_error(SessionError("no such session 's9'"))
        assert payload["error"]["code"] == "bad_request"
        assert payload["error"]["retryable"] is False

    def test_internal_error_for_unknown_exception(self):
        payload = encode_error(RuntimeError("boom"))["error"]
        assert payload["code"] == "internal"
        rebuilt = decode_error(payload)
        assert type(rebuilt) is ServiceError
        assert rebuilt.retryable is False

    def test_decode_unknown_code_keeps_retryable_flag(self):
        rebuilt = decode_error(
            {"code": "weird", "message": "m", "retryable": True}
        )
        assert type(rebuilt) is ServiceError
        assert rebuilt.retryable is True

    def test_decode_malformed_payload(self):
        assert isinstance(decode_error("garbage"), ServiceUnavailableError)

    def test_error_classes_cover_the_taxonomy(self):
        assert set(ERROR_CLASSES) == {
            "bad_request",
            "quota_exceeded",
            "overloaded",
            "deadline_exceeded",
            "unavailable",
        }


class TestRaiseForResponse:
    def test_ok(self):
        assert raise_for_response(encode_ok({"x": 1})) == {"x": 1}

    def test_error(self):
        with pytest.raises(OverloadedError, match="full"):
            raise_for_response(encode_error(OverloadedError("full")))

    def test_malformed(self):
        with pytest.raises(ServiceUnavailableError, match="malformed"):
            raise_for_response(["not", "a", "response"])
