"""Shared fixtures for the persistent-store tests."""

import numpy as np
import pytest

from repro import Model
from repro.distributions import Flip


def burglary_original_fn(t):
    burglary = t.sample(Flip(0.02), "burglary")
    p_alarm = 0.9 if burglary else 0.01
    alarm = t.sample(Flip(p_alarm), "alarm")
    p_mary_wakes = 0.8 if alarm else 0.05
    t.observe(Flip(p_mary_wakes), 1, "mary_wakes")
    return burglary


def burglary_refined_fn(t):
    burglary = t.sample(Flip(0.02), "burglary")
    earthquake = t.sample(Flip(0.005), "earthquake")
    if earthquake:
        p_alarm = 0.95
    else:
        p_alarm = 0.9 if burglary else 0.01
    alarm = t.sample(Flip(p_alarm), "alarm")
    if alarm:
        p_mary_wakes = 0.9 if earthquake else 0.8
    else:
        p_mary_wakes = 0.05
    t.observe(Flip(p_mary_wakes), 1, "mary_wakes")
    return burglary


@pytest.fixture
def burglary_original():
    return Model(burglary_original_fn)


@pytest.fixture
def burglary_refined():
    return Model(burglary_refined_fn)


@pytest.fixture
def rng():
    return np.random.default_rng(2018)
