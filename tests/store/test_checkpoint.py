"""CheckpointManager: atomic writes, corruption detection, recovery."""

import hashlib
import os

import numpy as np
import pytest

from repro.core import Trace, WeightedCollection
from repro.errors import CheckpointCorruptionError, SchemaVersionError
from repro.store import Checkpoint, CheckpointManager
from repro.store.codec import dumps


def make_collection(rng, n=3):
    traces = [Trace() for _ in range(n)]
    return WeightedCollection(traces, list(rng.standard_normal(n)))


@pytest.fixture
def collection(rng):
    return make_collection(rng)


class TestSaveLoad:
    def test_round_trip(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        rng = np.random.default_rng(3)
        rng.standard_normal(4)
        path = manager.save(5, collection, rng=rng, extra={"note": "hi"})
        assert path.name == "step-00000005.ckpt"

        loaded = manager.load(5)
        assert isinstance(loaded, Checkpoint)
        assert loaded.step == 5
        assert loaded.collection.log_weights == collection.log_weights
        assert loaded.extra == {"note": "hi"}
        # The restored RNG continues the original stream exactly.
        assert list(loaded.rng.standard_normal(3)) == list(rng.standard_normal(3))

    def test_binary_format(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path, format="binary")
        manager.save(0, collection)
        loaded = manager.load(0)
        assert loaded.collection.log_weights == collection.log_weights

    def test_rng_is_optional(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        manager.save(0, collection)
        assert manager.load(0).rng is None

    def test_missing_checkpoint(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(CheckpointCorruptionError):
            manager.load(0)

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, format="xml")
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)


class TestAtomicity:
    def test_no_tmp_files_left_behind(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        manager.save(0, collection)
        manager.save(1, collection)
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.startswith(".tmp")]
        assert leftovers == []

    def test_stale_tmp_files_are_cleaned(self, tmp_path, collection):
        tmp_path.mkdir(exist_ok=True)
        stale = tmp_path / ".tmp-step-00000009-12345"
        stale.write_bytes(b"half a checkpoint")
        manager = CheckpointManager(tmp_path)
        manager.save(0, collection)
        assert not stale.exists()

    def test_tmp_files_invisible_to_readers(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        manager.save(0, collection)
        (tmp_path / ".tmp-step-00000003-777").write_bytes(b"junk")
        assert manager.list_steps() == [0]
        assert manager.load_latest().step == 0


class TestCorruptionDetection:
    def test_truncated_body(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, collection)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])
        with pytest.raises(CheckpointCorruptionError, match="partial write"):
            manager.load(0)

    def test_bit_flip_in_body(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, collection)
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointCorruptionError, match="checksum"):
            manager.load(0)

    def test_malformed_header(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, collection)
        path.write_bytes(b"TOTALLY-NOT-A-CHECKPOINT\nrest")
        with pytest.raises(CheckpointCorruptionError, match="header"):
            manager.load(0)

    def test_headerless_garbage(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, collection)
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(CheckpointCorruptionError):
            manager.load(0)

    def test_step_mismatch(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        source = manager.save(7, collection)
        target = manager.path_for(3)
        target.write_bytes(source.read_bytes())
        with pytest.raises(CheckpointCorruptionError, match="claims step"):
            manager.load(3)


class TestSchemaVersion:
    def _forge(self, directory, step, *, header_version=1, schema_body=None):
        """Write a structurally valid checkpoint with a chosen version."""
        body = schema_body
        if body is None:
            body = dumps({"step": step, "collection": None, "rng": None, "extra": {}})
        digest = hashlib.sha256(body).hexdigest()
        header = f"REPRO-CKPT {header_version} {digest} {len(body)}\n".encode()
        directory.mkdir(exist_ok=True)
        path = directory / f"step-{step:08d}.ckpt"
        path.write_bytes(header + body)
        return path

    def test_newer_header_version_rejected(self, tmp_path):
        self._forge(tmp_path, 0, header_version=99)
        manager = CheckpointManager(tmp_path)
        with pytest.raises(SchemaVersionError):
            manager.load(0)

    def test_newer_body_schema_rejected(self, tmp_path):
        body = b'{"format":"repro-store","schema":99,"value":null}'
        self._forge(tmp_path, 0, schema_body=body)
        manager = CheckpointManager(tmp_path)
        with pytest.raises(SchemaVersionError):
            manager.load(0)

    def test_load_latest_never_skips_newer_schema(self, tmp_path, collection):
        """Falling back past a newer-version checkpoint would silently
        rewind the run — load_latest must raise instead."""
        manager = CheckpointManager(tmp_path)
        manager.save(0, collection)
        self._forge(tmp_path, 1, header_version=99)
        with pytest.raises(SchemaVersionError):
            manager.load_latest()


class TestLoadLatest:
    def test_empty_directory(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_nonexistent_directory(self, tmp_path):
        manager = CheckpointManager(tmp_path / "never-created")
        assert manager.load_latest() is None
        assert manager.list_steps() == []

    def test_picks_newest(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        for step in (0, 3, 11):
            manager.save(step, make_collection(rng))
        assert manager.load_latest().step == 11

    def test_falls_back_over_corruption_with_warning(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        manager.save(0, make_collection(rng))
        newest = manager.save(1, make_collection(rng))
        raw = newest.read_bytes()
        newest.write_bytes(raw[: len(raw) // 2])  # torn write
        with pytest.warns(RuntimeWarning, match="skipping corrupt checkpoint"):
            loaded = manager.load_latest()
        assert loaded.step == 0

    def test_all_corrupt_returns_none(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, make_collection(rng))
        path.write_bytes(b"garbage\n")
        with pytest.warns(RuntimeWarning):
            assert manager.load_latest() is None


class TestCadenceAndPruning:
    def test_maybe_save_cadence(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path, every=3)
        written = [
            step
            for step in range(9)
            if manager.maybe_save(step, collection) is not None
        ]
        # Cadence counts completed steps: step indices 2, 5, 8.
        assert written == [2, 5, 8]

    def test_maybe_save_force(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path, every=100)
        assert manager.maybe_save(0, collection) is None
        assert manager.maybe_save(1, collection, force=True) is not None
        assert manager.list_steps() == [1]

    def test_keep_prunes_oldest(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path, keep=2)
        for step in range(5):
            manager.save(step, make_collection(rng))
        assert manager.list_steps() == [3, 4]

    def test_pruned_run_still_resumes(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path, keep=1)
        for step in range(4):
            manager.save(step, make_collection(rng))
        assert manager.load_latest().step == 3


class TestCrashArtifacts:
    """Files a crashed writer can leave behind: empty, torn, garbled.

    ``load`` must report them as :class:`CheckpointCorruptionError`
    (never a bare ``ValueError`` leaking from header parsing), and
    ``load_latest`` must skip them in favor of an older valid snapshot
    — this is what the service's crash recovery leans on.
    """

    def test_zero_byte_file(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, collection)
        path.write_bytes(b"")
        with pytest.raises(CheckpointCorruptionError, match="empty"):
            manager.load(0)

    def test_load_latest_skips_zero_byte_file(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        manager.save(0, make_collection(rng))
        newest = manager.save(1, make_collection(rng))
        newest.write_bytes(b"")
        with pytest.warns(RuntimeWarning, match="skipping corrupt checkpoint"):
            assert manager.load_latest().step == 0

    def test_truncated_header(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, collection)
        path.write_bytes(path.read_bytes()[:8])  # cut mid-header, no newline
        with pytest.raises(CheckpointCorruptionError):
            manager.load(0)

    def test_non_numeric_header_fields(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, collection)
        prefix, _, rest = path.read_bytes().partition(b" ")
        _, _, rest = rest.partition(b" ")  # drop the version field
        path.write_bytes(prefix + b" one " + rest)
        with pytest.raises(CheckpointCorruptionError, match="non-numeric"):
            manager.load(0)

    def test_non_numeric_length_field(self, tmp_path, collection):
        manager = CheckpointManager(tmp_path)
        path = manager.save(0, collection)
        header, newline, body = path.read_bytes().partition(b"\n")
        fields = header.split(b" ")
        fields[3] = b"NaN"
        path.write_bytes(b" ".join(fields) + newline + body)
        with pytest.raises(CheckpointCorruptionError, match="non-numeric"):
            manager.load(0)

    def test_load_latest_skips_garbled_header(self, tmp_path, rng):
        manager = CheckpointManager(tmp_path)
        manager.save(0, make_collection(rng))
        newest = manager.save(1, make_collection(rng))
        raw = newest.read_bytes()
        newest.write_bytes(raw.replace(b" 1 ", b" ? ", 1))
        with pytest.warns(RuntimeWarning, match="skipping corrupt checkpoint"):
            assert manager.load_latest().step == 0
