"""CLI persistence surface: sequence/resume/session, exit codes, kill-resume.

The subprocess test at the bottom is the CI persistence story in
miniature: SIGTERM a ``repro sequence`` run mid-flight via
``REPRO_KILL_AFTER_STEP``, ``repro resume`` from the latest checkpoint,
and require the resumed final collection to be byte-identical to an
uninterrupted run.
"""

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.cli import EXIT_FAULT, EXIT_USAGE, KILL_ENV_VAR, main
from repro.store import CheckpointManager, loads
from repro.store.codec import dumps

GAUSS_TEMPLATE = "x = gauss(0, 2); observe(gauss(x, 1) == {target}); return x;"


@pytest.fixture
def gauss_chain(tmp_path):
    """Four lang programs differing only in the observed value."""
    files = []
    for index, target in enumerate([1.0, 1.5, 2.0, 2.5]):
        path = tmp_path / f"p{index}.pp"
        path.write_text(GAUSS_TEMPLATE.format(target=target))
        files.append(str(path))
    return files


def run_sequence(files, out, ckpt_dir=None, extra=()):
    argv = ["sequence", *files, "-n", "50", "--seed", "3", "--out", str(out)]
    if ckpt_dir is not None:
        argv += ["--checkpoint-dir", str(ckpt_dir)]
    argv += list(extra)
    return main(argv)


class TestSequence:
    def test_writes_checkpoints_and_collection(self, gauss_chain, tmp_path, capsys):
        out = tmp_path / "final.bin"
        ckpt = tmp_path / "ckpt"
        assert run_sequence(gauss_chain, out, ckpt) == 0
        # 3 translators -> steps 0..2 all checkpointed (default every=1).
        assert CheckpointManager(ckpt).list_steps() == [0, 1, 2]
        collection = loads(out.read_bytes())
        assert len(collection) == 50
        assert "sequence complete: 3 step(s)" in capsys.readouterr().out

    def test_metrics_out(self, gauss_chain, tmp_path):
        metrics = tmp_path / "metrics.json"
        argv = ["sequence", *gauss_chain, "-n", "20", "--seed", "0",
                "--metrics-out", str(metrics)]
        assert main(argv) == 0
        payload = json.loads(metrics.read_text())
        assert payload  # at least the SMC counters are present

    def test_requires_two_files(self, gauss_chain, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sequence", gauss_chain[0]])
        assert excinfo.value.code == EXIT_USAGE

    def test_missing_file_is_usage_error(self, gauss_chain, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["sequence", gauss_chain[0], str(tmp_path / "nope.pp")])
        assert excinfo.value.code == EXIT_USAGE

    def test_bad_env_is_usage_error(self, gauss_chain):
        with pytest.raises(SystemExit) as excinfo:
            main(["sequence", *gauss_chain, "--env", "oops"])
        assert excinfo.value.code == EXIT_USAGE

    def test_inference_fault_exit_code(self, tmp_path):
        """A chain whose weights all collapse is an inference fault (3),
        distinct from usage errors (2)."""
        a = tmp_path / "a.pp"
        b = tmp_path / "b.pp"
        a.write_text("x = flip(0.5); observe(flip(0.5) == 1); return x;")
        b.write_text("x = flip(0.5); observe(flip(0.0) == 1); return x;")
        code = main(["sequence", str(a), str(b), "-n", "10", "--seed", "0"])
        assert code == EXIT_FAULT


class TestResume:
    def test_missing_checkpoint_dir_contents(self, gauss_chain, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["resume", *gauss_chain, "--checkpoint-dir", str(tmp_path / "empty")])
        assert excinfo.value.code == EXIT_USAGE

    def test_newer_schema_checkpoint_rejected(self, gauss_chain, tmp_path):
        """A checkpoint written by a newer library version must be
        refused (exit 2), not silently skipped."""
        ckpt_dir = tmp_path / "ckpt"
        ckpt_dir.mkdir()
        body = b'{"format":"repro-store","schema":99,"value":null}'
        digest = hashlib.sha256(body).hexdigest()
        header = f"REPRO-CKPT 1 {digest} {len(body)}\n".encode()
        (ckpt_dir / "step-00000000.ckpt").write_bytes(header + body)
        with pytest.raises(SystemExit) as excinfo:
            main(["resume", *gauss_chain, "--checkpoint-dir", str(ckpt_dir)])
        assert excinfo.value.code == EXIT_USAGE

    def test_in_process_resume_matches_full_run(self, gauss_chain, tmp_path, capsys):
        full_out = tmp_path / "full.bin"
        assert run_sequence(gauss_chain, full_out) == 0

        # Interrupted variant: only the first two steps ran.
        ckpt = tmp_path / "ckpt"
        partial_out = tmp_path / "partial.bin"
        assert run_sequence(gauss_chain[:3], partial_out, ckpt) == 0

        resumed_out = tmp_path / "resumed.bin"
        code = main([
            "resume", *gauss_chain,
            "--checkpoint-dir", str(ckpt),
            "--out", str(resumed_out),
        ])
        assert code == 0
        assert "resuming from" in capsys.readouterr().out
        assert resumed_out.read_bytes() == full_out.read_bytes()


class TestSessionCommand:
    def test_fig8_workflow(self, tmp_path, capsys):
        metrics = tmp_path / "session.json"
        code = main([
            "session", "fig8", "-n", "40", "--seed", "0",
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert payload["session"]["session.edits"]["value"] == 3
        assert len(payload["history"]) == 3
        assert len(payload["summaries"]["slope_mean_by_edit"]) == 4
        assert "edit 2" in capsys.readouterr().out

    def test_fig10_workflow_persists_store(self, tmp_path):
        store = tmp_path / "sessions"
        code = main([
            "session", "fig10", "-n", "10", "--seed", "0",
            "--store-dir", str(store),
        ])
        assert code == 0
        assert (store / "fig10-gmm.session").is_file()

    def test_unknown_workflow_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["session", "fig99"])
        assert excinfo.value.code == EXIT_USAGE


@pytest.mark.slow
class TestKillAndResumeSubprocess:
    """The full crash-recovery story, across real processes."""

    def _run(self, argv, tmp_path, env_extra=None):
        env = dict(os.environ)
        root = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
        env["PYTHONPATH"] = os.path.abspath(os.path.join(root, "src"))
        env.update(env_extra or {})
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            cwd=tmp_path, env=env, capture_output=True, text=True, timeout=120,
        )

    def test_sigterm_kill_then_resume_is_byte_identical(self, gauss_chain, tmp_path):
        full = self._run(
            ["sequence", *gauss_chain, "-n", "50", "--seed", "3",
             "--out", "full.bin"],
            tmp_path,
        )
        assert full.returncode == 0, full.stderr

        killed = self._run(
            ["sequence", *gauss_chain, "-n", "50", "--seed", "3",
             "--checkpoint-dir", "ckpt", "--out", "never-written.bin"],
            tmp_path,
            env_extra={KILL_ENV_VAR: "2"},
        )
        assert killed.returncode == -15  # died by SIGTERM
        assert not (tmp_path / "never-written.bin").exists()
        assert CheckpointManager(tmp_path / "ckpt").list_steps() == [0]

        resumed = self._run(
            ["resume", *gauss_chain, "--checkpoint-dir", "ckpt",
             "--out", "resumed.bin"],
            tmp_path,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming from" in resumed.stdout
        assert (
            (tmp_path / "resumed.bin").read_bytes()
            == (tmp_path / "full.bin").read_bytes()
        )
