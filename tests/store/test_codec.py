"""Round-trip properties of the versioned store codec.

The core contract: ``deserialize(serialize(x))`` reproduces ``x`` with
*bitwise* log-probability fidelity, for traces over every distribution
the library ships, for lang-interpreter traces, for dependency-graph
traces, and for weighted collections (including ``-inf`` weights and
per-particle metadata).
"""

import dataclasses
import inspect
import json
import math

import numpy as np
import pytest

import repro.distributions as dist_module
from repro.core import ChoiceRecord, ObservationRecord, Trace, WeightedCollection
from repro.core.address import normalize_address
from repro.core.smc import SMCStats
from repro.distributions import (
    Beta,
    Categorical,
    Delta,
    Distribution,
    Exponential,
    Flip,
    Gamma,
    Geometric,
    LogCategorical,
    LogNormal,
    Normal,
    Poisson,
    TwoNormals,
    Uniform,
    UniformDiscrete,
)
from repro.errors import CodecError, SchemaVersionError
from repro.graph import GraphTranslator, replace_constant, run_initial
from repro.lang import lang_model, parse_program
from repro.store import (
    BINARY_MAGIC,
    DISTRIBUTION_REGISTRY,
    SCHEMA_VERSION,
    deserialize,
    dumps,
    loads,
    serialize,
)

#: One exemplar instance per concrete distribution the library ships.
DISTRIBUTION_EXAMPLES = [
    Flip(0.3),
    UniformDiscrete(-2, 7),
    Categorical([0.2, 0.5, 0.3]),
    LogCategorical([math.log(0.25), math.log(0.75)]),
    Delta((1, "x")),
    Geometric(0.4),
    Poisson(2.5),
    Normal(0.7, 1.9),
    Uniform(-1.5, 4.0),
    TwoNormals(1.0, 0.1, 0.5, 10.0),
    Gamma(2.0, 1.5),
    Beta(2.5, 1.5),
    LogNormal(0.2, 0.9),
    Exponential(1.7),
]


def add_choice(trace, address, dist, value):
    address = normalize_address(address)
    trace.add_choice(ChoiceRecord(address, dist, value, dist.log_prob(value)))


def add_observation(trace, address, dist, value):
    address = normalize_address(address)
    trace.add_observation(
        ObservationRecord(address, dist, value, dist.log_prob(value))
    )


def concrete_distribution_classes():
    classes = []
    for name in dist_module.__all__:
        obj = getattr(dist_module, name)
        if (
            inspect.isclass(obj)
            and issubclass(obj, Distribution)
            and dataclasses.is_dataclass(obj)
            and not inspect.isabstract(obj)
        ):
            classes.append(obj)
    return classes


class TestDistributionCompleteness:
    def test_every_concrete_distribution_has_an_example(self):
        """The exemplar list must cover the whole library — a new
        distribution class fails here until it is added (and thereby
        covered by every round-trip test below)."""
        covered = {type(example) for example in DISTRIBUTION_EXAMPLES}
        missing = [
            cls.__name__
            for cls in concrete_distribution_classes()
            if cls not in covered
        ]
        assert not missing, f"add codec round-trip examples for: {missing}"

    def test_every_concrete_distribution_is_registered(self):
        for cls in concrete_distribution_classes():
            assert cls.__name__ in DISTRIBUTION_REGISTRY


@pytest.mark.parametrize(
    "dist", DISTRIBUTION_EXAMPLES, ids=lambda d: type(d).__name__
)
class TestDistributionRoundTrip:
    def test_distribution_equal(self, dist):
        assert deserialize(serialize(dist)) == dist

    def test_trace_choice_bitwise(self, dist, rng):
        value = dist.sample(rng)
        trace = Trace()
        add_choice(trace, ("site", 0), dist, value)
        trace.return_value = value
        restored = deserialize(serialize(trace))
        record = restored.get_record(("site", 0))
        original = trace.get_record(("site", 0))
        assert record.value == original.value
        assert record.dist == dist
        # Bitwise, not approx: the codec must not re-derive log probs.
        assert record.log_prob == original.log_prob
        assert restored.log_prob == trace.log_prob

    def test_log_prob_survives_json_text(self, dist, rng):
        """Finite floats survive the JSON wire format bitwise (Python
        emits shortest-round-trip reprs)."""
        value = dist.sample(rng)
        trace = Trace()
        add_choice(trace, "x", dist, value)
        body = dumps(trace)
        assert loads(body).log_prob == trace.log_prob


class TestTraceRoundTrip:
    def test_observations_and_return(self, rng):
        trace = Trace()
        add_choice(trace, "x", Normal(0.0, 1.0), 0.25)
        add_observation(trace, "y", Normal(0.25, 0.5), 1.5)
        trace.return_value = [1, 2.5, ("a", 3), {"k": True}]
        restored = deserialize(serialize(trace))
        assert restored.return_value == trace.return_value
        assert restored.addresses() == trace.addresses()
        assert restored.observation_log_prob == trace.observation_log_prob
        assert restored.choice_log_prob == trace.choice_log_prob

    def test_model_trace(self, burglary_original, rng):
        trace = burglary_original.simulate(rng)
        restored = deserialize(serialize(trace))
        assert restored.log_prob == trace.log_prob
        assert restored.addresses() == trace.addresses()
        for address in trace.addresses():
            assert restored[address] == trace[address]

    def test_lang_trace(self, rng):
        program = parse_program(
            "x = gauss(0, 2); observe(gauss(x, 1) == 1.5); return x;"
        )
        trace = lang_model(program).simulate(rng)
        restored = deserialize(serialize(trace))
        assert restored.log_prob == trace.log_prob
        assert restored.choice_log_prob == trace.choice_log_prob
        assert restored.return_value == trace.return_value


class TestGraphTraceRoundTrip:
    SOURCE = """
p = 0.3;
x = flip(p);
for i in [0 .. 3) {
    observe(flip(x ? 0.8 : 0.2) == 1);
}
return x;
"""

    def test_bitwise_log_prob(self, rng):
        program = parse_program(self.SOURCE)
        trace = run_initial(program, rng)
        restored = deserialize(serialize(trace))
        assert restored.log_prob == trace.log_prob
        assert restored.observation_log_prob == trace.observation_log_prob
        assert restored.visited_statements == trace.visited_statements
        assert restored.env_out == trace.env_out

    def test_restored_trace_supports_propagation(self, rng):
        """A deserialized graph trace is fully usable: incremental
        propagation from it matches propagation from the original,
        draw for draw."""
        program = parse_program(self.SOURCE)
        target = replace_constant(program, "p", 0.6)
        trace = run_initial(program, rng)
        restored = deserialize(serialize(trace))

        translator = GraphTranslator(program, target)
        result_a = translator.translate(np.random.default_rng(5), trace)
        result_b = translator.translate(np.random.default_rng(5), restored)
        assert result_a.log_weight == result_b.log_weight
        assert result_a.trace.log_prob == result_b.trace.log_prob
        assert (
            result_a.components["visited_statements"]
            == result_b.components["visited_statements"]
        )


class TestCollectionRoundTrip:
    def make_collection(self, rng, metadata=None):
        traces = []
        for _ in range(4):
            trace = Trace()
            add_choice(trace, "x", Normal(0.0, 1.0), float(rng.standard_normal()))
            traces.append(trace)
        return WeightedCollection(
            traces, [0.0, -1.5, float("-inf"), 2.25], metadata=metadata
        )

    def test_log_weights_bitwise_including_neg_inf(self, rng):
        collection = self.make_collection(rng)
        restored = deserialize(serialize(collection))
        assert restored.log_weights == collection.log_weights
        assert len(restored) == len(collection)

    def test_metadata_round_trips_without_aliasing(self, rng):
        metadata = [{"origin": 0}, None, {"origin": 2, "tags": ("a", "b")}, {}]
        collection = self.make_collection(rng, metadata=metadata)
        restored = deserialize(serialize(collection))
        assert restored.metadata == metadata
        restored.metadata[0]["origin"] = 99
        assert collection.metadata[0]["origin"] == 0

    def test_binary_format_round_trip(self, rng):
        collection = self.make_collection(rng, metadata=[{"i": i} for i in range(4)])
        body = dumps(collection, "binary")
        assert body.startswith(BINARY_MAGIC)
        restored = loads(body)
        assert restored.log_weights == collection.log_weights
        assert restored.metadata == collection.metadata


class TestAuxiliaryTypes:
    def test_rng_state_continues_identically(self):
        rng = np.random.default_rng(42)
        rng.standard_normal(7)  # advance
        clone = deserialize(serialize(rng))
        assert clone is not rng
        assert list(clone.standard_normal(5)) == list(rng.standard_normal(5))

    def test_stats_round_trip(self, burglary_original, burglary_refined, rng):
        from repro.core import CorrespondenceTranslator, infer
        from repro.core.correspondence import Correspondence
        from repro.core.importance import importance_sampling

        translator = CorrespondenceTranslator(
            burglary_original, burglary_refined,
            Correspondence.identity(["burglary", "alarm"]),
        )
        collection = importance_sampling(burglary_original, rng, 20)
        stats = infer(translator, collection, rng).stats
        restored = deserialize(serialize(stats))
        assert isinstance(restored, SMCStats)
        assert restored == stats

    def test_nested_containers(self):
        value = {
            "plain": [1, 2.5, "s", None, True],
            "tuple": (1, (2, 3)),
            "$escaped": "dollar key",
            ("non", "str"): "tuple key",
            "bytes": b"\x00\x01",
            "array": np.arange(6, dtype=np.float64).reshape(2, 3),
            "nonfinite": [float("inf"), float("-inf")],
        }
        restored = deserialize(serialize(value))
        assert restored["plain"] == value["plain"]
        assert restored["tuple"] == (1, (2, 3))
        assert restored["$escaped"] == "dollar key"
        assert restored[("non", "str")] == "tuple key"
        assert restored["bytes"] == b"\x00\x01"
        np.testing.assert_array_equal(restored["array"], value["array"])
        assert restored["nonfinite"] == [float("inf"), float("-inf")]

    def test_nan_round_trips(self):
        restored = deserialize(serialize(float("nan")))
        assert math.isnan(restored)


class TestWireFormat:
    def test_json_is_strict_and_canonical(self, rng):
        trace = Trace()
        add_choice(trace, "x", Flip(0.5), 1)
        body = dumps(trace)
        document = json.loads(body.decode("utf-8"))  # strict JSON parses
        assert document["schema"] == SCHEMA_VERSION
        assert document["format"] == "repro-store"
        # Canonical: re-dumping produces identical bytes.
        assert dumps(trace) == body

    def test_newer_schema_rejected(self):
        document = serialize({"k": 1})
        document["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError):
            deserialize(document)

    def test_newer_schema_rejected_in_binary_header(self, rng):
        body = bytearray(dumps([1, 2, 3], "binary"))
        offset = len(BINARY_MAGIC)
        body[offset:offset + 2] = (SCHEMA_VERSION + 7).to_bytes(2, "big")
        with pytest.raises(SchemaVersionError):
            loads(bytes(body))

    def test_garbage_rejected(self):
        with pytest.raises(CodecError):
            loads(b"not a document")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            deserialize({"format": "repro-store", "schema": SCHEMA_VERSION,
                         "value": {"$mystery": 1}})
