"""Kill-and-resume determinism for sequence and annealing runs.

The headline property: a run resumed from its latest checkpoint produces
the *byte-identical* final collection of the uninterrupted run — for
every executor backend, because per-particle randomness comes from
seeded streams and the checkpoint captures the generator state at the
step boundary.
"""

import numpy as np
import pytest

from repro.core import (
    CorrespondenceTranslator,
    InferenceConfig,
    Model,
    infer_sequence,
)
from repro.core.annealing import annealed_importance_sampling
from repro.core.correspondence import Correspondence
from repro.core.importance import importance_sampling
from repro.distributions import Normal
from repro.store import CheckpointManager, dumps

NUM_PARTICLES = 30


def gaussian_model(mean):
    def fn(t):
        x = t.sample(Normal(mean, 1.0), "x")
        t.observe(Normal(x, 0.5), 1.0, "y")
        return x

    return Model(fn)


def translator_chain(means):
    models = [gaussian_model(mean) for mean in means]
    identity = Correspondence.identity(["x"])
    return models, [
        CorrespondenceTranslator(previous, current, identity)
        for previous, current in zip(models, models[1:])
    ]


@pytest.fixture
def chain():
    return translator_chain([0.0, 0.5, 1.0, 1.5, 2.0, 2.5])


def initial_collection(models, seed=99):
    rng = np.random.default_rng(seed)
    return importance_sampling(models[0], rng, NUM_PARTICLES).resample(rng)


class TestCheckpointCadence:
    def test_every_step_plus_forced_final(self, tmp_path, chain):
        models, translators = chain
        config = InferenceConfig(
            resample="adaptive", checkpoint_dir=str(tmp_path), checkpoint_every=2
        )
        infer_sequence(
            translators,
            initial_collection(models),
            np.random.default_rng(0),
            config=config,
        )
        # every=2 over 5 steps: cadence hits 1 and 3, the final step 4
        # is always forced.
        assert CheckpointManager(tmp_path).list_steps() == [1, 3, 4]

    def test_no_checkpoint_dir_writes_nothing(self, tmp_path, chain):
        models, translators = chain
        infer_sequence(
            translators,
            initial_collection(models),
            np.random.default_rng(0),
            config=InferenceConfig(resample="adaptive"),
        )
        assert list(tmp_path.iterdir()) == []

    def test_checkpoint_carries_stats_extra(self, tmp_path, chain):
        models, translators = chain
        config = InferenceConfig(resample="adaptive", checkpoint_dir=str(tmp_path))
        steps = infer_sequence(
            translators,
            initial_collection(models),
            np.random.default_rng(0),
            config=config,
        )
        latest = CheckpointManager(tmp_path).load_latest()
        assert latest.step == len(translators) - 1
        assert latest.extra["stats"] == steps[-1].stats


def run_full(translators, initial, seed, **config_kwargs):
    config = InferenceConfig(resample="adaptive", **config_kwargs)
    steps = infer_sequence(
        translators, initial, np.random.default_rng(seed), config=config
    )
    return steps[-1].collection


def kill_and_resume(tmp_path, translators, initial, seed, kill_after, **config_kwargs):
    """Run ``kill_after`` steps with checkpoints, then resume the rest."""
    interrupted = InferenceConfig(
        resample="adaptive", checkpoint_dir=str(tmp_path), **config_kwargs
    )
    infer_sequence(
        translators[:kill_after],
        initial,
        np.random.default_rng(seed),
        config=interrupted,
    )
    checkpoint = CheckpointManager(tmp_path).load_latest()
    assert checkpoint is not None
    completed = checkpoint.step + 1
    steps = infer_sequence(
        translators[completed:],
        checkpoint.collection,
        checkpoint.rng,
        config=interrupted,
        step_offset=completed,
    )
    return steps[-1].collection


class TestResumeByteIdentity:
    @pytest.mark.parametrize("kill_after", [1, 3])
    def test_serial(self, tmp_path, chain, kill_after):
        models, translators = chain
        full = run_full(translators, initial_collection(models), seed=7)
        resumed = kill_and_resume(
            tmp_path, translators, initial_collection(models), 7, kill_after
        )
        assert dumps(resumed) == dumps(full)

    def test_thread_executor(self, tmp_path, chain):
        models, translators = chain
        kwargs = {"executor": "thread", "workers": 2}
        full = run_full(translators, initial_collection(models), 7, **kwargs)
        resumed = kill_and_resume(
            tmp_path, translators, initial_collection(models), 7, 2, **kwargs
        )
        assert dumps(resumed) == dumps(full)

    def test_resume_via_loaded_checkpoint_bytes(self, tmp_path, chain):
        """The checkpoint that reaches disk — not an in-memory alias —
        is sufficient: reload it in a fresh manager and resume."""
        models, translators = chain
        config = InferenceConfig(resample="adaptive", checkpoint_dir=str(tmp_path))
        infer_sequence(
            translators[:2],
            initial_collection(models),
            np.random.default_rng(7),
            config=config,
        )
        checkpoint = CheckpointManager(tmp_path).load_latest()
        completed = checkpoint.step + 1
        resumed = infer_sequence(
            translators[completed:],
            checkpoint.collection,
            checkpoint.rng,
            config=InferenceConfig(resample="adaptive"),
            step_offset=completed,
        )[-1].collection
        full = run_full(translators, initial_collection(models), seed=7)
        assert dumps(resumed) == dumps(full)


def tempered_model(beta):
    return gaussian_model(2.0 * float(beta))


class TestAnnealingResume:
    NUM_STEPS = 5

    def test_resume_matches_uninterrupted(self, tmp_path):
        full_collection, full_log_ratio = annealed_importance_sampling(
            tempered_model, self.NUM_STEPS, NUM_PARTICLES, np.random.default_rng(11)
        )

        # The same run, checkpointed every 2 rungs; then resume from the
        # *middle* snapshot (step 1), i.e. a run killed after rung 1.
        config = InferenceConfig(
            resample="adaptive",
            resampling_scheme="systematic",
            checkpoint_dir=str(tmp_path),
            checkpoint_every=2,
        )
        annealed_importance_sampling(
            tempered_model,
            self.NUM_STEPS,
            NUM_PARTICLES,
            np.random.default_rng(11),
            config=config,
        )
        checkpoint = CheckpointManager(tmp_path).load(1)
        resumed_collection, resumed_log_ratio = annealed_importance_sampling(
            tempered_model,
            self.NUM_STEPS,
            NUM_PARTICLES,
            checkpoint.rng,
            step_offset=checkpoint.step + 1,
            initial_collection=checkpoint.collection,
            initial_log_ratio=checkpoint.extra["log_ratio"],
        )
        assert dumps(resumed_collection) == dumps(full_collection)
        assert resumed_log_ratio == full_log_ratio

    def test_resume_requires_initial_collection(self):
        with pytest.raises(ValueError, match="initial_collection"):
            annealed_importance_sampling(
                tempered_model,
                self.NUM_STEPS,
                NUM_PARTICLES,
                np.random.default_rng(0),
                step_offset=2,
            )

    def test_step_offset_bounds(self, rng):
        collection = initial_collection([tempered_model(0.0)])
        with pytest.raises(ValueError, match="no rungs"):
            annealed_importance_sampling(
                tempered_model,
                self.NUM_STEPS,
                NUM_PARTICLES,
                np.random.default_rng(0),
                step_offset=self.NUM_STEPS,  # beyond the last rung
                initial_collection=collection,
            )


class TestConfigValidation:
    def test_checkpoint_every_must_be_positive(self):
        with pytest.raises(ValueError):
            InferenceConfig(checkpoint_every=0)

    def test_checkpoint_dir_must_be_string(self):
        with pytest.raises(TypeError):
            InferenceConfig(checkpoint_dir=123)

    def test_step_offset_must_be_nonnegative(self, chain):
        models, translators = chain
        with pytest.raises(ValueError, match="step_offset"):
            infer_sequence(
                translators,
                initial_collection(models),
                np.random.default_rng(0),
                step_offset=-1,
            )
