"""Inference sessions: lifecycle, LRU eviction, reload fidelity, metrics."""

import numpy as np
import pytest

from repro.core import CorrespondenceTranslator
from repro.core.correspondence import Correspondence
from repro.core.importance import importance_sampling
from repro.errors import SessionError
from repro.store import InferenceSession, SessionManager, dumps

NUM_PARTICLES = 25


def make_translator(burglary_original, burglary_refined):
    return CorrespondenceTranslator(
        burglary_original,
        burglary_refined,
        Correspondence.identity(["burglary", "alarm"]),
    )


@pytest.fixture
def initial(burglary_original, rng):
    return importance_sampling(burglary_original, rng, NUM_PARTICLES).resample(rng)


@pytest.fixture
def translator(burglary_original, burglary_refined):
    return make_translator(burglary_original, burglary_refined)


class TestSessionLifecycle:
    def test_create_and_submit(self, initial, translator):
        manager = SessionManager()
        session = manager.create("s1", initial, seed=1)
        assert session.num_edits == 0

        step = session.submit(translator)
        assert session.num_edits == 1
        assert session.collection is step.collection
        assert session.history[0]["edit"] == 0
        assert session.history[0]["num_particles"] == NUM_PARTICLES

    def test_manager_submit_routes_to_session(self, initial, translator):
        manager = SessionManager()
        manager.create("s1", initial, seed=1)
        manager.submit("s1", translator)
        assert manager.get("s1").num_edits == 1

    def test_estimate_delegates_to_collection(self, initial):
        manager = SessionManager()
        session = manager.create("s1", initial, seed=1)
        probability = session.estimate(lambda t: float(t["alarm"]))
        assert 0.0 <= probability <= 1.0

    def test_duplicate_id_rejected(self, initial):
        manager = SessionManager()
        manager.create("s1", initial, seed=1)
        with pytest.raises(SessionError, match="already exists"):
            manager.create("s1", initial, seed=2)

    def test_duplicate_id_rejected_even_when_evicted(self, tmp_path, initial):
        manager = SessionManager(tmp_path)
        manager.create("s1", initial, seed=1)
        manager.evict("s1")
        with pytest.raises(SessionError, match="already exists in the store"):
            manager.create("s1", initial, seed=2)

    @pytest.mark.parametrize("bad_id", ["", "has space", "a/b", ".hidden", None, 7])
    def test_invalid_session_ids(self, initial, bad_id):
        manager = SessionManager()
        with pytest.raises(SessionError, match="invalid session id"):
            manager.create(bad_id, initial, seed=1)

    def test_unknown_session(self, tmp_path):
        with pytest.raises(SessionError, match="unknown session"):
            SessionManager(tmp_path).get("never-created")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SessionManager(capacity=0)
        with pytest.raises(ValueError):
            SessionManager(format="xml")


class TestEvictionAndReload:
    def test_lru_evicts_least_recently_used(self, tmp_path, initial):
        manager = SessionManager(tmp_path, capacity=2)
        manager.create("a", initial, seed=1)
        manager.create("b", initial, seed=2)
        manager.get("a")  # touch: b is now the LRU entry
        manager.create("c", initial, seed=3)
        assert sorted(manager.live_sessions()) == ["a", "c"]
        assert manager.stored_sessions() == ["b"]
        assert (tmp_path / "b.session").is_file()

    def test_no_store_dir_never_evicts(self, initial):
        manager = SessionManager(capacity=1)
        manager.create("a", initial, seed=1)
        manager.create("b", initial, seed=2)
        assert sorted(manager.live_sessions()) == ["a", "b"]
        with pytest.raises(SessionError, match="no store_dir"):
            manager.evict("a")

    def test_evict_requires_live_session(self, tmp_path, initial):
        manager = SessionManager(tmp_path)
        with pytest.raises(SessionError, match="not live"):
            manager.evict("ghost")

    def test_reload_restores_durable_state(self, tmp_path, initial, translator):
        manager = SessionManager(tmp_path)
        session = manager.create("s1", initial, seed=5)
        session.submit(translator)
        history = list(session.history)
        weights = list(session.collection.log_weights)
        manager.evict("s1")
        assert manager.live_sessions() == []

        reloaded = manager.get("s1")
        assert reloaded is not session
        assert reloaded.history == history
        assert reloaded.collection.log_weights == weights

    def test_reloaded_rng_continues_identically(self, tmp_path, initial, translator):
        """Evict-and-reload is invisible: the next edit draws exactly
        what the uninterrupted session would have drawn."""
        live = SessionManager(None).create("s1", initial, seed=5)
        stored_manager = SessionManager(tmp_path)
        stored_manager.create("s1", initial, seed=5)
        stored_manager.evict("s1")

        step_live = live.submit(translator)
        step_reloaded = stored_manager.submit("s1", translator)
        assert dumps(step_reloaded.collection) == dumps(step_live.collection)

    def test_reloaded_session_does_not_alias_snapshot(self, tmp_path, initial, translator):
        """Edits to a reloaded session must not leak into the on-disk
        snapshot until the next evict."""
        manager = SessionManager(tmp_path)
        manager.create("s1", initial, seed=5)
        path = manager.evict("s1")
        before = path.read_bytes()
        manager.submit("s1", translator)
        assert path.read_bytes() == before  # untouched until re-evicted
        manager.evict("s1")
        assert path.read_bytes() != before

    def test_corrupt_session_file(self, tmp_path, initial):
        manager = SessionManager(tmp_path)
        manager.create("s1", initial, seed=1)
        path = manager.evict("s1")
        path.write_bytes(b"not a codec document")
        with pytest.raises(SessionError, match="cannot reload"):
            manager.get("s1")

    def test_close_persists_by_default(self, tmp_path, initial):
        manager = SessionManager(tmp_path)
        manager.create("s1", initial, seed=1)
        path = manager.close("s1")
        assert path is not None and path.is_file()
        assert manager.live_sessions() == []

    def test_close_without_persist(self, tmp_path, initial):
        manager = SessionManager(tmp_path)
        manager.create("s1", initial, seed=1)
        assert manager.close("s1", persist=False) is None
        assert manager.stored_sessions() == []

    def test_binary_store_format(self, tmp_path, initial):
        manager = SessionManager(tmp_path, format="binary")
        manager.create("s1", initial, seed=1)
        manager.evict("s1")
        assert manager.get("s1").session_id == "s1"


class TestMetrics:
    def test_manager_counters(self, tmp_path, initial):
        manager = SessionManager(tmp_path, capacity=1)
        manager.create("a", initial, seed=1)
        manager.create("b", initial, seed=2)  # evicts a
        manager.get("a")  # reloads a, evicts b
        snapshot = manager.metrics_snapshot()
        assert snapshot["store.sessions_created"]["value"] == 2
        assert snapshot["store.evictions"]["value"] == 2
        assert snapshot["store.reloads"]["value"] == 1
        assert snapshot["store.bytes_written"]["value"] > 0

    def test_session_counters_and_histograms(self, initial, translator):
        session = SessionManager().create("s1", initial, seed=1)
        session.submit(translator)
        session.submit(translator)
        snapshot = session.metrics_snapshot()
        assert snapshot["session.edits"]["value"] == 2
        assert snapshot["session.particles_translated"]["value"] == 2 * NUM_PARTICLES
        assert snapshot["session.ess_after"]["count"] == 2

    def test_list_sessions(self, tmp_path, initial):
        manager = SessionManager(tmp_path, capacity=1)
        manager.create("a", initial, seed=1)
        manager.create("b", initial, seed=2)
        assert manager.list_sessions() == {"live": ["b"], "stored": ["a"]}


class TestConcurrencyAndRecoveryHooks:
    """Thread-safety contracts the inference service leans on."""

    def test_evict_during_submit_persists_post_edit_state(
        self, tmp_path, initial, translator
    ):
        """Regression: evict racing a long submit must wait for the edit.

        The submit thread holds the session lock; evict's snapshot()
        blocks on it, so the spill file carries the *post-edit* state —
        never a torn mixture of old collection and new history.
        """
        import threading

        from repro.observability import Hooks

        manager = SessionManager(tmp_path)
        session = manager.create("s1", initial, seed=1)
        entered = threading.Event()

        class SlowHooks(Hooks):
            def on_particle(self, index, outcome):
                if index == 0:
                    entered.set()
                import time

                time.sleep(0.002)

        errors = []

        def edit():
            try:
                session.submit(translator, hooks=SlowHooks())
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        thread = threading.Thread(target=edit)
        thread.start()
        assert entered.wait(timeout=10)
        manager.evict("s1")
        thread.join(timeout=30)
        assert not thread.is_alive() and not errors

        reloaded = SessionManager(tmp_path).get("s1")
        assert reloaded.num_edits == 1
        assert reloaded.history[0]["num_particles"] == NUM_PARTICLES

    def test_concurrent_submits_different_sessions(self, tmp_path, rng, translator, burglary_original):
        """Edits on different sessions proceed concurrently and intact."""
        import threading

        manager = SessionManager(tmp_path, capacity=4)
        for index in range(3):
            collection = importance_sampling(
                burglary_original, np.random.default_rng(index), NUM_PARTICLES
            ).resample(np.random.default_rng(index))
            manager.create(f"s{index}", collection, seed=index)

        errors = []

        def edit(session_id):
            try:
                manager.submit(session_id, translator)
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        threads = [
            threading.Thread(target=edit, args=(f"s{index}",)) for index in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for index in range(3):
            assert manager.get(f"s{index}").num_edits == 1

    def test_submit_rolls_back_on_hook_error(self, initial, translator):
        """A mid-translation failure leaves collection, RNG, and history
        untouched (what makes deadline cancellation corruption-free)."""
        import copy

        from repro.observability import Hooks

        manager = SessionManager()
        session = manager.create("s1", initial, seed=1)
        collection_before = session.collection
        rng_state_before = copy.deepcopy(session.rng.bit_generator.state)

        class Bomb(Hooks):
            def on_particle(self, index, outcome):
                raise RuntimeError("cancelled mid-flight")

        with pytest.raises(RuntimeError, match="cancelled"):
            session.submit(translator, hooks=Bomb())
        assert session.collection is collection_before
        assert session.num_edits == 0
        assert session.rng.bit_generator.state == rng_state_before

        # The session still works after the rollback.
        session.submit(translator)
        assert session.num_edits == 1

    def test_adopt_registers_recovered_session(self, initial):
        manager = SessionManager()
        session = InferenceSession("recovered", initial, np.random.default_rng(2))
        assert manager.adopt(session) is session
        assert manager.get("recovered") is session
        assert manager.metrics_snapshot()["store.sessions_recovered"]["value"] == 1

    def test_adopt_rejects_live_duplicate(self, initial):
        manager = SessionManager()
        manager.create("s1", initial, seed=1)
        with pytest.raises(SessionError, match="already exists"):
            manager.adopt(InferenceSession("s1", initial, np.random.default_rng(2)))

    def test_adopt_supersedes_stored_file(self, tmp_path, initial):
        """Unlike create, adopt may shadow an on-disk spill: recovery
        from commit snapshots legitimately supersedes older LRU spills."""
        manager = SessionManager(tmp_path)
        manager.create("s1", initial, seed=1)
        manager.evict("s1")
        adopted = InferenceSession("s1", initial, np.random.default_rng(2))
        assert manager.adopt(adopted) is adopted
        assert manager.get("s1") is adopted
