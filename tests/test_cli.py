"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import main
from repro.lang.programs import BURGLARY_ORIGINAL, BURGLARY_REFINED


@pytest.fixture
def burglary_files(tmp_path):
    old = tmp_path / "old.pp"
    new = tmp_path / "new.pp"
    old.write_text(BURGLARY_ORIGINAL)
    new.write_text(BURGLARY_REFINED)
    return str(old), str(new)


class TestParse:
    def test_pretty_prints(self, burglary_files, capsys):
        old, _new = burglary_files
        assert main(["parse", old]) == 0
        output = capsys.readouterr().out
        assert "burglary = flip(0.02);" in output
        assert "observe(" in output

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["parse", str(tmp_path / "nope.pp")])

    def test_syntax_error_propagates(self, tmp_path):
        bad = tmp_path / "bad.pp"
        bad.write_text("x = ;")
        from repro.lang import ParseError

        with pytest.raises(ParseError):
            main(["parse", str(bad)])


class TestRun:
    def test_samples_with_seed(self, burglary_files, capsys):
        old, _new = burglary_files
        assert main(["run", old, "-n", "3", "--seed", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all("log_prob=" in line for line in lines)

    def test_env_parsing(self, tmp_path, capsys):
        program = tmp_path / "p.pp"
        program.write_text("return n * 2;")
        assert main(["run", str(program), "-n", "1", "--env", "n=21"]) == 0
        assert "return=42" in capsys.readouterr().out

    def test_env_list_value(self, tmp_path, capsys):
        program = tmp_path / "p.pp"
        program.write_text("return ys[1];")
        assert main(["run", str(program), "-n", "1", "--env", "ys=1.5,2.5,3.5"]) == 0
        assert "return=2.5" in capsys.readouterr().out

    def test_bad_env_format(self, burglary_files):
        old, _new = burglary_files
        with pytest.raises(SystemExit):
            main(["run", old, "--env", "oops"])


class TestEnumerate:
    def test_burglary_posterior(self, burglary_files, capsys):
        old, _new = burglary_files
        assert main(["enumerate", old]) == 0
        output = capsys.readouterr().out
        assert "P(return = 1) = 0.2046" in output
        assert "P(return = 0) = 0.7953" in output


class TestDiff:
    def test_correspondence_lines(self, burglary_files, capsys):
        old, new = burglary_files
        assert main(["diff", old, new]) == 0
        output = capsys.readouterr().out
        assert "<-" in output
        # burglary's flip is matched between the programs.
        assert "flip:2:12  <-  flip:2:12" in output

    def test_unrelated_programs(self, tmp_path, capsys):
        a = tmp_path / "a.pp"
        b = tmp_path / "b.pp"
        a.write_text("x = gauss(0, 1);")
        b.write_text("y = uniform(0, 5);")
        assert main(["diff", str(a), str(b)]) == 0
        assert "no corresponding random expressions" in capsys.readouterr().out


class TestTranslate:
    def test_burglary_translation(self, burglary_files, capsys):
        old, new = burglary_files
        assert main(["translate", old, new, "-n", "4000", "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "translated 4000 traces" in output
        # The refined posterior puts ~0.19 on burglary = 1.
        line = [l for l in output.splitlines() if "P(return = 1)" in l][0]
        probability = float(line.split("=")[-1])
        assert probability == pytest.approx(0.194, abs=0.05)

    def test_parameter_edit_translation(self, tmp_path, capsys):
        old = tmp_path / "old.pp"
        new = tmp_path / "new.pp"
        old.write_text("x = flip(0.5); return x;")
        new.write_text("x = flip(0.8); return x;")
        assert main(["translate", str(old), str(new), "-n", "3000", "--seed", "2"]) == 0
        output = capsys.readouterr().out
        line = [l for l in output.splitlines() if "P(return = 1)" in l][0]
        probability = float(line.split("=")[-1])
        assert probability == pytest.approx(0.8, abs=0.04)

    @pytest.mark.parametrize("policy", ["fail_fast", "drop", "regenerate"])
    def test_fault_policy_flag_accepted(self, burglary_files, capsys, policy):
        old, new = burglary_files
        assert main(["translate", old, new, "-n", "200", "--seed", "0",
                     "--fault-policy", policy]) == 0
        output = capsys.readouterr().out
        assert "translated 200 traces" in output
        # Clean translators produce no faults, so no fault line is shown.
        assert "faults:" not in output

    def test_unknown_fault_policy_rejected(self, burglary_files):
        old, new = burglary_files
        with pytest.raises(SystemExit):
            main(["translate", old, new, "--fault-policy", "sometimes"])


class TestCheck:
    def test_clean_program(self, burglary_files, capsys):
        old, _new = burglary_files
        assert main(["check", old]) == 0
        assert "ok" in capsys.readouterr().out

    def test_errors_set_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.pp"
        bad.write_text("y = x; z = flip(2);")
        assert main(["check", str(bad)]) == 1
        output = capsys.readouterr().out
        assert "error" in output
        assert "'x'" in output
        assert "outside [0, 1]" in output

    def test_env_declares_parameters(self, tmp_path, capsys):
        program = tmp_path / "p.pp"
        program.write_text("return n * 2;")
        assert main(["check", str(program)]) == 1
        capsys.readouterr()
        assert main(["check", str(program), "--env", "n=0"]) == 0

    def test_warning_does_not_fail(self, tmp_path, capsys):
        program = tmp_path / "p.pp"
        program.write_text("def f() { x = 1; } skip;")
        assert main(["check", str(program)]) == 0
        assert "warning" in capsys.readouterr().out

    def test_kind_errors_reported(self, tmp_path, capsys):
        program = tmp_path / "p.pp"
        program.write_text("x = 1; y = x[0];")
        assert main(["check", str(program)]) == 1
        assert "indexed but is a scalar" in capsys.readouterr().out

    def test_array_env_declares_array_kind(self, tmp_path, capsys):
        program = tmp_path / "p.pp"
        program.write_text("y = ys[0] + 1; return y;")
        assert main(["check", str(program), "--env", "ys=1,2,3"]) == 0
        assert "ok" in capsys.readouterr().out


class TestTranslateObservability:
    def test_trace_out_writes_span_tree(self, burglary_files, tmp_path, capsys):
        import json

        old, new = burglary_files
        trace_path = tmp_path / "trace.json"
        assert main(["translate", old, new, "-n", "50", "--seed", "0",
                     "--trace-out", str(trace_path)]) == 0
        assert f"trace written to {trace_path}" in capsys.readouterr().out
        payload = json.loads(trace_path.read_text())
        (step,) = payload["spans"]
        assert step["name"] == "smc.step"
        assert step["duration_s"] > 0
        child_names = [child["name"] for child in step["children"]]
        assert "smc.translate" in child_names
        # Per-particle spans nest inside the translate phase.
        translate = step["children"][child_names.index("smc.translate")]
        particles = [c for c in translate["children"]
                     if c["name"] == "translate.particle"]
        assert len(particles) == 50
        # Phase durations sum to within the step duration.
        phase_total = sum(child["duration_s"] for child in step["children"])
        assert phase_total <= step["duration_s"]

    def test_metrics_out_writes_registry_snapshot(self, burglary_files, tmp_path,
                                                  capsys):
        import json

        old, new = burglary_files
        metrics_path = tmp_path / "metrics.json"
        assert main(["translate", old, new, "-n", "40", "--seed", "0",
                     "--metrics-out", str(metrics_path)]) == 0
        capsys.readouterr()
        payload = json.loads(metrics_path.read_text())
        assert payload["smc.particles_translated"]["value"] == 40
        assert payload["smc.steps"]["value"] == 1
        assert "smc.ess_before_resample" in payload

    def test_verbose_prints_step_table(self, burglary_files, capsys):
        old, new = burglary_files
        assert main(["translate", old, new, "-n", "30", "--seed", "0",
                     "--verbose"]) == 0
        lines = capsys.readouterr().out.splitlines()
        header = [l for l in lines if "particles" in l and "ess" in l]
        assert header, "expected a step-table header"
        # One data row for the single SMC step ("-": no sequence index).
        assert any(l.strip().startswith("-") and "30" in l for l in lines)

    def test_quiet_without_flags_writes_nothing(self, burglary_files, tmp_path,
                                                capsys):
        old, new = burglary_files
        assert main(["translate", old, new, "-n", "20", "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "trace written" not in output
        assert "metrics written" not in output
        names = {path.name for path in tmp_path.iterdir()}
        assert names == {"old.pp", "new.pp"}  # only the fixture inputs


class TestExperimentCommand:
    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    @pytest.mark.slow
    def test_fig8_quick_writes_artifacts(self, tmp_path, capsys):
        import json

        rows = tmp_path / "rows.json"
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(["experiment", "fig8", "--quick",
                     "--out", str(rows),
                     "--trace-out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        parsed_rows = json.loads(rows.read_text())
        assert any(row["series"] == "Incremental" for row in parsed_rows)
        payload = json.loads(trace.read_text())
        names = {span["name"] for span in payload["spans"]}
        assert "fig8.incremental" in names
        assert "fig8.mcmc" in names
        parsed_metrics = json.loads(metrics.read_text())
        assert parsed_metrics["smc.particles_translated"]["value"] > 0


class TestTranslateExecutor:
    def test_executor_flag_accepted(self, burglary_files, capsys):
        old, new = burglary_files
        assert main(["translate", old, new, "-n", "100", "--seed", "0",
                     "--executor", "serial"]) == 0
        assert "translated 100 traces" in capsys.readouterr().out

    def test_executor_matches_serial_reference(self, burglary_files, capsys):
        old, new = burglary_files

        def posterior_lines(extra):
            assert main(["translate", old, new, "-n", "200", "--seed", "4",
                         *extra]) == 0
            output = capsys.readouterr().out
            return [l for l in output.splitlines() if l.startswith("P(")]

        reference = posterior_lines(["--executor", "serial"])
        assert posterior_lines(["--executor", "thread", "--workers", "2"]) == reference

    def test_unknown_backend_rejected(self, burglary_files):
        old, new = burglary_files
        with pytest.raises(SystemExit):
            main(["translate", old, new, "--executor", "gpu"])

    def test_bad_worker_count_rejected(self, burglary_files):
        old, new = burglary_files
        with pytest.raises(SystemExit):
            main(["translate", old, new, "--executor", "thread", "--workers", "0"])

    def test_verbose_reports_worker_fault_column(self, burglary_files, capsys):
        old, new = burglary_files
        assert main(["translate", old, new, "-n", "30", "--seed", "0",
                     "--fault-policy", "drop", "--verbose",
                     "--executor", "thread", "--workers", "2"]) == 0
        lines = capsys.readouterr().out.splitlines()
        header = [l for l in lines if "by-worker" in l]
        assert header, "expected the by-worker column in the step table"
        (row,) = [l for l in lines if "w0=" in l]
        # A clean run still reports explicit zeros for both workers.
        assert "w0=0" in row and "w1=0" in row

    def test_verbose_inline_loop_has_no_worker_breakdown(self, burglary_files,
                                                         capsys):
        old, new = burglary_files
        assert main(["translate", old, new, "-n", "30", "--seed", "0",
                     "--fault-policy", "drop", "--verbose"]) == 0
        lines = capsys.readouterr().out.splitlines()
        (row,) = [l.rstrip() for l in lines
                  if l.strip().startswith("-") and l.rstrip().endswith("-")]
        assert "w0=" not in row


class TestLint:
    """The static-analysis subcommand and its exit-code contract."""

    def test_clean_program_exits_zero(self, tmp_path, capsys):
        program = tmp_path / "ok.pp"
        program.write_text("x = flip(0.3);\nobserve(flip(0.9) == 1);\nreturn x;\n")
        assert main(["lint", str(program)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_findings_exit_lint(self, tmp_path, capsys):
        from repro.cli import EXIT_LINT

        program = tmp_path / "bad.pp"
        program.write_text("p = 3;\nx = flip(p / 2);\nreturn x;\n")
        assert main(["lint", str(program)]) == EXIT_LINT
        output = capsys.readouterr().out
        assert "param-range" in output

    def test_info_findings_never_fail_even_strict(self, tmp_path, capsys):
        program = tmp_path / "unused.pp"
        program.write_text("c = 1;\nx = flip(0.5);\nreturn x;\n")
        assert main(["lint", str(program), "--strict"]) == 0
        assert "unused-variable" in capsys.readouterr().out

    def test_strict_escalates_warnings(self, tmp_path, capsys):
        from repro.cli import EXIT_LINT

        program = tmp_path / "vacuous.pp"
        program.write_text("observe(flip(1) == 1);\nreturn 1;\n")
        assert main(["lint", str(program)]) == 0
        capsys.readouterr()
        assert main(["lint", str(program), "--strict"]) == EXIT_LINT

    def test_pair_runs_correspondence_and_edit_checks(self, burglary_files, capsys):
        old, new = burglary_files
        assert main(["lint", old, new]) == 0
        assert "error(s)" in capsys.readouterr().out

    def test_json_format_and_artifact(self, tmp_path, burglary_files, capsys):
        import json

        old, _new = burglary_files
        out = tmp_path / "report.json"
        assert main(["lint", old, "--format", "json", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["version"] == 1
        assert set(report["summary"]) == {"info", "warning", "error"}
        printed = capsys.readouterr().out
        assert '"version": 1' in printed

    def test_three_files_is_usage_error(self, tmp_path, capsys):
        from repro.cli import EXIT_USAGE

        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "a.pp", "b.pp", "c.pp"])
        assert excinfo.value.code == EXIT_USAGE

    def test_unreadable_file_is_usage_error(self, tmp_path):
        from repro.cli import EXIT_USAGE

        with pytest.raises(SystemExit) as excinfo:
            main(["lint", str(tmp_path / "missing.pp")])
        assert excinfo.value.code == EXIT_USAGE

    def test_env_declares_parameters(self, tmp_path, capsys):
        program = tmp_path / "param.pp"
        program.write_text("x = gauss(mu, 1.0);\nreturn x;\n")
        from repro.cli import EXIT_LINT

        assert main(["lint", str(program)]) == EXIT_LINT
        capsys.readouterr()
        assert main(["lint", str(program), "--env", "mu=0.0"]) == 0

    def test_bundled_strict_is_clean(self, capsys):
        # The acceptance gate: every shipped program, edit pair,
        # correspondence, and config is warning-free.
        assert main(["lint", "bundled", "--strict"]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out

    def test_pair_with_derive_validates_the_derived_map(self, tmp_path, capsys):
        old = tmp_path / "old.pp"
        new = tmp_path / "new.pp"
        old.write_text("x = gauss(0.0, 2.0);\nobserve(gauss(x, 1.0) == 1.0);\nreturn x;\n")
        new.write_text("x = gauss(0.0, 3.0);\nobserve(gauss(x, 1.0) == 1.0);\nreturn x;\n")
        assert main(["lint", str(old), str(new), "--derive"]) == 0
        assert "0 error(s), 0 warning(s)" in capsys.readouterr().out


@pytest.fixture
def gauss_chain(tmp_path):
    """A three-program sigma-drift edit chain."""
    paths = []
    for index, (sigma, noise) in enumerate([(2.0, 1.0), (3.0, 1.0), (3.0, 0.5)]):
        path = tmp_path / f"p{index}.pp"
        path.write_text(
            f"x = gauss(0.0, {sigma});\n"
            f"observe(gauss(x, {noise}) == 1.0);\n"
            "return x;\n"
        )
        paths.append(str(path))
    return paths


class TestDerive:
    """The derive subcommand and --correspondence derive threading."""

    def test_text_report_lists_matches(self, gauss_chain, capsys):
        old, new, _ = gauss_chain
        assert main(["derive", old, new]) == 0
        output = capsys.readouterr().out
        assert "derived correspondence:" in output
        assert "[exact, confidence 1.00]" in output

    def test_json_report_and_artifact(self, tmp_path, gauss_chain, capsys):
        import json

        old, new, _ = gauss_chain
        out = tmp_path / "derivation.json"
        assert main(["derive", old, new, "--format", "json", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["min_confidence"] == 1.0
        assert report["matches"] and report["fresh"] == []
        assert '"summary"' in capsys.readouterr().out

    def test_sequence_with_derived_maps_is_byte_identical(
        self, tmp_path, gauss_chain, capsys
    ):
        derived = tmp_path / "derived.bin"
        diffed = tmp_path / "diffed.bin"
        base = ["sequence", *gauss_chain, "--seed", "3", "-n", "50"]
        assert main(base + ["--correspondence", "derive", "--out", str(derived)]) == 0
        assert main(base + ["--out", str(diffed)]) == 0
        capsys.readouterr()
        # Same reuse decisions -> same RNG consumption -> same bytes.
        assert derived.read_bytes() == diffed.read_bytes()

    def test_missing_file_is_usage_error(self, tmp_path):
        from repro.cli import EXIT_USAGE

        with pytest.raises(SystemExit) as excinfo:
            main(["derive", str(tmp_path / "nope.pp"), str(tmp_path / "nope2.pp")])
        assert excinfo.value.code == EXIT_USAGE


class TestServeAndLoadgen:
    """The service commands and their distinct exit code (5)."""

    def test_exit_service_constant_is_distinct(self):
        from repro.cli import EXIT_FAULT, EXIT_LINT, EXIT_SERVICE, EXIT_USAGE

        assert EXIT_SERVICE == 5
        assert len({EXIT_USAGE, EXIT_FAULT, EXIT_LINT, EXIT_SERVICE}) == 4

    def test_serve_bad_config_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["serve", "--num-shards", "0"])
        assert info.value.code == 2
        assert "--num-shards" in capsys.readouterr().err

    def test_serve_bad_priority_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["serve", "--tenant-priority", "goldfive"])
        assert info.value.code == 2
        assert "NAME=RANK" in capsys.readouterr().err

    def test_loadgen_bad_workload_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["loadgen", "--port", "1", "--workload", "nonsense"])
        assert info.value.code == 2

    def test_loadgen_unreachable_server_exits_service(self, capsys):
        import socket

        # A port that is certainly closed: bind-then-release.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main([
            "loadgen", "--port", str(port), "--sessions", "1", "--ops", "1",
            "--max-attempts", "1", "--fail-on-rejections",
        ])
        assert code == 5
        assert "rejected[unavailable]" in capsys.readouterr().out

    def test_loadgen_against_live_server(self, tmp_path, capsys):
        from repro.service import ServiceConfig, ServiceHandle

        handle = ServiceHandle.start(
            ServiceConfig(store_dir=str(tmp_path / "store"), num_particles=10)
        )
        try:
            host, port = handle.address
            out = tmp_path / "summary.json"
            code = main([
                "loadgen", "--host", host, "--port", str(port),
                "--sessions", "2", "--ops", "2", "-n", "10", "--seed", "3",
                "--out", str(out), "--fail-on-rejections",
            ])
        finally:
            handle.stop()
        assert code == 0
        output = capsys.readouterr().out
        assert "rejection rate 0.0%" in output
        assert "p50=" in output
        import json

        summary = json.loads(out.read_text())
        assert summary["ok"] == summary["requests"]

    def test_serve_old_shard_build_exits_usage(self, tmp_path, capsys, monkeypatch):
        # A shard fleet built against an older wire schema refuses the
        # router's hello; `repro serve` surfaces that as a usage error
        # (exit 2), the same rung as a newer-schema checkpoint.
        import functools

        from repro.service import shard as shard_module

        monkeypatch.setattr(
            shard_module,
            "ShardProcessPool",
            functools.partial(shard_module.ShardProcessPool, wire_schema=0),
        )
        code = main([
            "serve", "--port", "0",
            "--store-dir", str(tmp_path / "store"),
            "--shard-processes", "1", "-n", "10",
        ])
        assert code == 2
        assert "wire schema" in capsys.readouterr().err

    def test_serve_subprocess_handshake_and_graceful_stop(self, tmp_path):
        import os
        import signal as signal_module
        import subprocess
        import sys
        import time

        from repro.service import ServiceClient

        port_file = tmp_path / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--port-file", str(port_file),
                "--store-dir", str(tmp_path / "store"), "-n", "10",
            ],
            cwd=str(pathlib.Path(__file__).resolve().parent.parent),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists():
                assert process.poll() is None, process.stdout.read()
                assert time.monotonic() < deadline
                time.sleep(0.05)
            port = int(port_file.read_text().strip())
            with ServiceClient("127.0.0.1", port, tenant="cli") as client:
                assert client.ping()["pong"] is True
                client.create("s1", "x = flip(0.5);\nreturn x;", seed=1)
            process.send_signal(signal_module.SIGTERM)
            assert process.wait(timeout=30) == 0
            assert "shutting down" in process.stdout.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
