"""The structured exception taxonomy (repro.errors).

The taxonomy must satisfy two contracts at once: every repro failure is
a :class:`ReproError` (so ``except ReproError`` is a complete safety
net), and each subclass keeps inheriting the builtin exception it
historically was (so pre-taxonomy ``except ValueError`` / ``KeyError``
call sites keep working).
"""

import pytest

from repro import (
    RECOVERABLE_ERRORS,
    DegeneracyError,
    ImpossibleConstraintError,
    MissingChoiceError,
    ModelExecutionError,
    NumericalError,
    ReproError,
    SupportError,
    TranslationError,
)
from repro.lang.interp import EvalError


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            TranslationError,
            SupportError,
            NumericalError,
            DegeneracyError,
            ModelExecutionError,
            MissingChoiceError,
            ImpossibleConstraintError,
            EvalError,
        ],
    )
    def test_everything_is_a_repro_error(self, subclass):
        assert issubclass(subclass, ReproError)

    def test_backwards_compatible_builtin_bases(self):
        # Pre-taxonomy except clauses must keep catching these.
        assert issubclass(SupportError, ValueError)
        assert issubclass(NumericalError, ValueError)
        assert issubclass(DegeneracyError, ValueError)
        assert issubclass(MissingChoiceError, KeyError)
        assert issubclass(ImpossibleConstraintError, ValueError)
        assert issubclass(EvalError, RuntimeError)

    def test_degeneracy_is_numerical(self):
        assert issubclass(DegeneracyError, NumericalError)

    def test_missing_choice_is_a_translation_error(self):
        assert issubclass(MissingChoiceError, TranslationError)

    def test_impossible_constraint_is_a_model_execution_error(self):
        assert issubclass(ImpossibleConstraintError, ModelExecutionError)


class TestRecoverableErrors:
    def test_contents(self):
        assert set(RECOVERABLE_ERRORS) == {
            TranslationError,
            SupportError,
            ModelExecutionError,
            NumericalError,
        }

    @pytest.mark.parametrize(
        "error",
        [
            TranslationError("x"),
            SupportError("x"),
            NumericalError("x"),
            ModelExecutionError("x"),
            MissingChoiceError("x"),
            ImpossibleConstraintError("x"),
            EvalError("x"),
        ],
    )
    def test_catches_per_particle_failures(self, error):
        assert isinstance(error, RECOVERABLE_ERRORS)

    def test_does_not_catch_unrelated_errors(self):
        assert not isinstance(KeyError("x"), RECOVERABLE_ERRORS)
        assert not isinstance(RuntimeError("x"), RECOVERABLE_ERRORS)


class TestDegeneracyError:
    def test_carries_context(self):
        error = DegeneracyError("collapse", num_particles=64, step=3)
        assert error.num_particles == 64
        assert error.step == 3
        assert "collapse" in str(error)
        assert "step 3" in str(error)

    def test_step_is_optional(self):
        error = DegeneracyError("collapse", num_particles=8)
        assert error.step is None
        assert "step" not in str(error)
